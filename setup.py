"""Legacy setup shim.

Kept so the package installs on environments whose setuptools predates
PEP 660 editable-wheel support (``pip install -e .`` falls back to
``setup.py develop`` there).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
