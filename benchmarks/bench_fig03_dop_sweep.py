"""Fig. 3 — one job swept over 4/8/16/32 machines."""

from repro.experiments import fig03_dop_sweep


def test_fig03_dop_sweep(once):
    result = once(fig03_dop_sweep.run)
    print()
    print(fig03_dop_sweep.report(result))
    rows = result.rows
    # CPU utilization falls monotonically with the DoP (Fig. 3a).
    cpu = [row.cpu_utilization for row in rows]
    assert cpu == sorted(cpu, reverse=True)
    # Network share rises.
    net = [row.net_utilization for row in rows]
    assert net == sorted(net)
    # COMP halves with each doubling (Eq. 2); COMM stays flat (Fig. 3b).
    for previous, current in zip(rows, rows[1:], strict=False):
        assert current.t_comp < previous.t_comp
        # harmony: allow[DET006] pull time is DOP-invariant by construction; exact assert intended
        assert current.t_pull == previous.t_pull
    # Iteration time improves with diminishing returns.
    assert rows[-1].iteration_seconds < rows[0].iteration_seconds
