"""Policy tournament: the full registry round-robin (repro.policies).

Runs the default seeded tournament — every registered policy across
arrival patterns x cluster sizes x both simulation engines, with the
repro.check invariant harness on — and asserts the results are healthy:
no invariant violations, engines bitwise-agree, Harmony beats the
uncoordinated baselines, and the leaderboard ordering matches the
committed ``benchmarks/baseline_tournament.json``.
"""

import json
import pathlib

from repro.experiments import tournament


def test_tournament_round_robin(once, benchmark):
    result = once(tournament.run)
    print()
    print(tournament.report(result))
    benchmark.extra_info["n_runs"] = len(result.cells)
    benchmark.extra_info["ordering"] = " > ".join(result.ordering())

    # Every cell ran under the invariant harness; nothing may trip it,
    # and the fast engine must reproduce the reference bit for bit.
    assert result.n_violations == 0
    assert result.engine_disagreements == ()

    # The paper's headline: coordination wins.  Harmony must beat the
    # uncoordinated co-location and the plain queueing disciplines on
    # normalized mean JCT.
    scores = {row.policy: row.jct_score for row in result.leaderboard}
    assert scores["harmony"] < scores["naive"]
    assert scores["harmony"] < scores["fcfs"]
    assert scores["harmony"] < scores["isolated"]

    # The committed leaderboard is the reproducibility contract: the
    # same seed must yield the same ordering on every machine.
    expect = json.loads(
        (pathlib.Path(__file__).resolve().parent
         / "baseline_tournament.json").read_text())
    assert list(result.ordering()) == expect["ordering"]
