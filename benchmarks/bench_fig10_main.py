"""Fig. 10 — the headline JCT / makespan comparison at paper scale."""

from repro.experiments import fig10_main


def test_fig10_main_comparison(once):
    result = once(fig10_main.run, scale=1.0, n_naive_cases=3)
    print()
    print(fig10_main.report(result))

    # Harmony wins makespan by a factor in the paper's neighbourhood
    # (paper: 1.60x; shape target: decisively above both baselines).
    assert result.harmony_makespan_speedup > 1.4
    # Cluster utilization ratio tracks the paper's 1.65x.
    assert result.utilization_ratio > 1.4
    # Harmony's mean JCT is no worse than the isolated baseline's.
    assert result.harmony_jct_speedup > 1.0
    # Naive co-location is no silver bullet: its worst case loses to
    # the isolated baseline (the paper's min error bar dips below 1).
    assert min(result.naive_makespan_speedups) < 1.0
    # And Harmony beats every naive case.
    assert result.harmony_makespan_speedup > \
        max(result.naive_makespan_speedups)
    # All 80 jobs completed under every scheduler.
    assert len(result.harmony.finished) == 80
    assert len(result.isolated.finished) == 80
