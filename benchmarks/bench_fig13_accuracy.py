"""Fig. 13 — performance-model accuracy and error sensitivity."""

from repro.experiments import fig13_model_accuracy


def test_fig13_model_accuracy(once):
    result = once(fig13_model_accuracy.run, scale=1.0,
                  error_levels=(0.0, 0.05, 0.10, 0.20))
    print()
    print(fig13_model_accuracy.report(result))

    # Fig. 13b: prediction errors of the group iteration time stay in
    # the single digits on average (paper: below 5% at all times).
    assert result.mean_t_group_error < 0.10
    assert len(result.t_group_errors) > 10
    # Fig. 13a: moderate injected error degrades the makespan side.
    worst_makespan = min(r.normalized_makespan_speedup
                         for r in result.sensitivity)
    assert worst_makespan < 1.0
    # The zero-error run is the baseline by construction.
    assert result.sensitivity[0].normalized_jct_speedup == 1.0
