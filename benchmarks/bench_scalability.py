"""§V-F — scheduling-algorithm performance and scalability.

Two exhibits share this module:

* ``test_scheduler_scalability`` — the paper's own table (one master,
  growing pools, plus the oracle blow-up).
* ``test_sharded_scalability`` — the ROADMAP scale jump past the
  paper's 1,000-machine sweep: the cluster-of-cells sharded scheduler
  (``repro.shard``) vs the unsharded one on a 32K-job / 40K-machine
  pool under online churn (one arrival + one profile republish per
  step).  CI guards the recorded timings via
  ``check_scale_baseline.py`` against ``baseline_scale.json``.
"""

from repro.experiments import scalability

#: Sizes of the unsharded §V-F table; threaded through ``run(sizes=)``
#: so the bench — not the experiment default — owns the sweep.
SIZES = ((80, 100), (1000, 2000), (8000, 10_000))
ORACLE_SIZES = (4, 6, 8)

#: The sharded sweep: cells x (jobs, machines), online churn steps.
SHARD_SIZES = ((8000, 10_000), (32_000, 40_000))
SHARD_CELLS = (1, 32)
CHURN_STEPS = 16


def test_scheduler_scalability(once):
    result = once(scalability.run, sizes=SIZES,
                  oracle_sizes=ORACLE_SIZES)
    print()
    print(scalability.report(result))

    # "Harmony can schedule 8K jobs to 10K machines within 5 seconds."
    assert result.harmony_rows[-1].n_jobs == 8000
    assert result.largest_harmony_seconds < 5.0
    # The 80-job decision is near-instant (paper: 1.2 s incl. their
    # system overheads; the pure algorithm is far below that).
    assert result.harmony_rows[0].seconds < 1.0
    # The oracle's partition space explodes combinatorially (the
    # paper's "about 10 hours" at 4K jobs).
    searched = [row.partitions_searched for row in result.oracle_rows]
    assert searched == sorted(searched)
    assert searched[-1] > 50 * searched[0]


def test_sharded_scalability(once, benchmark):
    result = once(scalability.run_sharded, sizes=SHARD_SIZES,
                  cells=SHARD_CELLS, churn_steps=CHURN_STEPS)
    print()
    print(scalability.report_sharded(result))

    largest = SHARD_SIZES[-1]
    rows = result.rows_at(*largest)
    unsharded = next(row for row in rows if row.n_cells == 1)
    sharded = min((row for row in rows if row.n_cells > 1),
                  key=lambda row: row.total_seconds)
    speedup = result.speedup_at_largest
    benchmark.extra_info["unsharded_total_seconds"] = round(
        unsharded.total_seconds, 3)
    benchmark.extra_info["sharded_total_seconds"] = round(
        sharded.total_seconds, 3)
    benchmark.extra_info["speedup"] = round(speedup, 2)
    # The baseline guard only enforces upper bounds, so the >= 3x
    # speedup floor is committed as its reciprocal: inverse_speedup
    # regressing *up* past its budget means the sharded win decayed.
    benchmark.extra_info["inverse_speedup"] = round(1.0 / speedup, 4)

    # The acceptance gate: >= 3x over the unsharded scheduler at the
    # largest size (32 cells x 40K machines / 32K jobs; measured
    # ~4.4x — the floor leaves headroom for CI jitter).
    assert speedup >= 3.0
    # Not a won-by-shedding-work result: at the largest size the
    # sharded plan must stay within striking distance on quality —
    # weighted-utilization score and jobs placed.
    assert sharded.score >= unsharded.score * 0.90
    assert sharded.jobs_scheduled >= int(0.9 * unsharded.jobs_scheduled)
    # And the sharded configuration really was sharded.
    assert sharded.n_cells == SHARD_CELLS[-1]
