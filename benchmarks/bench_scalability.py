"""§V-F — scheduling-algorithm performance and scalability."""

from repro.experiments import scalability


def test_scheduler_scalability(once):
    result = once(scalability.run,
                  sizes=((80, 100), (1000, 2000), (8000, 10_000)),
                  oracle_sizes=(4, 6, 8))
    print()
    print(scalability.report(result))

    # "Harmony can schedule 8K jobs to 10K machines within 5 seconds."
    assert result.harmony_rows[-1].n_jobs == 8000
    assert result.largest_harmony_seconds < 5.0
    # The 80-job decision is near-instant (paper: 1.2 s incl. their
    # system overheads; the pure algorithm is far below that).
    assert result.harmony_rows[0].seconds < 1.0
    # The oracle's partition space explodes combinatorially (the
    # paper's "about 10 hours" at 4K jobs).
    searched = [row.partitions_searched for row in result.oracle_rows]
    assert searched == sorted(searched)
    assert searched[-1] > 50 * searched[0]
