"""Fig. 12 — distributions of group DoP and jobs-per-group."""

from repro.experiments import fig12_group_distributions


def test_fig12_group_shape_distributions(once):
    result = once(fig12_group_distributions.run, scale=1.0)
    print()
    print(fig12_group_distributions.report(result))

    # "Harmony uses larger DoPs for the computation-intensive workload
    # and smaller DoPs for communication-intensive workload."
    assert result.comp_intensive.median_dop > \
        result.comm_intensive.median_dop
    # "The number of jobs in a group stay rather indifferent."
    assert abs(result.comp_intensive.median_jobs
               - result.comm_intensive.median_jobs) <= 2.0
    # CDFs are well-formed.
    dops, fractions = result.base.dop_cdf()
    assert len(dops) > 0
    assert fractions[-1] == 1.0
