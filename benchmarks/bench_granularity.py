"""Granularity validation — one-pipeline abstraction vs Fig. 7 detail."""

from repro.experiments import granularity_validation


def test_group_abstraction_matches_per_worker_simulation(once):
    result = once(granularity_validation.run)
    print()
    print(granularity_validation.report(result))
    # The group-level abstraction tracks the full per-worker simulation
    # within a few percent (DESIGN.md's modelling claim)...
    assert result.worst_abstraction_error < 0.05
    # ...and Eq. 1 predicts the pacing iteration within ~10% even for
    # deliberately unbalanced (job-bound) groups.
    assert result.worst_model_error < 0.12
