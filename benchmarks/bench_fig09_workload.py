"""Fig. 9 + Table I — evaluation-workload characteristics."""

import numpy as np

from repro.experiments import fig09_workload_cdf


def test_fig09_workload_characteristics(once):
    result = once(fig09_workload_cdf.run)
    print()
    print(fig09_workload_cdf.report(result))
    assert len(result.jobs) == 80
    # Fig. 9a: iteration times reach into the tens of minutes but stay
    # under the paper's ~20-minute ceiling region.
    assert 10.0 < result.iteration_minutes.max() < 25.0
    assert result.iteration_minutes.min() < 1.0
    # Fig. 9b: computation ratios cover most of (0, 1).
    assert result.comp_ratios.min() < 0.35
    assert result.comp_ratios.max() > 0.80
    assert 0.4 < float(np.median(result.comp_ratios)) < 0.7
