"""§V-C ablation — contribution of each Harmony technique."""

from repro.experiments import ablation


def test_ablation_technique_contributions(once):
    result = once(ablation.run, scale=1.0)
    print()
    print(ablation.report(result))

    fractions = [result.benefit_fraction(stage)
                 for _, stage in result.stages]
    # Full Harmony defines 100% of the benefit.
    assert fractions[-1] == 1.0
    # Stages are monotone: each technique adds (or at least keeps) the
    # benefit (paper: 32% -> 81% -> 100%).
    assert fractions[0] <= fractions[1] + 0.05
    assert fractions[1] <= fractions[2]
    # Subtask multiplexing alone already yields a real fraction.
    assert fractions[0] > 0.15
    # Without any spilling, co-location is memory-blocked: the sanity
    # stage collapses toward the isolated baseline.
    sanity = result.isolated.makespan / result.no_spill_harmony.makespan
    assert sanity < 1.15
