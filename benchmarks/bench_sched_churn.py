"""Scheduler churn stream — incremental fast path vs frozen reference.

Replays one seeded arrival/completion/metric-update stream through both
the incremental :class:`~repro.core.scheduler.HarmonyScheduler` and the
recompute-everything :class:`~repro.core.reference.ReferenceScheduler`
and compares total scheduling time.  The win must come from skipped
work, not changed decisions: every full-schedule event's plan score is
asserted bitwise-equal across the two replays.
"""

from repro.experiments import sched_churn


def test_scheduler_churn_fast_path(once, benchmark):
    comparison = once(sched_churn.run)
    print()
    print(sched_churn.report(comparison))
    benchmark.extra_info["speedup"] = round(comparison.speedup, 2)
    benchmark.extra_info["fast_seconds"] = round(
        comparison.fast.scheduling_seconds, 3)
    benchmark.extra_info["reference_seconds"] = round(
        comparison.reference.scheduling_seconds, 3)

    fast, reference = comparison.fast, comparison.reference

    # The incremental machinery actually engaged.
    assert fast.cache_hits > 0
    assert fast.warm_start_reuses > 0
    assert fast.n_patched > 0
    assert reference.cache_hits == 0
    assert reference.warm_start_reuses == 0

    # Same decisions: both replays see the identical pool at every
    # event, so their score streams are position-aligned.  Full
    # schedules must score bitwise-equal.  Patched events diverge from
    # the reference stream by design (the splice keeps the previous
    # grouping) but must stay within striking distance of the full
    # reschedule the reference ran instead.
    assert len(fast.scores) == len(reference.scores)
    for (kind, score), (_, ref_score) in zip(fast.scores,
                                             reference.scores, strict=True):
        if kind == "patched":
            assert score >= ref_score * 0.90
        else:
            # harmony: allow[DET006] bitwise-identical plan scoring is the property under test
            assert score == ref_score  # bitwise-identical plan scoring

    # The §IV-B performance claim: the incremental path beats the
    # reference by a wide margin on a churn stream (measured ~5-6x; the
    # floor leaves headroom for CI jitter).
    assert comparison.speedup >= 4.0
