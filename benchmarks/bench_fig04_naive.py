"""Fig. 4 — naive co-location fails; three jobs OOM on 16 machines."""

from repro.experiments import fig04_naive_colocation


def test_fig04_naive_colocation(once):
    result = once(fig04_naive_colocation.run)
    print()
    print(fig04_naive_colocation.report(result))
    # Pairs complete but still fail to saturate both resources.
    for label in ("NMF+Lasso", "NMF+MLR"):
        row = result.row(label)
        assert not row.oom
        assert row.cpu_utilization < 95.0
    # "Co-locating all three jobs results in an out-of-memory error."
    assert result.row("NMF+MLR+Lasso").oom
