"""Correctness harness at CI scale: a checked scenario + differentials."""

from repro.check import (
    ScenarioGenerator,
    run_checked,
    run_differential,
)


def test_checked_scenario(once):
    scenario = ScenarioGenerator(2021).generate()
    checked = once(run_checked, scenario)
    print()
    print(checked.report())

    # The whole point of the harness: a clean run violates nothing.
    assert checked.ok
    assert checked.violations == []
    assert checked.finished_jobs == len(scenario.specs)
    assert 0.0 < checked.sim_seconds


def test_differential_suites(once):
    report = once(run_differential, 20, 2021)
    print()
    print(report.summary())

    assert report.ok, report.failures()
    assert len(report.perfmodel) == 20
    assert len(report.oracle) == 20
    # The simulator tracks Eq. 1 closely on average; the per-case
    # residual is bounded pipelining, not noise.
    assert report.perfmodel_mean_error < 0.05
    assert report.oracle_mean_gap < 0.08
