"""CI regression guard: sharded-scalability timings vs the baseline.

Reads a pytest-benchmark JSON (``scale.json``) and fails — exit code
1 — when any timing named in ``benchmarks/baseline_scale.json`` exceeds
its committed baseline by more than ``max_ratio`` (2x by default),
naming each breaching benchmark with its measured-vs-limit numbers.

The guard only enforces upper bounds, so the sharded scheduler's >= 3x
speedup floor is committed as ``inverse_speedup`` (sharded seconds /
unsharded seconds): a run whose sharded win decays pushes that number
*up* through its budget and fails here, not just in the bench assert.

Usage::

    python benchmarks/check_scale_baseline.py scale.json

Shared engine (timing addressing, budgets, failure reporting):
``benchmarks/_baseline_guard.py``.
"""

from __future__ import annotations

import sys

from _baseline_guard import run_guard


def main(argv: list[str]) -> int:
    return run_guard("baseline_scale.json", "sharded-scalability", argv)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
