"""§VI extensions + reproduction design-choice ablations."""

from repro.experiments import design_ablations, extensions


def test_section6_extensions(once):
    result = once(extensions.run, scale=0.5, n_failures=4)
    print()
    print(extensions.report(result))

    # Fault tolerance: failures cost a little time, never correctness.
    assert len(result.with_failures.finished) == \
        len(result.baseline.finished)
    assert result.failure_slowdown < 1.5
    # All-reduce completes the same workload (the scheduler "does not
    # care how exactly communication is done"), paying the replica
    # memory and ring-synchronization costs.
    assert len(result.allreduce.finished) == \
        len(result.baseline.finished)
    # Interference never breaks the run; at 10% spike probability the
    # makespan effect can go either way by a few percent (decision
    # noise), so only catastrophic slowdowns/speedups are failures.
    # The strict "more noise is slower" ordering is asserted by the
    # unit tests at a 30% spike probability.
    assert len(result.with_interference.finished) == \
        len(result.baseline.finished)
    assert 0.85 < result.interference_slowdown < 2.5


def test_design_choice_ablations(once):
    result = once(design_ablations.run, scale=0.5)
    print()
    print(design_ablations.report(result))

    default = result.row("default")
    # Every variant completes; the default is competitive on makespan
    # with the best variant within a generous band.
    best_makespan = min(row.makespan_minutes for row in result.rows)
    assert default.makespan_minutes <= best_makespan * 1.45
    # Disabling the secondary COMM slot can only reduce network overlap;
    # it must not make the schedule *better* by a wide margin.
    no_secondary = result.row("no secondary COMM")
    assert no_secondary.makespan_minutes >= best_makespan * 0.9
