"""Shared engine of the committed-baseline timing guards.

``check_sim_baseline.py`` and ``check_sched_baseline.py`` are thin
wrappers over :func:`run_guard`: read a pytest-benchmark JSON, compare
every timing named in the committed baseline file against its budget,
and fail — exit code 1 — when any exceeds ``max_ratio`` times the
budget.  Timings are addressed as ``<benchmark-name>.mean`` (the
harness's measured mean seconds) or
``<benchmark-name>.extra_info.<key>`` (a value the benchmark recorded
via ``benchmark.extra_info``).

The baselines are intentionally generous (CI-runner-scale numbers):
the guards exist to catch real regressions — a fast path decaying back
toward recompute-everything cost — not to police machine noise.
"""

from __future__ import annotations

import json
import pathlib


def resolve(benchmarks: list[dict], spec: str) -> float:
    """Look one ``<name>.mean`` / ``<name>.extra_info.<key>`` timing up."""
    name, _, field = spec.partition(".")
    for bench in benchmarks:
        if bench["name"] != name:
            continue
        if field == "mean":
            return float(bench["stats"]["mean"])
        if field.startswith("extra_info."):
            return float(bench["extra_info"][
                field[len("extra_info."):]])
        raise SystemExit(f"unsupported timing field in {spec!r}")
    raise SystemExit(f"benchmark {name!r} missing from the results — "
                     f"was it removed from bench-smoke?")


def run_guard(baseline_file: str, label: str,
              argv: list[str]) -> int:
    """Check one committed baseline against a benchmark results file.

    ``baseline_file`` is resolved relative to this directory; ``label``
    names the guard in the failure summary (e.g. ``"simulator"``).
    """
    results_path = argv[1] if len(argv) > 1 else "bench.json"
    here = pathlib.Path(__file__).resolve().parent
    baseline = json.loads((here / baseline_file).read_text())
    with open(results_path) as handle:
        benchmarks = json.load(handle)["benchmarks"]

    max_ratio = float(baseline["max_ratio"])
    failures: list[str] = []
    for spec, budget in baseline["timings"].items():
        measured = resolve(benchmarks, spec)
        limit = float(budget) * max_ratio
        verdict = "FAIL" if measured > limit else "ok"
        print(f"{verdict:4s} {spec}: {measured:.3f}s "
              f"(baseline {budget}s, limit {limit:.3f}s)")
        if measured > limit:
            failures.append(
                f"{spec} measured {measured:.3f}s > limit "
                f"{limit:.3f}s ({budget}s baseline x {max_ratio})")
    if failures:
        # Name every breaching benchmark with its numbers so the CI
        # log's last lines say exactly what regressed and by how much.
        print(f"{label} timing regression ({len(failures)} "
              f"benchmark(s) over budget):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    return 0
