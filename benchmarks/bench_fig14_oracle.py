"""Fig. 14 — Harmony vs exhaustive-search oracle (scaled pool)."""

from repro.experiments import fig14_oracle


def test_fig14_oracle_comparison(once):
    result = once(fig14_oracle.run, n_jobs=8, n_machines=24)
    print()
    print(fig14_oracle.report(result))

    # Every job finishes under both schedulers.
    assert len(result.harmony.finished) == 8
    assert len(result.oracle.finished) == 8
    # The greedy scheduler tracks the ground truth (paper: within ~2%;
    # we allow a wider band at this tiny pool size, where single
    # decisions weigh heavily).
    assert result.jct_gap < 0.25
    assert result.makespan_gap < 0.30
    # And it decides much faster than the exhaustive search per
    # decision (the wall-clock ratio grows without bound with pool
    # size — see bench_scalability for the Bell-number blow-up).
    assert result.harmony_wall_seconds < result.oracle_wall_seconds
