"""Fault tolerance under seeded crash/straggler/drop injection."""

from repro.experiments import faults
from repro.faults.plan import FaultKind


def test_fault_injection_recovery(once):
    result = once(faults.run, scale=0.5)
    print()
    print(faults.report(result))

    # Faults cost time, never correctness: every job still finishes.
    assert len(result.faulty.finished) == len(result.baseline.finished)
    assert not result.faulty.failed
    # The plan actually exercised all three fault classes.
    assert result.plan.of_kind(FaultKind.MACHINE_CRASH)
    assert result.plan.of_kind(FaultKind.MACHINE_SLOWDOWN)
    assert result.plan.of_kind(FaultKind.NETWORK_DROP)
    # Injected faults slow the run down, within reason.
    assert 1.0 <= result.makespan_inflation < 2.0
    # Recovery accounting is live: every detected crash was recovered
    # from (no job left stranded) and the rollbacks were measured.
    summary = result.fault_summary
    assert summary.unrecovered_jobs == 0
    if summary.n_crashes:
        assert summary.mean_detection_seconds > 0
    assert summary.lost_iterations >= 0
