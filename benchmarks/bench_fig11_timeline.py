"""Fig. 11 — cluster utilization timelines, Harmony vs isolated."""

import numpy as np

from repro.experiments import fig11_util_timeline


def test_fig11_utilization_timeline(once):
    result = once(fig11_util_timeline.run, scale=1.0)
    print()
    print(fig11_util_timeline.report(result))

    harmony = result.harmony
    isolated = result.isolated
    # Harmony finishes all jobs well before the isolated baseline.
    assert harmony.makespan < isolated.makespan
    # Average CPU utilization is decisively higher (paper: 93% vs ~56%).
    assert harmony.average_utilization("cpu") > \
        isolated.average_utilization("cpu") + 0.15
    # Harmony's mid-run utilization is high and sustained: the middle
    # three fifths of its makespan average above 70% CPU.
    timeline = result.timeline("harmony", "cpu").values
    n = len(timeline)
    middle = timeline[n // 5: 4 * n // 5]
    assert float(np.mean(middle)) > 0.70
    # Concurrency matches the paper's flavour (27.2 jobs / 6.7 groups).
    assert harmony.mean_concurrent_jobs() > 15.0
    assert harmony.mean_concurrent_groups() > 3.0
