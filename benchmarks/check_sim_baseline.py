"""CI regression guard: simulator timings vs the committed baseline.

Reads a pytest-benchmark JSON (``bench.json``) and fails — exit code
1 — when any timing named in ``benchmarks/baseline_sim.json`` exceeds
its committed baseline by more than ``max_ratio`` (2x by default).
Timings are addressed as ``<benchmark-name>.extra_info.<key>`` (a value
the benchmark recorded via ``benchmark.extra_info``) or
``<benchmark-name>.mean`` (the harness's measured mean seconds).

Usage::

    python benchmarks/check_sim_baseline.py bench.json

The baseline is intentionally generous (CI-runner-scale numbers): the
guard exists to catch the batched engine regressing back toward
per-event cost — or the whole Fig. 10 pipeline slowing down — not to
police machine noise.
"""

from __future__ import annotations

import json
import pathlib
import sys


def resolve(benchmarks: list[dict], spec: str) -> float:
    name, _, field = spec.partition(".")
    for bench in benchmarks:
        if bench["name"] != name:
            continue
        if field == "mean":
            return float(bench["stats"]["mean"])
        if field.startswith("extra_info."):
            return float(bench["extra_info"][
                field[len("extra_info."):]])
        raise SystemExit(f"unsupported timing field in {spec!r}")
    raise SystemExit(f"benchmark {name!r} missing from the results — "
                     f"was it removed from bench-smoke?")


def main(argv: list[str]) -> int:
    results_path = argv[1] if len(argv) > 1 else "bench.json"
    here = pathlib.Path(__file__).resolve().parent
    baseline = json.loads((here / "baseline_sim.json").read_text())
    with open(results_path) as handle:
        benchmarks = json.load(handle)["benchmarks"]

    max_ratio = float(baseline["max_ratio"])
    failures = []
    for spec, budget in baseline["timings"].items():
        measured = resolve(benchmarks, spec)
        limit = float(budget) * max_ratio
        verdict = "FAIL" if measured > limit else "ok"
        print(f"{verdict:4s} {spec}: {measured:.3f}s "
              f"(baseline {budget}s, limit {limit:.3f}s)")
        if measured > limit:
            failures.append(spec)
    if failures:
        print(f"simulator timing regression: {', '.join(failures)} "
              f"exceeded {max_ratio}x the committed baseline")
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
