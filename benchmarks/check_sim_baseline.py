"""CI regression guard: simulator timings vs the committed baseline.

Reads a pytest-benchmark JSON (``bench.json``) and fails — exit code
1 — when any timing named in ``benchmarks/baseline_sim.json`` exceeds
its committed baseline by more than ``max_ratio`` (2x by default),
naming each breaching benchmark with its measured-vs-limit numbers.

Usage::

    python benchmarks/check_sim_baseline.py bench.json

Shared engine (timing addressing, budgets, failure reporting):
``benchmarks/_baseline_guard.py``.
"""

from __future__ import annotations

import sys

from _baseline_guard import run_guard


def main(argv: list[str]) -> int:
    return run_guard("baseline_sim.json", "simulator", argv)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
