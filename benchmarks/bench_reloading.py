"""§V-G — dynamic data reloading micro-benchmark (8 jobs, 32 machines)."""

from repro.experiments import reloading


def test_dynamic_data_reloading(once):
    result = once(reloading.run,
                  alphas=(0.1, 0.2, 0.3, 0.5, 0.7, 0.9))
    print()
    print(reloading.report(result))

    by_alpha = dict(result.fixed_rows)
    best_alpha, best_seconds = result.best_fixed
    # The fixed-alpha curve is U-shaped: too little spill melts in GC...
    assert by_alpha[0.1] > 2.0 * best_seconds
    # ...and full spill is worse than the interior optimum.
    assert by_alpha[0.9] > best_seconds
    # The optimum is interior (paper: alpha = 0.3).
    assert 0.2 <= best_alpha <= 0.7
    # Adaptive per-job ratios match the best fixed setting without the
    # offline sweep (paper additionally gains 16.3% from per-job
    # ratios; see EXPERIMENTS.md for the flat-bottom discussion).
    assert result.adaptive_iteration_seconds <= best_seconds * 1.10
    # Main-run-style alpha statistics (paper: mean 0.34).
    mean_alpha, _, _ = result.alpha_stats()
    assert 0.15 <= mean_alpha <= 0.60
