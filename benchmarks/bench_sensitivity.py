"""§V-D — workload sensitivity (resource ratios and arrival rates)."""

from repro.experiments import sensitivity_arrival, sensitivity_ratio


def test_sensitivity_resource_ratios(once):
    result = once(sensitivity_ratio.run, scale=1.0)
    print()
    print(sensitivity_ratio.report(result))

    comp = result.row("comp-intensive")
    comm = result.row("comm-intensive")
    # "Harmony successfully achieves high resource utilization
    # regardless of the workload characteristics."
    assert comp.makespan_speedup > 1.25
    assert comm.makespan_speedup > 1.25
    assert comp.cpu_utilization > 0.70
    assert comm.cpu_utilization > 0.70
    # "Harmony uses larger DoPs for the computation-intensive workload."
    assert comp.median_dop > comm.median_dop


def test_sensitivity_arrival_rates(once):
    result = once(sensitivity_arrival.run,
                  scale=1.0, mean_arrival_minutes=(0.0, 4.0, 8.0),
                  n_trace_windows=3)
    print()
    print(sensitivity_arrival.report(result))

    rows = {row.label: row for row in result.rows}
    # Speedups persist across arrival processes (paper: from 2.11/1.60
    # at batch submission to 2.01/1.56 at 8-minute means; traces
    # average 2.02/1.57).
    for label, row in rows.items():
        assert row.makespan_speedup > 1.0, label
        assert row.jct_speedup > 0.95, label
