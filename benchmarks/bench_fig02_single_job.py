"""Fig. 2 — single-job PS utilization across workloads."""

from repro.experiments import fig02_single_job


def test_fig02_single_job_utilization(once):
    result = once(fig02_single_job.run)
    print()
    print(fig02_single_job.report(result))
    for _label, cpu, net in result.rows:
        # The paper's point: a lone PS job never saturates both sides.
        assert cpu < 95.0 or net < 95.0
        assert cpu + net > 60.0  # but it is doing real work
