"""Simulator fast path vs per-event reference engine (§IV-A kernel).

Times the same long single-job group under both ``SimConfig.engine``
settings.  The batched engine must win on wall clock without changing
a single simulated number — equality of outcomes is asserted here at
run granularity and bitwise per-event in ``tests/test_sim_fastpath.py``.
"""

from repro.experiments import sim_engines


def test_sim_engine_fast_path(once, benchmark):
    comparison = once(sim_engines.run)
    print()
    print(sim_engines.report(comparison))
    benchmark.extra_info["speedup"] = round(comparison.speedup, 2)
    benchmark.extra_info["fast_seconds"] = round(
        comparison.fast.wall_seconds, 3)
    benchmark.extra_info["reference_seconds"] = round(
        comparison.reference.wall_seconds, 3)

    # Same simulation, bit for bit — the speedup comes from skipped
    # event-loop machinery, never from changed arithmetic.
    assert comparison.outcomes_equal

    # The fast path's headline claim (measured ~4.5-5x on the
    # deterministic config; the floor leaves headroom for CI jitter).
    assert comparison.speedup >= 3.0


def test_sim_engine_multi_job(once, benchmark):
    """Coordinated drive lane on a contended 5-job group.

    Multi-job groups cannot take the fused solo lane — their subtasks
    contend through shared rate policies — so the win is the drive
    lane's alone: parked wakes served without heap round-trips.
    """
    comparison = once(sim_engines.run_multi)
    print()
    print(sim_engines.report(comparison))
    benchmark.extra_info["speedup"] = round(comparison.speedup, 2)
    benchmark.extra_info["fast_seconds"] = round(
        comparison.fast.wall_seconds, 3)
    benchmark.extra_info["reference_seconds"] = round(
        comparison.reference.wall_seconds, 3)

    assert comparison.outcomes_equal

    # Measured ~2x (the shared generator/process machinery the solo
    # lane also skips is still paid per wake here); the floor leaves
    # the same proportional headroom for CI jitter as the solo gate.
    assert comparison.speedup >= 1.5
