"""Simulator fast path vs per-event reference engine (§IV-A kernel).

Times the same long single-job group under both ``SimConfig.engine``
settings.  The batched engine must win on wall clock without changing
a single simulated number — equality of outcomes is asserted here at
run granularity and bitwise per-event in ``tests/test_sim_fastpath.py``.
"""

from repro.experiments import sim_engines


def test_sim_engine_fast_path(once, benchmark):
    comparison = once(sim_engines.run)
    print()
    print(sim_engines.report(comparison))
    benchmark.extra_info["speedup"] = round(comparison.speedup, 2)
    benchmark.extra_info["fast_seconds"] = round(
        comparison.fast.wall_seconds, 3)
    benchmark.extra_info["reference_seconds"] = round(
        comparison.reference.wall_seconds, 3)

    # Same simulation, bit for bit — the speedup comes from skipped
    # event-loop machinery, never from changed arithmetic.
    assert comparison.outcomes_equal

    # The fast path's headline claim (measured ~4.5-5x on the
    # deterministic config; the floor leaves headroom for CI jitter).
    assert comparison.speedup >= 3.0
