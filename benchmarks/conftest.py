"""Benchmark-harness configuration.

Every benchmark regenerates one of the paper's tables/figures at full
evaluation scale (80 jobs / 100 machines unless the paper's own
experiment is smaller) and prints the same rows/series the paper
reports.  Run with::

    pytest benchmarks/ --benchmark-only

Shape assertions (who wins, roughly by how much) are part of each
benchmark, so a regression in the reproduction fails loudly.
"""

import pytest


def run_once(benchmark, function, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations — repeating them only
    re-measures the same numbers, so one round is the honest cost.
    """
    return benchmark.pedantic(function, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def once(benchmark):
    def runner(function, *args, **kwargs):
        return run_once(benchmark, function, *args, **kwargs)
    return runner
