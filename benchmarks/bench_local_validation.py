"""§IV-A validated on real threads (wall-clock, not simulated)."""

from repro.experiments import local_validation


def test_subtask_discipline_on_real_threads(once):
    result = once(local_validation.run, n_jobs=3, epochs=4,
                  comp_seconds=0.04)
    print()
    print(local_validation.report(result))
    # One COMP at a time: the coordinated wall time cannot beat the
    # perfect-serial bound by more than scheduling noise.
    assert result.serialization_ratio > 0.95
    # The serialization comes from Harmony's CPU token, not from the
    # harness: free-running sleepers overlap and finish much sooner.
    assert result.overlap_gain > 1.5
