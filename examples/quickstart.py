#!/usr/bin/env python
"""Quickstart: schedule a small multi-job workload with Harmony.

Builds a 24-machine simulated cluster, submits 8 PS training jobs
(Table I's app/dataset mix), runs them under Harmony's co-locating
scheduler and under the dedicated-allocation baseline, and prints the
comparison — a miniature of the paper's Fig. 10.

Run with::

    python examples/quickstart.py
"""

from repro.baselines import IsolatedRuntime
from repro.core import HarmonyRuntime
from repro.workloads import WorkloadGenerator


def main() -> None:
    # One hyper-parameter per (app, dataset) pair -> 8 jobs.
    workload = WorkloadGenerator(seed=42).base_workload(
        hyper_params_per_pair=1)
    n_machines = 24

    print(f"Workload: {len(workload)} jobs on {n_machines} machines")
    for spec in workload:
        print(f"  {spec.describe()}")

    print("\n--- dedicated allocation (isolated baseline) ---")
    isolated = IsolatedRuntime(n_machines, workload).run()
    print(isolated.summary())

    print("\n--- Harmony (co-located, coordinated subtasks) ---")
    harmony = HarmonyRuntime(n_machines, workload).run()
    print(harmony.summary())

    print("\n--- comparison (isolated = 1.0) ---")
    print(f"mean JCT speedup : "
          f"{isolated.mean_jct / harmony.mean_jct:.2f}x")
    print(f"makespan speedup : "
          f"{isolated.makespan / harmony.makespan:.2f}x")
    print(f"CPU utilization  : "
          f"{harmony.average_utilization('cpu'):.1%} vs "
          f"{isolated.average_utilization('cpu'):.1%}")
    print(f"jobs co-located  : {harmony.mean_concurrent_jobs():.1f} "
          f"concurrent on average, in "
          f"{harmony.mean_concurrent_groups():.1f} groups")


if __name__ == "__main__":
    main()
