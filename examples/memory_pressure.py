#!/usr/bin/env python
"""Memory pressure and dynamic data reloading (§IV-C / §V-G).

Co-locates eight jobs whose inputs exceed the machines' memory and
sweeps the disk-block ratio alpha: too little spill melts the group in
GC, too much stalls COMP subtasks on disk reads.  Harmony's per-job
hill climbing finds the balance automatically.

Run with::

    python examples/memory_pressure.py
"""

from repro.experiments import reloading


def main() -> None:
    print("Sweeping fixed disk-block ratios on 8 co-located jobs / "
          "32 machines...\n")
    result = reloading.run(alphas=(0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9))

    peak = max(seconds for _, seconds in result.fixed_rows)
    for alpha, seconds in result.fixed_rows:
        bar = "#" * int(40 * seconds / peak)
        print(f"  alpha={alpha:.2f}  {seconds:7.1f} s  |{bar}")
    print(f"  adaptive    {result.adaptive_iteration_seconds:7.1f} s  "
          "<- Harmony's hill climbing")

    best_alpha, best_seconds = result.best_fixed
    mean_alpha, min_alpha, max_alpha = result.alpha_stats()
    print(f"\nbest fixed ratio: alpha={best_alpha:.1f} "
          f"({best_seconds:.1f} s per iteration)")
    print(f"adaptive ratios per job: mean {mean_alpha:.2f}, "
          f"min {min_alpha:.2f}, max {max_alpha:.2f}")
    print("\nThe left side of the curve is the paper's 'GC explodes' "
          "regime; the right side pays reload stalls — Harmony sits at "
          "the balance point without an offline sweep (paper §V-G).")


if __name__ == "__main__":
    main()
