#!/usr/bin/env python
"""Replay a bursty, Google-trace-like arrival process (§V-D).

Jobs arrive in spikes over a variable-rate background; Harmony
dynamically profiles each arrival, places it ("add it to a proper group
that maximizes U or let it wait"), and regroups as jobs finish.  The
script prints an arrival/utilization storyboard and the final speedups
against the dedicated-allocation baseline.

Run with::

    python examples/trace_replay.py
"""

import numpy as np

from repro.baselines import IsolatedRuntime
from repro.core import HarmonyRuntime
from repro.workloads import (
    WorkloadGenerator,
    google_trace_arrivals,
    with_arrival_times,
)


def sparkline(values, width=64) -> str:
    blocks = " .:-=+*#%@"
    chunks = np.array_split(np.asarray(values, dtype=float),
                            min(width, max(1, len(values))))
    return "".join(
        blocks[int(np.clip(np.mean(c), 0, 1) * (len(blocks) - 1))]
        for c in chunks)


def main() -> None:
    jobs = WorkloadGenerator(seed=11).base_workload(
        hyper_params_per_pair=2)  # 16 jobs
    arrival_times = google_trace_arrivals(
        len(jobs), mean_interarrival_seconds=300.0, burstiness=0.6,
        seed=11)
    workload = with_arrival_times(jobs, arrival_times)
    n_machines = 32

    print(f"{len(workload)} jobs arriving over "
          f"{arrival_times[-1] / 60:.0f} minutes (bursty trace)")
    minute_bins = np.zeros(int(arrival_times[-1] / 60) + 1)
    for t in arrival_times:
        minute_bins[int(t / 60)] += 1
    print(f"arrivals |{sparkline(minute_bins / max(minute_bins.max(), 1))}|")

    harmony = HarmonyRuntime(n_machines, workload).run()
    isolated = IsolatedRuntime(n_machines, workload).run()

    for name, result in (("harmony", harmony), ("isolated", isolated)):
        timeline = result.utilization_timeline("cpu")
        print(f"{name:9s} cpu |{sparkline(timeline.values)}| "
              f"avg {result.average_utilization('cpu'):.0%}, "
              f"makespan {result.makespan / 60:.0f} min")

    print(f"\nJCT speedup      : "
          f"{isolated.mean_jct / harmony.mean_jct:.2f}x")
    print(f"makespan speedup : "
          f"{isolated.makespan / harmony.makespan:.2f}x")
    migrated = sum(1 for o in harmony.outcomes.values()
                   if o.migrations > 0)
    print(f"jobs migrated at least once: {migrated}/{len(workload)} "
          f"(regrouping overhead "
          f"{harmony.migration_overhead_seconds / harmony.makespan:.1%}"
          " of makespan)")


if __name__ == "__main__":
    main()
