#!/usr/bin/env python
"""Train *real* models, co-located, through the actual PS runtime.

Three genuinely different training jobs — multinomial logistic
regression, Lasso, and NMF — run simultaneously on real threads.  Each
worker iterates PULL -> COMP -> PUSH against its job's parameter-server
shards while Harmony's subtask discipline serializes COMP subtasks on a
shared CPU token and lets COMM subtasks overlap (§IV-A, for real).

Run with::

    python examples/train_colocated_models.py
"""

import numpy as np

from repro.core.local_runtime import LocalHarmonyRuntime, LocalJob
from repro.ml import LassoModel, MLRModel, NMFModel
from repro.ml.datasets import (
    make_classification,
    make_ratings,
    make_regression,
    partition_rows,
)


def build_jobs() -> list[LocalJob]:
    jobs = []

    # Job 1: 4-class logistic regression, 2 workers.
    features, labels, _ = make_classification(600, 20, 4, seed=1)
    parts = partition_rows(len(labels), 2)
    jobs.append(LocalJob(
        "mlr", MLRModel(20, 4),
        [{"X": features[p], "y": labels[p]} for p in parts],
        max_epochs=25, learning_rate=0.5))

    # Job 2: sparse regression, 2 workers.
    features, targets, _ = make_regression(500, 60, sparsity=0.8,
                                           seed=2)
    parts = partition_rows(len(targets), 2)
    jobs.append(LocalJob(
        "lasso", LassoModel(60, l1=0.02),
        [{"X": features[p], "y": targets[p]} for p in parts],
        max_epochs=25, learning_rate=0.3))

    # Job 3: ratings factorization, 2 workers (nnz split).
    coords, values = make_ratings(80, 60, rank=6, density=0.15, seed=3)
    halves = np.array_split(np.arange(len(values)), 2)
    rng = np.random.default_rng(4)
    jobs.append(LocalJob(
        "nmf", NMFModel(80, 60, rank=6),
        [{"coords": coords[h], "values": values[h],
          "W": rng.uniform(0.1, 0.5, size=(80, 6))} for h in halves],
        max_epochs=25, learning_rate=0.4))
    return jobs


def main() -> None:
    runtime = LocalHarmonyRuntime(build_jobs(), barrier_timeout=60)
    print("Training MLR + Lasso + NMF co-located "
          "(one COMP at a time, overlapping COMM)...")
    results = runtime.run()

    for job_id, result in sorted(results.items()):
        losses = result.losses
        print(f"\n{job_id}: {result.epochs} epochs, "
              f"{result.bytes_moved / 1024:.0f} KiB over the PS wire")
        print(f"  objective: {losses[0]:.4f} -> {losses[-1]:.4f} "
              f"({(1 - losses[-1] / losses[0]):.0%} reduction)")
        metrics = runtime.profiler.get(job_id)
        print(f"  profiled:  W_cpu={metrics.cpu_work * 1e3:.2f} ms, "
              f"t_net={metrics.t_net * 1e3:.2f} ms over "
              f"{metrics.samples} iterations")

    print("\nThe profiled metrics above are exactly what Harmony's "
          "scheduler consumes (T_cpu, T_net per job, §IV-B1).")


if __name__ == "__main__":
    main()
