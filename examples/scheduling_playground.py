#!/usr/bin/env python
"""Poke Algorithm 1 directly: profiled metrics in, grouping out.

Shows the scheduler's moving parts without a simulation: hand-crafted
profiled metrics (T_cpu, T_net per job) go into ``schedule()``, and the
resulting job groups, machine allocations, and predicted utilization
come out — then the same pool goes through the exhaustive-search Oracle
for comparison (Fig. 14 in miniature).

Run with::

    python examples/scheduling_playground.py
"""

import time

from repro.baselines.oracle import OracleScheduler
from repro.core import HarmonyScheduler
from repro.core.profiler import JobMetrics

N_MACHINES = 32


def build_pool() -> list[JobMetrics]:
    """Six jobs with deliberately complementary resource shapes."""
    pool = [
        # Compute-heavy (LDA-like): lots of CPU work, light model.
        JobMetrics("lda-A", cpu_work=1600.0, t_net=30.0, m_observed=16),
        JobMetrics("lda-B", cpu_work=1200.0, t_net=25.0, m_observed=16),
        # Communication-heavy (MLR-like): big model traffic.
        JobMetrics("mlr-A", cpu_work=600.0, t_net=180.0, m_observed=16),
        JobMetrics("mlr-B", cpu_work=500.0, t_net=160.0, m_observed=16),
        # Balanced (NMF-like).
        JobMetrics("nmf-A", cpu_work=900.0, t_net=90.0, m_observed=16),
        JobMetrics("nmf-B", cpu_work=850.0, t_net=80.0, m_observed=16),
    ]
    return pool


def main() -> None:
    pool = build_pool()
    print(f"Pool: {len(pool)} profiled jobs, {N_MACHINES} machines")
    for metrics in pool:
        print(f"  {metrics.job_id}: W_cpu={metrics.cpu_work:.0f} "
              f"machine-s, T_net={metrics.t_net:.0f} s "
              f"(T_itr at m=16: {metrics.t_iteration_at(16):.0f} s)")

    print("\n--- Harmony (Algorithm 1) ---")
    started = time.perf_counter()
    plan = HarmonyScheduler().schedule(pool, N_MACHINES)
    elapsed = time.perf_counter() - started
    print(plan.describe())
    print(f"decided in {elapsed * 1e3:.2f} ms")

    print("\n--- Oracle (exhaustive search over all partitions) ---")
    oracle = OracleScheduler()
    started = time.perf_counter()
    truth = oracle.schedule(pool, N_MACHINES)
    elapsed = time.perf_counter() - started
    print(truth.describe())
    print(f"decided in {elapsed * 1e3:.2f} ms after evaluating "
          f"{oracle.last_search_size} candidate partitions")

    gap = (truth.score - plan.score) / truth.score
    print(f"\ngreedy-vs-oracle utilization gap: {gap:.1%} "
          "(paper Fig. 14: ~2%)")


if __name__ == "__main__":
    main()
