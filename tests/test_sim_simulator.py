"""Tests for the simulator event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


class TestClock:
    def test_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_custom_start_time(self):
        assert Simulator(start_time=10.0).now == 10.0

    def test_callbacks_run_in_time_order(self, sim):
        order = []
        sim.call_at(3.0, lambda: order.append(3))
        sim.call_at(1.0, lambda: order.append(1))
        sim.call_at(2.0, lambda: order.append(2))
        sim.run()
        assert order == [1, 2, 3]

    def test_ties_run_in_schedule_order(self, sim):
        order = []
        sim.call_at(1.0, lambda: order.append("a"))
        sim.call_at(1.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b"]

    def test_call_in_is_relative(self, sim):
        times = []
        sim.call_at(5.0, lambda: sim.call_in(2.0,
                                             lambda: times.append(sim.now)))
        sim.run()
        assert times == [7.0]

    def test_scheduling_in_the_past_raises(self, sim):
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.call_in(-1.0, lambda: None)


class TestRunControl:
    def test_run_until_stops_clock_at_limit(self, sim):
        fired = []
        sim.call_at(10.0, lambda: fired.append(True))
        end = sim.run(until=4.0)
        assert end == 4.0
        assert not fired
        # The pending callback still runs on a later unrestricted run.
        sim.run()
        assert fired

    def test_run_until_advances_clock_even_when_idle(self, sim):
        sim.run(until=100.0)
        assert sim.now == 100.0

    def test_max_events_bounds_execution(self, sim):
        count = []
        for index in range(5):
            sim.call_at(float(index), lambda: count.append(1))
        sim.run(max_events=3)
        assert len(count) == 3

    def test_step_returns_false_when_empty(self, sim):
        assert sim.step() is False

    def test_peek_reports_next_event_time(self, sim):
        assert sim.peek() is None
        sim.call_at(9.0, lambda: None)
        assert sim.peek() == 9.0

    def test_reentrant_run_raises(self, sim):
        def reenter():
            sim.run()
        sim.call_at(1.0, reenter)
        with pytest.raises(SimulationError):
            sim.run()

    def test_events_scheduled_during_run_execute(self, sim):
        seen = []
        sim.call_at(1.0, lambda: sim.call_in(1.0,
                                             lambda: seen.append(sim.now)))
        sim.run()
        assert seen == [2.0]
