"""Tests for experiment plumbing and baseline gating details."""


from repro.baselines.base import BaselineRuntime
from repro.core.group_runtime import ExecutionMode
from repro.experiments.common import run_single_group, scaled_workload
from repro.workloads.apps import DATASETS, JobSpec, LDA, MLR
from repro.workloads.generator import WorkloadGenerator


class TestRunSingleGroup:
    def test_single_job_measures_utilization(self):
        spec = JobSpec("j", LDA, DATASETS["LDA"][1], iterations=4)
        result = run_single_group([spec], 8,
                                  mode=ExecutionMode.ISOLATED)
        assert result.job_ids == ("j",)
        assert 0.0 < result.cpu_utilization <= 1.0
        assert 0.0 < result.net_utilization <= 1.0
        assert result.mean_iteration_seconds > 0
        assert not result.failed

    def test_max_iterations_caps_duration(self):
        spec = JobSpec("j", LDA, DATASETS["LDA"][1], iterations=50)
        short = run_single_group([spec], 8, max_iterations=3)
        long = run_single_group([spec], 8, max_iterations=10)
        assert short.duration_seconds < long.duration_seconds

    def test_oom_is_reported_not_raised(self):
        specs = [JobSpec("a", MLR, DATASETS["MLR"][1], model_scale=2.0,
                         iterations=3),
                 JobSpec("b", MLR, DATASETS["MLR"][1], model_scale=2.0,
                         iterations=3),
                 JobSpec("c", MLR, DATASETS["MLR"][1], model_scale=2.0,
                         iterations=3)]
        result = run_single_group(specs, 8, mode=ExecutionMode.NAIVE)
        assert result.failed
        assert result.oom is not None


class TestScaledWorkload:
    def test_machine_floor_protects_baselines(self):
        _, machines = scaled_workload(0.05)
        assert machines >= 20

    def test_jobs_scale_in_eighths(self):
        jobs, _ = scaled_workload(0.25)
        assert len(jobs) == 8 * round(10 * 0.25)


class TestColocationGating:
    def _runtime(self, gated):
        from dataclasses import replace
        from repro.config import DEFAULT_SIM_CONFIG
        config = replace(DEFAULT_SIM_CONFIG,
                         memory=replace(DEFAULT_SIM_CONFIG.memory,
                                        spill_enabled=False))
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        return BaselineRuntime(
            32, jobs, mode=ExecutionMode.HARMONY, name="gated",
            group_size=3, dop_scale=0.5, config=config,
            colocate_only_if_fits=gated)

    def test_gated_runtime_completes(self):
        result = self._runtime(True).run()
        assert len(result.finished) == 8

    def test_memory_dominated_detection(self):
        runtime = self._runtime(True)
        master = runtime.master
        big = [JobSpec(f"m{i}", MLR, DATASETS["MLR"][1], iterations=2)
               for i in range(3)]
        wanted = master.machines_for(big)
        # Three large jobs without spill are memory-dominated.
        assert master._memory_dominated(big, wanted)
        small = [JobSpec("s", LDA, DATASETS["LDA"][1], iterations=2)]
        assert not master._memory_dominated(
            small, master.machines_for(small))

    def test_dop_scale_validation_through_machines_for(self):
        runtime = self._runtime(False)
        spec = JobSpec("x", LDA, DATASETS["LDA"][0], iterations=2)
        wanted = runtime.master.machines_for([spec])
        assert 1 <= wanted <= runtime.cluster.size
