"""Differential tests pinning the incremental scheduler to the frozen
reference implementation, plus regressions for the plan cache, warm
starts, the closed-form allocator, and the §IV-B4 plan patch."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.check.scenarios import ScenarioGenerator
from repro.cluster.cluster import Cluster
from repro.config import SchedulerConfig, SimConfig
from repro.core.allocation import allocate_machines
from repro.core.grouping import assign_jobs
from repro.core.master import HarmonyMaster
from repro.core.profiler import JobMetrics, Profiler
from repro.core.reference import (
    ReferenceScheduler,
    reference_allocate_machines,
    reference_assign_jobs,
)
from repro.core.regroup import splice_plan
from repro.core.scheduler import HarmonyScheduler, PlanCache, _CACHE_MISS
from repro.metrics.utilization import ClusterUsageRecorder
from repro.sim import RandomStreams, Simulator
from repro.workloads.costmodel import CostModel

ORDERS = ("critical", "sjf", "ljf", "interleave")


def make_jobs(values):
    return [JobMetrics(job_id=f"j{i}", cpu_work=float(w), t_net=float(n),
                       m_observed=16)
            for i, (w, n) in enumerate(values)]


def partitions(plan):
    return tuple(group.job_ids for group in plan.groups)


job_values = st.lists(
    st.tuples(st.floats(0.01, 80.0), st.floats(0.001, 6.0)),
    min_size=1, max_size=40)


class TestSchedulerDifferential:
    @settings(max_examples=60, deadline=None)
    @given(values=job_values, machines=st.integers(1, 400),
           order=st.sampled_from(ORDERS))
    def test_plans_bitwise_equal_to_reference(self, values, machines,
                                              order):
        """Same partitions, same allocations, same scores — bit for
        bit — whatever the pool and admission order."""
        jobs = make_jobs(values)
        config = SchedulerConfig(admission_order=order)
        fast_plan = HarmonyScheduler(config=config).schedule(jobs,
                                                             machines)
        ref_plan = ReferenceScheduler(config=config).schedule(jobs,
                                                              machines)
        assert fast_plan == ref_plan
        if fast_plan is not None:
            assert partitions(fast_plan) == partitions(ref_plan)
            assert fast_plan.score == ref_plan.score

    @settings(max_examples=30, deadline=None)
    @given(values=job_values, machines=st.integers(2, 300))
    def test_repeat_call_serves_identical_plan_from_cache(self, values,
                                                          machines):
        jobs = make_jobs(values)
        scheduler = HarmonyScheduler()
        first = scheduler.schedule(jobs, machines)
        second = scheduler.schedule(jobs, machines)
        assert first == second
        stats = scheduler.last_stats
        assert stats.cache_misses == 0
        assert stats.cache_hits == stats.n_prefixes_evaluated
        assert stats.fast_path

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_scenario_generator_pools_match_reference(self, seed):
        """Pools drawn the way the check harness draws them (real Table
        I jobs through the cost model) schedule identically."""
        scenario = ScenarioGenerator(seed).generate()
        cost_model = CostModel(scenario.config.machine)
        jobs = []
        for spec in scenario.specs:
            profile = cost_model.profile(spec, 16)
            jobs.append(JobMetrics(job_id=spec.job_id,
                                   cpu_work=profile.t_comp * 16,
                                   t_net=profile.t_comm, m_observed=16))
        config = scenario.config.scheduler
        fast = HarmonyScheduler(config=config).schedule(
            jobs, scenario.n_machines)
        ref = ReferenceScheduler(config=config).schedule(
            jobs, scenario.n_machines)
        assert fast == ref

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(st.tuples(st.floats(0.01, 80.0),
                                     st.floats(0.001, 6.0)),
                           min_size=2, max_size=30),
           n_groups=st.integers(1, 6), m_ref=st.integers(1, 64))
    def test_grouping_matches_reference(self, values, n_groups, m_ref):
        jobs = make_jobs(values)
        n_groups = min(n_groups, len(jobs))
        fast = assign_jobs(jobs, n_groups, m_ref=m_ref)
        ref = reference_assign_jobs(jobs, n_groups, m_ref=m_ref)
        assert [[j.job_id for j in g] for g in fast] \
            == [[j.job_id for j in g] for g in ref]


class TestAllocatorDifferential:
    @settings(max_examples=80, deadline=None)
    @given(sizes=st.lists(st.integers(1, 5), min_size=1, max_size=20),
           data=st.data(), headroom=st.integers(0, 300),
           with_floor=st.booleans())
    def test_allocation_matches_reference(self, sizes, data, headroom,
                                          with_floor):
        groups = []
        for g, size in enumerate(sizes):
            groups.append([
                JobMetrics(
                    job_id=f"g{g}j{j}",
                    cpu_work=data.draw(st.floats(0.0, 50.0)),
                    t_net=data.draw(st.floats(0.0, 5.0)),
                    m_observed=16)
                for j in range(size)])
        floor = (lambda ids: 1 + len(ids)) if with_floor else None
        machines = sum(len(g) + 1 for g in groups) + headroom
        assert allocate_machines(groups, machines, memory_floor=floor) \
            == reference_allocate_machines(groups, machines,
                                           memory_floor=floor)

    def test_duplicate_pressure_ties_break_by_group_index(self):
        """Identical groups force exact priority ties at every grant;
        the closed form must hand leftovers to lower indexes first,
        like the reference heap's tuple ordering."""
        job = JobMetrics(job_id="t", cpu_work=30.0, t_net=1.0,
                         m_observed=16)
        groups = [[job]] * 5
        for machines in range(5, 40):
            assert allocate_machines(groups, machines) \
                == reference_allocate_machines(groups, machines)


class TestPlanCache:
    def pool(self):
        rng = np.random.default_rng(5)
        return [JobMetrics(job_id=f"j{i}",
                           cpu_work=float(rng.uniform(1, 40)),
                           t_net=float(rng.uniform(0.1, 3)),
                           m_observed=16) for i in range(24)]

    def test_profiler_update_invalidates_affected_plans(self):
        """After a metrics publish, the next schedule must not serve a
        stale plan: it must equal a cold scheduler's plan on the new
        pool."""
        profiler = Profiler()
        for job in self.pool():
            profiler.record_iteration(job.job_id,
                                      job.cpu_work / 16, job.t_net, 16)
        scheduler = HarmonyScheduler()
        profiler.add_listener(scheduler.plan_cache.invalidate_job)

        ids = [f"j{i}" for i in range(24)]
        snapshot = [profiler.get(job_id) for job_id in ids]
        scheduler.schedule(snapshot, 60)

        profiler.record_iteration("j3", 90.0, 0.01, 16)  # drastic shift
        updated = [profiler.get(job_id) for job_id in ids]
        warm_plan = scheduler.schedule(updated, 60)
        cold_plan = HarmonyScheduler().schedule(updated, 60)
        assert warm_plan == cold_plan
        assert scheduler.last_stats.cache_misses > 0

    def test_invalidate_job_drops_only_plans_containing_it(self):
        cache = PlanCache(max_entries=8)
        a = JobMetrics(job_id="a", cpu_work=1.0, t_net=1.0, m_observed=4)
        b = JobMetrics(job_id="b", cpu_work=2.0, t_net=1.0, m_observed=4)
        cache.put(("k1", 1, 10), (a,), None)
        cache.put(("k2", 2, 10), (a, b), None)
        cache.put(("k3", 1, 10), (b,), None)
        cache.invalidate_job("a")
        assert cache.get(("k1", 1, 10), (a,)) is _CACHE_MISS
        assert cache.get(("k2", 2, 10), (a, b)) is _CACHE_MISS
        assert cache.get(("k3", 1, 10), (b,)) is None  # survived

    def test_metrics_mismatch_is_a_miss_not_a_wrong_plan(self):
        """A fingerprint collision (same key, different jobs) must fall
        through to a recompute."""
        cache = PlanCache(max_entries=8)
        a = JobMetrics(job_id="a", cpu_work=1.0, t_net=1.0, m_observed=4)
        a2 = JobMetrics(job_id="a", cpu_work=9.0, t_net=1.0,
                        m_observed=4)
        cache.put(("k", 1, 10), (a,), None)
        assert cache.get(("k", 1, 10), (a2,)) is _CACHE_MISS

    def test_lru_eviction_bounds_entries(self):
        cache = PlanCache(max_entries=2)
        jobs = [JobMetrics(job_id=f"x{i}", cpu_work=1.0, t_net=1.0,
                           m_observed=4) for i in range(3)]
        for i, job in enumerate(jobs):
            cache.put((f"k{i}", 1, 10), (job,), None)
        assert cache.get(("k0", 1, 10), (jobs[0],)) is _CACHE_MISS
        assert cache.get(("k2", 1, 10), (jobs[2],)) is None

    def test_cache_disabled_by_config(self):
        scheduler = HarmonyScheduler(
            config=SchedulerConfig(plan_cache_entries=0))
        assert scheduler.plan_cache is None
        jobs = self.pool()
        plan = scheduler.schedule(jobs, 60)
        assert plan == ReferenceScheduler().schedule(jobs, 60)
        assert scheduler.last_stats.cache_hits == 0

    def test_warm_starts_engage_without_cache(self):
        scheduler = HarmonyScheduler(
            config=SchedulerConfig(plan_cache_entries=0))
        scheduler.schedule(self.pool(), 60)
        stats = scheduler.last_stats
        assert stats.warm_start_reuses > 0
        assert stats.fast_path


class TestSplicePlan:
    def make_plan(self):
        """A two-group plan with a singleton first group, built through
        the scheduler's own plan assembly."""
        scheduler = HarmonyScheduler()
        jobs = make_jobs([(30.0, 0.5), (1.0, 2.0), (1.5, 1.8)])
        plan = scheduler.build_plan([[jobs[0]], [jobs[1], jobs[2]]],
                                    [4, 6], total_machines=12)
        lookup = {j.job_id: j for j in jobs}
        return scheduler, jobs, plan, lookup

    def test_identical_replacement_keeps_score_for_singleton_group(self):
        scheduler, jobs, plan, lookup = self.make_plan()
        patched = splice_plan(plan, scheduler.perf_model, 0, "j0",
                              [jobs[0]], lookup.__getitem__)
        assert patched.score == plan.score
        assert patched.total_machines == plan.total_machines

    def test_removal_without_replacement_drops_empty_group(self):
        scheduler, jobs, plan, lookup = self.make_plan()
        patched = splice_plan(plan, scheduler.perf_model, 0, "j0",
                              [], lookup.__getitem__)
        assert len(patched.groups) == len(plan.groups) - 1
        assert patched.score < plan.score  # idle machines cost
        assert list(patched.groups) == [plan.groups[1]]  # untouched

    def test_worse_replacement_lowers_score(self):
        scheduler, jobs, plan, lookup = self.make_plan()
        weak = JobMetrics(job_id="weak", cpu_work=0.01, t_net=0.01,
                          m_observed=16)
        patched = splice_plan(plan, scheduler.perf_model, 0, "j0",
                              [weak], lookup.__getitem__)
        assert patched.score < plan.score


class TestMasterPatchPath:
    def build_master(self, n_machines=24):
        sim = Simulator()
        config = SimConfig()
        cluster = Cluster(n_machines, config.machine)
        recorder = ClusterUsageRecorder(n_machines)
        master = HarmonyMaster(sim, cluster, CostModel(config.machine),
                               config, RandomStreams(config.seed),
                               recorder)
        return master

    def feed(self, master, job_id, t_cpu, t_net):
        master.profiler.record_iteration(job_id, t_cpu, t_net, 4)

    def test_patch_accepts_similar_and_rejects_weak_replacement(self):
        from repro.workloads.apps import DATASETS, JobSpec, LDA

        master = self.build_master()
        jobs = [JobSpec(f"j{i}", LDA, DATASETS["LDA"][0], iterations=3)
                for i in range(3)]
        for spec in jobs:
            master.submit(spec)
        # Survivors are net-bound; the departed job was the CPU anchor,
        # so replacing it with a trivial job tanks CPU utilization.
        self.feed(master, "j0", 0.2, 1.0)
        self.feed(master, "j1", 0.2, 1.0)
        self.feed(master, "j2", 5.0, 1.0)
        group = next(g for g in master.groups.values()
                     if any(j.job_id == "j0" for j in g.jobs()))
        target = master.profiler.get("j2")

        twin = JobMetrics(job_id="twin", cpu_work=target.cpu_work,
                          t_net=target.t_net,
                          m_observed=target.m_observed)
        assert master._patch_accepts(group, target, [twin],
                                     kind="similar")

        weak = JobMetrics(job_id="weak", cpu_work=1e-6, t_net=1e-6,
                          m_observed=target.m_observed)
        assert not master._patch_accepts(group, target, [weak],
                                         kind="similar")

    def test_profiler_publish_clears_master_estimate_cache(self):
        from repro.workloads.apps import DATASETS, JobSpec, LDA

        master = self.build_master()
        master.submit(JobSpec("j0", LDA, DATASETS["LDA"][0],
                              iterations=3))
        self.feed(master, "j0", 2.0, 1.0)
        group = next(iter(master.groups.values()))
        first = master._group_estimate(group)
        assert master._group_estimate(group) is first  # memoized
        assert master.estimate_cache_hits == 1
        self.feed(master, "j0", 4.0, 1.0)  # publish clears the memo
        refreshed = master._group_estimate(group)
        assert refreshed is not first
        assert refreshed.t_cpu_sum > first.t_cpu_sum

    def test_profiler_publish_invalidates_scheduler_plan_cache(self):
        from repro.workloads.apps import DATASETS, JobSpec, LDA

        master = self.build_master()
        master.submit(JobSpec("j0", LDA, DATASETS["LDA"][0],
                              iterations=3))
        cache = master.scheduler.plan_cache
        job = JobMetrics(job_id="j0", cpu_work=1.0, t_net=1.0,
                         m_observed=4)
        cache.put(("k", 1, 24), (job,), None)
        self.feed(master, "j0", 2.0, 1.0)
        assert cache.get(("k", 1, 24), (job,)) is _CACHE_MISS
