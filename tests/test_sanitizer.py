"""Tests for the dynamic race sanitizer (repro.analysis.sanitizer):
lock-order inversion detection, ownership tracking, the Eraser-style
watched-object lockset algorithm, and install()/uninstall() patching
of the real ``threading`` factories."""

import threading

import pytest

from repro.analysis.sanitizer import (
    Sanitizer,
    SanitizerError,
    current,
    install,
    uninstall,
)


@pytest.fixture
def sanitizer():
    return Sanitizer(name="test")


def run_thread(target, *args):
    thread = threading.Thread(target=target, args=args)
    thread.start()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestLockOrder:
    def test_seeded_inversion_detected(self, sanitizer):
        """The acceptance regression: acquiring two locks in opposite
        orders — even sequentially, without an actual deadlock — is
        reported as a lock-order inversion."""
        first = sanitizer.lock("a.py:1")
        second = sanitizer.lock("b.py:1")
        with first:
            with second:
                pass
        with second:
            with first:
                pass
        with pytest.raises(SanitizerError, match="lock-order inversion"):
            sanitizer.check()

    def test_inversion_across_threads_detected(self, sanitizer):
        first = sanitizer.lock("a.py:1")
        second = sanitizer.lock("b.py:1")
        with first:
            with second:
                pass

        def backward():
            with second:
                with first:
                    pass

        run_thread(backward)
        with pytest.raises(SanitizerError, match="lock-order inversion"):
            sanitizer.check()

    def test_three_lock_cycle_detected(self, sanitizer):
        locks = [sanitizer.lock(f"site{i}") for i in range(3)]
        for i in range(3):
            with locks[i]:
                with locks[(i + 1) % 3]:
                    pass
        with pytest.raises(SanitizerError, match="closes the cycle"):
            sanitizer.check()

    def test_consistent_order_clean(self, sanitizer):
        first = sanitizer.lock("a.py:1")
        second = sanitizer.lock("b.py:1")
        for _ in range(3):
            with first:
                with second:
                    pass
        sanitizer.check()

    def test_reentrant_rlock_no_self_edge(self, sanitizer):
        rlock = sanitizer.rlock("a.py:1")
        with rlock:
            with rlock:
                pass
        sanitizer.check()


class TestOwnership:
    def test_foreign_release_detected(self, sanitizer):
        lock = sanitizer.lock("a.py:1")
        lock.acquire()
        run_thread(lock.release)
        with pytest.raises(SanitizerError, match="does not hold it"):
            sanitizer.check()

    def test_foreign_rlock_release_detected(self, sanitizer):
        rlock = sanitizer.rlock("a.py:1")
        rlock.acquire()
        run_thread(rlock.release)
        with pytest.raises(SanitizerError, match="does not own it"):
            sanitizer.check()
        rlock.release()

    def test_held_by_tracks_stack(self, sanitizer):
        lock = sanitizer.lock("a.py:1")
        assert sanitizer.held_by() == []
        with lock:
            assert sanitizer.held_by() == [lock]
        assert sanitizer.held_by() == []


class _Box:
    def __init__(self):
        self.value = 0


class TestWatch:
    def test_unguarded_concurrent_mutation_detected(self, sanitizer):
        box = sanitizer.watch(_Box())
        box.value = 1

        def clobber():
            box.value = 2

        run_thread(clobber)
        with pytest.raises(SanitizerError,
                           match="unsynchronized concurrent mutation"):
            sanitizer.check()

    def test_guarded_mutation_clean(self, sanitizer):
        lock = sanitizer.lock("a.py:1")
        box = sanitizer.watch(_Box())
        with lock:
            box.value = 1

        def bump():
            with lock:
                box.value = 2

        run_thread(bump)
        sanitizer.check()

    def test_single_thread_unguarded_clean(self, sanitizer):
        """One writer needs no lock: the cell never goes shared."""
        box = sanitizer.watch(_Box())
        for i in range(5):
            box.value = i
        sanitizer.check()

    def test_watch_is_idempotent(self, sanitizer):
        box = _Box()
        assert sanitizer.watch(box) is box
        watched_class = type(box)
        assert sanitizer.watch(box) is box
        assert type(box) is watched_class


class TestInstall:
    @pytest.fixture(autouse=True)
    def _bare_threading(self):
        """These tests drive install() themselves; under
        ``pytest --sanitize`` the session sanitizer is stashed and
        reinstated so the two don't collide."""
        ambient = current()
        if ambient is not None:
            uninstall()
        yield
        if current() is not None:
            uninstall()
        if ambient is not None:
            install(ambient)

    def test_patched_factories_feed_the_sanitizer(self):
        sanitizer = install(Sanitizer(name="patched"))
        try:
            first = threading.Lock()
            second = threading.Lock()
            with first:
                with second:
                    pass
            with second:
                with first:
                    pass
        finally:
            uninstall()
        with pytest.raises(SanitizerError, match="lock-order inversion"):
            sanitizer.check()

    def test_condition_roundtrip_clean(self):
        """Condition resolves the patched RLock at call time; a
        wait/notify round-trip must not produce false violations."""
        sanitizer = install(Sanitizer(name="condition"))
        try:
            condition = threading.Condition()
            ready = []

            def producer():
                with condition:
                    ready.append(True)
                    condition.notify()

            with condition:
                threading.Thread(target=producer).start()
                assert condition.wait_for(lambda: ready, timeout=10)
        finally:
            uninstall()
        sanitizer.check()

    def test_double_install_rejected(self):
        sanitizer = install(Sanitizer(name="one"))
        try:
            with pytest.raises(SanitizerError, match="already installed"):
                install(Sanitizer(name="two"))
            assert current() is sanitizer
        finally:
            uninstall()

    def test_uninstall_restores_real_factories(self):
        real_lock = threading.Lock
        install(Sanitizer(name="temp"))
        assert threading.Lock is not real_lock
        uninstall()
        assert threading.Lock is real_lock
        assert current() is None
