"""Tests for the per-worker fine-grained executor and its barrier."""

import pytest

from repro.config import ExecutionConfig, SimConfig
from repro.core.fine_executor import (
    FineGrainedResult,
    SimBarrier,
    run_fine_grained_group,
)
from repro.errors import SimulationError
from repro.workloads.apps import DATASETS, JobSpec, LDA
from repro.workloads.costmodel import CostModel


def quiet_config():
    return SimConfig(execution=ExecutionConfig(duration_jitter_cv=0.0,
                                               barrier_overhead=0.0))


class TestSimBarrier:
    def test_releases_on_nth_arrival(self, sim):
        barrier = SimBarrier(sim, 3)
        first = barrier.arrive("k")
        second = barrier.arrive("k")
        assert not first.triggered
        third = barrier.arrive("k")
        assert first.triggered and second.triggered and third.triggered
        assert first is second is third

    def test_keys_are_independent(self, sim):
        barrier = SimBarrier(sim, 2)
        a = barrier.arrive(("job", 0))
        b = barrier.arrive(("job", 1))
        assert not a.triggered and not b.triggered
        barrier.arrive(("job", 0))
        assert a.triggered and not b.triggered

    def test_over_arrival_raises(self, sim):
        barrier = SimBarrier(sim, 1)
        barrier.arrive("k")
        with pytest.raises(SimulationError):
            barrier.arrive("k")

    def test_single_member_releases_immediately(self, sim):
        barrier = SimBarrier(sim, 1)
        assert barrier.arrive("x").triggered

    def test_bad_count_rejected(self, sim):
        with pytest.raises(SimulationError):
            SimBarrier(sim, 0)


class TestFineGrainedGroup:
    def _specs(self, n=2, iterations=5):
        return [JobSpec(f"j{i}", LDA, DATASETS["LDA"][0],
                        iterations=iterations) for i in range(n)]

    def test_single_job_matches_solo_pipeline(self):
        config = quiet_config()
        spec = self._specs(1)[0]
        result = run_fine_grained_group([spec], 8, config,
                                        iterations=5)
        profile = CostModel(config.machine).profile(spec, 8)
        assert result.pacing_cycle_seconds() == pytest.approx(
            profile.t_iteration, rel=0.02)

    def test_workers_synchronize_per_iteration(self):
        """Every job records exactly `iterations` cycles (machine 0's
        view, gated by the push barrier of all machines)."""
        result = run_fine_grained_group(self._specs(2), 4,
                                        quiet_config(), iterations=6)
        for durations in result.cycles.values():
            assert len(durations) == 6

    def test_busy_fractions_bounded(self):
        result = run_fine_grained_group(self._specs(3), 8,
                                        quiet_config(), iterations=5)
        assert 0.0 < result.cpu_busy_fraction <= 1.0
        assert 0.0 < result.net_busy_fraction <= 1.0

    def test_colocation_shares_the_cpu(self):
        """Two co-located jobs pace each other: the shared-group cycle
        exceeds a solo run's."""
        config = quiet_config()
        solo = run_fine_grained_group(self._specs(1), 8, config,
                                      iterations=5)
        pair = run_fine_grained_group(self._specs(2), 8, config,
                                      iterations=5)
        assert pair.pacing_cycle_seconds() > solo.pacing_cycle_seconds()

    def test_invalid_inputs_rejected(self):
        with pytest.raises(SimulationError):
            run_fine_grained_group(self._specs(1), 0, quiet_config(),
                                   iterations=5)
        with pytest.raises(SimulationError):
            run_fine_grained_group(self._specs(1), 4, quiet_config(),
                                   iterations=0)

    def test_no_cycles_raises_on_stats(self):
        result = FineGrainedResult(duration_seconds=0.0)
        with pytest.raises(SimulationError):
            result.mean_cycle_seconds()

    def test_straggler_jitter_stretches_cycles(self):
        """With per-machine jitter, the barrier waits for the slowest
        worker: mean cycles exceed the deterministic run's."""
        noisy = SimConfig(execution=ExecutionConfig(
            duration_jitter_cv=0.10, barrier_overhead=0.0))
        deterministic = run_fine_grained_group(
            self._specs(1), 16, quiet_config(), iterations=8)
        straggly = run_fine_grained_group(
            self._specs(1), 16, noisy, iterations=8)
        assert straggly.mean_cycle_seconds() > \
            deterministic.mean_cycle_seconds()


class TestGranularityDriver:
    def test_driver_reports_small_errors(self):
        from repro.experiments import granularity_validation
        result = granularity_validation.run(iterations=8)
        assert result.worst_abstraction_error < 0.08
        text = granularity_validation.report(result)
        assert "Granularity validation" in text
