"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.config import ExecutionConfig, MachineSpec, SimConfig
from repro.core.profiler import JobMetrics
from repro.sim import RandomStreams, Simulator
from repro.workloads.apps import DATASETS, JobSpec, LDA, MLR
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator


def pytest_addoption(parser):
    parser.addoption(
        "--checked", action="store_true", default=False,
        help="run every HarmonyRuntime.run() through the repro.check "
             "invariant checker (fails the test on any violation)")
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="instrument threading.Lock/RLock (and everything built on "
             "them: Condition, Semaphore, Event, ...) with the "
             "repro.analysis.sanitizer race detector; any lock-order "
             "inversion, foreign release, or watched-object race fails "
             "the test")


@pytest.fixture(autouse=True)
def _sanitize_mode(request):
    """Opt-in dynamic race detection: ``pytest --sanitize`` runs each
    test with instrumented locks and fails it on recorded violations.

    A fresh :class:`Sanitizer` per test keeps one test's lock-order
    edges from poisoning another's graph."""
    if not request.config.getoption("--sanitize"):
        yield
        return
    from repro.analysis.sanitizer import Sanitizer, install, uninstall

    sanitizer = Sanitizer(name=request.node.nodeid)
    install(sanitizer)
    try:
        yield
    finally:
        uninstall()
    sanitizer.check()


@pytest.fixture(autouse=True)
def _checked_mode(request, monkeypatch):
    """Opt-in whole-run validation: ``pytest --checked`` re-verifies
    every experiment/e2e test against the run-level invariants."""
    if not request.config.getoption("--checked"):
        yield
        return
    from repro.check import InvariantChecker
    from repro.core.runtime import HarmonyRuntime

    original = HarmonyRuntime.run
    checker = InvariantChecker()

    def run_and_check(self, *args, **kwargs):
        result = original(self, *args, **kwargs)
        violations = checker.check_runtime(self)
        if violations:
            pytest.fail(
                "run-level invariant violation(s):\n"
                + "\n".join(str(v) for v in violations))
        return result

    monkeypatch.setattr(HarmonyRuntime, "run", run_and_check)
    yield


@pytest.fixture
def sim() -> Simulator:
    return Simulator()


@pytest.fixture
def streams() -> RandomStreams:
    return RandomStreams(7)


@pytest.fixture
def machine_spec() -> MachineSpec:
    return MachineSpec()


@pytest.fixture
def cost_model() -> CostModel:
    return CostModel()


@pytest.fixture
def sim_config() -> SimConfig:
    """A deterministic config (no duration jitter) for exact assertions."""
    return SimConfig(
        seed=7,
        execution=ExecutionConfig(duration_jitter_cv=0.0,
                                  barrier_overhead=0.0))


@pytest.fixture
def small_jobs() -> list[JobSpec]:
    """Eight small jobs (one hyper-param per app/dataset pair)."""
    return WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)


@pytest.fixture
def tiny_job() -> JobSpec:
    """A memory-light, fast job (LDA on NYTimes)."""
    return JobSpec("tiny", LDA, DATASETS["LDA"][1], iterations=3)


@pytest.fixture
def big_job() -> JobSpec:
    """A memory-heavy job (MLR on the large synthetic dataset)."""
    return JobSpec("big", MLR, DATASETS["MLR"][1], iterations=3)


def metrics(job_id: str, cpu_work: float, t_net: float,
            m: int = 16) -> JobMetrics:
    """Hand-built profiled metrics for scheduler unit tests."""
    return JobMetrics(job_id=job_id, cpu_work=cpu_work, t_net=t_net,
                      m_observed=m)
