"""Tests for Algorithm 1 (HarmonyScheduler)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.config import SchedulerConfig
from repro.core.profiler import JobMetrics
from repro.core.scheduler import (
    HarmonyScheduler,
    _prefix_sizes,
    argmin_convex,
)
from repro.errors import SchedulingError


def metrics(job_id, cpu_work, t_net):
    return JobMetrics(job_id, cpu_work=cpu_work, t_net=t_net,
                      m_observed=1)


def mixed_pool(n=12):
    pool = []
    for index in range(n):
        cpu = 100.0 + 40.0 * (index % 5)
        net = 10.0 + 8.0 * ((index + 2) % 4)
        pool.append(metrics(f"j{index}", cpu, net))
    return pool


class TestPrefixSizes:
    def test_exhaustive_for_small_pools(self):
        assert list(_prefix_sizes(5)) == [1, 2, 3, 4, 5]

    def test_always_reaches_n(self):
        for n in (1, 63, 64, 65, 200, 1000):
            sizes = list(_prefix_sizes(n))
            assert sizes[-1] == n
            assert sizes == sorted(sizes)

    def test_geometric_beyond_64(self):
        sizes = list(_prefix_sizes(1000))
        assert len(sizes) < 120  # far fewer than 1000 candidate sets

    def test_zero_jobs(self):
        assert list(_prefix_sizes(0)) == []


class TestArgminConvex:
    """Regression: the L6 ternary search used a strict comparison and
    could discard the true minimizer when the convex cost is flat
    around the minimum (the balance cost is piecewise-linear, so exact
    plateaus happen)."""

    def test_flat_bottom_plateau(self):
        # Flat and minimal on [10, 20]; the answer must land there.
        cost = lambda n: max(0, abs(n - 15) - 5)  # noqa: E731
        best = argmin_convex(cost, 1, 64)
        assert cost(best) == 0

    def test_plateau_touching_window_edge(self):
        # Minimal plateau is the tail [50, 64]: every probe pair in the
        # middle compares equal-or-decreasing toward the edge.
        cost = lambda n: max(0, 50 - n)  # noqa: E731
        assert cost(argmin_convex(cost, 1, 64)) == 0
        cost = lambda n: max(0, n - 3)  # noqa: E731 (head plateau)
        assert cost(argmin_convex(cost, 1, 64)) == 0

    def test_strictly_convex_exact(self):
        for target in (1, 2, 17, 63, 64):
            assert argmin_convex(lambda n, t=target: (n - t) ** 2,
                                 1, 64) == target

    def test_matches_exhaustive_on_random_convex_costs(self):
        import numpy as np
        for seed in range(30):
            rng = np.random.default_rng(seed)
            # Σ|a_i·n − b_i| is convex piecewise-linear in n — the same
            # family as Algorithm 1's balance cost, plateaus included.
            coeffs = rng.uniform(0.1, 5.0, size=4)
            offsets = rng.uniform(1.0, 200.0, size=4)
            cost = lambda n, cs=coeffs, bs=offsets: float(  # noqa: E731
                sum(abs(a * n - b) for a, b in zip(cs, bs, strict=True)))
            low, high = 1, int(rng.integers(2, 100))
            best = argmin_convex(cost, low, high)
            exhaustive = min(cost(n) for n in range(low, high + 1))
            assert cost(best) == pytest.approx(exhaustive)

    def test_tiny_windows(self):
        assert argmin_convex(lambda n: n, 5, 5) == 5
        assert argmin_convex(lambda n: -n, 3, 4) == 4

    def test_empty_window_raises(self):
        with pytest.raises(SchedulingError):
            argmin_convex(lambda n: n, 4, 3)


class TestSchedule:
    def test_empty_pool_returns_none(self):
        assert HarmonyScheduler().schedule([], 10) is None

    def test_bad_machine_count_raises(self):
        with pytest.raises(SchedulingError):
            HarmonyScheduler().schedule([metrics("a", 1, 1)], 0)

    def test_single_job_gets_a_plan(self):
        plan = HarmonyScheduler().schedule([metrics("a", 100.0, 10.0)],
                                           16)
        assert plan is not None
        assert plan.scheduled_job_ids == {"a"}
        assert 1 <= plan.machines_used <= 16

    def test_plan_respects_machine_budget(self):
        plan = HarmonyScheduler().schedule(mixed_pool(), 20)
        assert plan.machines_used <= 20

    def test_groups_are_disjoint(self):
        plan = HarmonyScheduler().schedule(mixed_pool(), 30)
        seen = set()
        for group in plan.groups:
            for job_id in group.job_ids:
                assert job_id not in seen
                seen.add(job_id)

    def test_max_jobs_per_group_enforced(self):
        config = SchedulerConfig(max_jobs_per_group=2)
        plan = HarmonyScheduler(config=config).schedule(mixed_pool(), 40)
        assert all(group.n_jobs <= 2 for group in plan.groups)

    def test_memory_floor_propagates(self):
        scheduler = HarmonyScheduler(memory_floor=lambda ids: 3)
        plan = scheduler.schedule(mixed_pool(4), 20)
        assert all(group.n_machines >= 3 for group in plan.groups)

    def test_infeasible_memory_returns_none(self):
        scheduler = HarmonyScheduler(memory_floor=lambda ids: 100)
        assert scheduler.schedule(mixed_pool(4), 10) is None

    def test_balanced_pool_yields_high_predicted_utilization(self):
        plan = HarmonyScheduler().schedule(mixed_pool(16), 50)
        assert plan.utilization.cpu > 0.6

    def test_admission_orders_differ_but_stay_valid(self):
        for order in ("sjf", "ljf", "interleave", "critical"):
            config = SchedulerConfig(admission_order=order)
            plan = HarmonyScheduler(config=config).schedule(
                mixed_pool(), 30)
            assert plan is not None
            assert plan.machines_used <= 30

    def test_unknown_admission_order_raises(self):
        config = SchedulerConfig(admission_order="bogus")
        with pytest.raises(SchedulingError):
            HarmonyScheduler(config=config).schedule(mixed_pool(4), 10)

    def test_deterministic_for_same_inputs(self):
        pool = mixed_pool()
        first = HarmonyScheduler().schedule(pool, 25)
        second = HarmonyScheduler().schedule(pool, 25)
        assert first.describe() == second.describe()

    def test_group_count_search_balances(self):
        """n_G* (L6): a pool that balances exactly at n_G = 2 on 20
        machines should produce two groups."""
        # Each job: W = 200, t_net = 20 -> T_cpu(m) = t_net at m = 10,
        # i.e. n_G = 20/10 = 2.
        pool = [metrics(f"j{i}", 200.0, 20.0) for i in range(4)]
        plan = HarmonyScheduler().schedule(pool, 20)
        assert len(plan.groups) == 2

    @settings(max_examples=25, deadline=None)
    @given(n_jobs=st.integers(1, 14), machines=st.integers(2, 64),
           seed=st.integers(0, 99))
    def test_plan_invariants(self, n_jobs, machines, seed):
        import numpy as np
        rng = np.random.default_rng(seed)
        pool = [metrics(f"j{i}", float(rng.uniform(10, 500)),
                        float(rng.uniform(5, 200)))
                for i in range(n_jobs)]
        plan = HarmonyScheduler().schedule(pool, machines)
        assert plan is not None
        assert plan.machines_used <= machines
        assert 0.0 <= plan.utilization.cpu <= 1.0 + 1e-9
        placed = [jid for g in plan.groups for jid in g.job_ids]
        assert len(placed) == len(set(placed))
        assert set(placed) <= {f"j{i}" for i in range(n_jobs)}
        assert all(g.n_machines >= 1 for g in plan.groups)


class TestDescribe:
    def test_describe_mentions_every_group(self):
        plan = HarmonyScheduler().schedule(mixed_pool(6), 20)
        text = plan.describe()
        assert f"{len(plan.groups)} groups" in text
        assert text.count("group[") == len(plan.groups)
