"""Sharded scheduling (repro.shard): differential pins and unit tests.

The correctness story mirrors the repo's established technique
(tests/test_sched_fastpath.py): the 1-cell sharded scheduler is pinned
bitwise-equal to the unsharded ``HarmonyScheduler`` over hypothesis
sweeps, serial (``max_workers=1``) and parallel fan-out are pinned
plan-equal, and the placer's routing is pinned stable under varying
``PYTHONHASHSEED`` via subprocess runs (the test_analysis.py pattern).
"""

import json
import os
import subprocess
import sys

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.cluster import Cluster, split_machine_counts
from repro.config import SchedulerConfig, ShardConfig, SimConfig
from repro.core.master import HarmonyMaster
from repro.core.profiler import JobMetrics
from repro.core.scheduler import HarmonyScheduler
from repro.errors import ClusterError, SchedulingError
from repro.experiments.scalability import (
    ScalabilityResult,
    ShardScalabilityResult,
)
from repro.metrics.utilization import ClusterUsageRecorder
from repro.shard import (
    GlobalPlacer,
    ShardedScheduler,
    job_weight,
    partition_machines,
    plan_moves,
)
from repro.sim import RandomStreams, Simulator
from repro.workloads.costmodel import CostModel

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_jobs(values, prefix="j"):
    return [JobMetrics(job_id=f"{prefix}{i}", cpu_work=float(w),
                       t_net=float(n), m_observed=16)
            for i, (w, n) in enumerate(values)]


job_values = st.lists(
    st.tuples(st.floats(0.01, 80.0), st.floats(0.001, 6.0)),
    min_size=1, max_size=40)


# ---------------------------------------------------------------------------
# partitioning


class TestPartition:
    @settings(max_examples=80, deadline=None)
    @given(total=st.integers(1, 5000), n_cells=st.integers(1, 64))
    def test_split_conserves_and_balances(self, total, n_cells):
        if total < n_cells:
            with pytest.raises(SchedulingError):
                partition_machines(total, n_cells)
            return
        sizes = partition_machines(total, n_cells)
        assert len(sizes) == n_cells
        assert sum(sizes) == total
        assert max(sizes) - min(sizes) <= 1
        assert min(sizes) >= 1
        # Larger cells come first, deterministically.
        assert list(sizes) == sorted(sizes, reverse=True)

    def test_cluster_cell_sizes_matches_canonical_split(self):
        cluster = Cluster(23)
        assert cluster.cell_sizes(4) == split_machine_counts(23, 4)
        assert cluster.cell_sizes(4) == (6, 6, 6, 5)

    def test_zero_cells_rejected(self):
        with pytest.raises(ClusterError):
            split_machine_counts(10, 0)
        with pytest.raises(SchedulingError):
            partition_machines(10, 0)


# ---------------------------------------------------------------------------
# the differential pins


class TestOneCellPin:
    @settings(max_examples=40, deadline=None)
    @given(values=job_values, machines=st.integers(1, 400),
           order=st.sampled_from(("critical", "sjf", "ljf")))
    def test_one_cell_bitwise_equal_to_unsharded(self, values, machines,
                                                 order):
        """n_cells=1 delegates to a plain HarmonyScheduler — identical
        plans, scores, and stats, bit for bit."""
        jobs = make_jobs(values)
        config = SchedulerConfig(admission_order=order)
        sharded = ShardedScheduler(config=config,
                                   shard=ShardConfig(n_cells=1))
        unsharded = HarmonyScheduler(config=config)
        plan = sharded.schedule(jobs, machines)
        expected = unsharded.schedule(jobs, machines)
        assert plan == expected
        assert sharded.last_stats == unsharded.last_stats

    @settings(max_examples=25, deadline=None)
    @given(values=job_values, machines=st.integers(2, 300))
    def test_one_cell_pin_holds_across_call_sequences(self, values,
                                                      machines):
        """The pin survives the stateful parts (caches, memos) over a
        grow-the-pool call sequence."""
        jobs = make_jobs(values)
        sharded = ShardedScheduler(shard=ShardConfig(n_cells=1))
        unsharded = HarmonyScheduler()
        for end in range(1, len(jobs) + 1):
            pool = jobs[:end]
            assert sharded.schedule(pool, machines) \
                == unsharded.schedule(pool, machines)
            assert sharded.last_stats == unsharded.last_stats

    @settings(max_examples=25, deadline=None)
    @given(values=job_values, n_cells=st.integers(2, 16))
    def test_pool_smaller_than_cells_falls_back_to_unsharded(
            self, values, n_cells):
        """total_machines < n_cells cannot be split — the sharded
        scheduler answers through its solo delegate."""
        jobs = make_jobs(values)
        machines = n_cells - 1
        sharded = ShardedScheduler(shard=ShardConfig(n_cells=n_cells))
        assert sharded.schedule(jobs, machines) \
            == HarmonyScheduler().schedule(jobs, machines)


class TestSerialParallelPin:
    @settings(max_examples=20, deadline=None)
    @given(values=job_values, machines=st.integers(8, 300),
           n_cells=st.integers(2, 4))
    def test_serial_equals_parallel_across_sequences(self, values,
                                                     machines, n_cells):
        """Cells are independent and merge order is fixed, so worker
        fan-out can never change the plan."""
        jobs = make_jobs(values)
        serial = ShardedScheduler(
            shard=ShardConfig(n_cells=n_cells, max_workers=1))
        parallel = ShardedScheduler(
            shard=ShardConfig(n_cells=n_cells, max_workers=4))
        for end in range(1, len(jobs) + 1):
            pool = jobs[:end]
            assert serial.schedule(pool, machines) \
                == parallel.schedule(pool, machines)
            assert serial.last_stats == parallel.last_stats


# ---------------------------------------------------------------------------
# placer


class TestGlobalPlacer:
    def test_routing_is_sticky_across_calls(self):
        jobs = make_jobs([(float(i + 1), 0.1) for i in range(20)])
        placer = GlobalPlacer((10, 10, 10))
        placer.route(jobs)
        homes = {job.job_id: placer.cell_of(job.job_id) for job in jobs}
        # Departures and arrivals don't move survivors.
        survivors = jobs[::2]
        placer.route(survivors + make_jobs([(5.0, 0.2)] * 3, "new"))
        for job in survivors:
            assert placer.cell_of(job.job_id) == homes[job.job_id]

    def test_new_jobs_go_to_least_loaded_cell(self):
        heavy = make_jobs([(50.0, 0.1)], "heavy")
        placer = GlobalPlacer((10, 10))
        placer.route(heavy)
        first_cell = placer.cell_of("heavy0")
        newcomer = make_jobs([(1.0, 0.1)], "light")
        placer.route(heavy + newcomer)
        assert placer.cell_of("light0") == 1 - first_cell

    def test_loads_are_normalized_by_cell_machines(self):
        job = make_jobs([(8.0, 0.0)])
        placer = GlobalPlacer((4, 16))
        placer.reassign("j0", 0)
        wide = placer.loads(job)
        placer.reassign("j0", 1)
        narrow = placer.loads(job)
        assert wide[0] == pytest.approx(4.0 * narrow[1])

    def test_route_preserves_pool_order_within_cells(self):
        jobs = make_jobs([(float(i % 5 + 1), 0.1) for i in range(30)])
        placer = GlobalPlacer((10, 10, 10))
        routed = placer.route(jobs)
        order = {job.job_id: index for index, job in enumerate(jobs)}
        for members in routed:
            positions = [order[job.job_id] for job in members]
            assert positions == sorted(positions)

    def test_assignment_map_is_pruned_after_heavy_churn(self):
        placer = GlobalPlacer((10, 10))
        for wave in range(30):
            placer.route(make_jobs([(1.0, 0.1)] * 10, f"wave{wave}-"))
        assert len(placer._assignment) <= 2 * 10 + 64

    def test_reassign_validates_cell_index(self):
        placer = GlobalPlacer((10, 10))
        with pytest.raises(ValueError):
            placer.reassign("j0", 2)


# ---------------------------------------------------------------------------
# rebalancer


class TestPlanMoves:
    def cellify(self, weights_by_cell):
        return [make_jobs([(w, 0.0) for w in weights], f"c{index}-")
                for index, weights in enumerate(weights_by_cell)]

    def test_balanced_cells_produce_no_moves(self):
        cells = self.cellify([[4.0, 4.0], [4.0, 4.0]])
        assert plan_moves(cells, [10, 10], 0.75, 0.25, 64) == []

    def test_hot_cell_drains_into_coldest(self):
        cells = self.cellify([[8.0] * 6, [1.0]])
        moves = plan_moves(cells, [10, 10], 0.75, 0.25, 64)
        assert moves
        assert all(move.source == 0 and move.target == 1
                   for move in moves)
        # Drains back-to-front: the most recent (stickiest-warm) jobs
        # stay, the newest go.
        assert moves[0].job.job_id == "c0-5"

    def test_moves_reduce_spread(self):
        cells = self.cellify([[8.0] * 6, [1.0], [1.0]])
        machines = [10, 10, 10]
        before = [sum(job_weight(job, 0.75) for job in members) / m
                  for members, m in zip(cells, machines, strict=True)]
        moves = plan_moves(cells, machines, 0.75, 0.25, 64)
        loads = list(before)
        for move in moves:
            weight = job_weight(move.job, 0.75)
            loads[move.source] -= weight / machines[move.source]
            loads[move.target] += weight / machines[move.target]
        assert max(loads) - min(loads) < max(before) - min(before)

    def test_move_budget_is_respected(self):
        cells = self.cellify([[8.0] * 20, [0.1]])
        moves = plan_moves(cells, [10, 10], 0.75, 0.0, 3)
        assert len(moves) == 3

    def test_single_cell_never_moves(self):
        cells = self.cellify([[8.0] * 6])
        assert plan_moves(cells, [10], 0.75, 0.25, 64) == []


class TestShardedRebalance:
    def test_departure_skew_triggers_migration(self):
        """Empty out every cell but one via departures; the next
        rebalance-due call drains the survivor cell."""
        jobs = make_jobs([(4.0, 0.2)] * 24)
        scheduler = ShardedScheduler(shard=ShardConfig(
            n_cells=4, rebalance_every=1, rebalance_threshold=0.1))
        scheduler.schedule(jobs, 40)
        placer = scheduler._placer
        survivors = [job for job in jobs
                     if placer.cell_of(job.job_id) == 0]
        assert len(survivors) >= 4
        plan = scheduler.schedule(survivors, 40)
        assert plan is not None
        assert scheduler.jobs_rebalanced > 0
        cells_used = {placer.cell_of(job.job_id) for job in survivors}
        assert len(cells_used) > 1

    def test_rebalance_zero_disables_the_pass(self):
        jobs = make_jobs([(4.0, 0.2)] * 16)
        scheduler = ShardedScheduler(shard=ShardConfig(
            n_cells=4, rebalance_every=0))
        for _ in range(3):
            scheduler.schedule(jobs, 40)
        assert scheduler.jobs_rebalanced == 0


# ---------------------------------------------------------------------------
# sharded scheduler behaviour


class TestShardedScheduler:
    def test_identical_repeat_call_reschedules_no_cell(self):
        jobs = make_jobs([(float(i + 1), 0.2) for i in range(24)])
        scheduler = ShardedScheduler(shard=ShardConfig(n_cells=4))
        first = scheduler.schedule(jobs, 40)
        second = scheduler.schedule(jobs, 40)
        assert first == second
        stats = scheduler.last_stats
        assert stats.n_prefixes_evaluated == 0
        assert stats.fast_path

    def test_arrival_dirties_exactly_one_cell(self):
        jobs = make_jobs([(float(i + 1), 0.2) for i in range(24)])
        scheduler = ShardedScheduler(shard=ShardConfig(n_cells=4))
        scheduler.schedule(jobs, 40)
        before = [cell.scheduler.last_stats
                  for cell in scheduler._cells]
        newcomer = make_jobs([(3.0, 0.3)], "new")
        scheduler.schedule(jobs + newcomer, 40)
        after = [cell.scheduler.last_stats
                 for cell in scheduler._cells]
        changed = [index for index, (a, b)
                   in enumerate(zip(before, after, strict=True))
                   if a is not b]
        assert changed == [scheduler._placer.cell_of("new0")]

    def test_merged_plan_is_consistent(self):
        jobs = make_jobs([(float(i % 7 + 1), 0.1 + (i % 3) / 10)
                          for i in range(30)])
        scheduler = ShardedScheduler(shard=ShardConfig(n_cells=3))
        plan = scheduler.schedule(jobs, 33)
        assert plan is not None
        assert plan.total_machines == 33
        assert plan.machines_used <= 33
        placed = [job_id for group in plan.groups
                  for job_id in group.job_ids]
        assert len(placed) == len(set(placed))
        recomputed = scheduler.perf_model.cluster_utilization(
            [group.estimate for group in plan.groups],
            total_machines=33)
        # harmony: allow[DET006] bitwise-identical re-scoring is the property under test
        assert plan.score == scheduler.perf_model.score(recomputed)

    def test_plan_cache_facade_invalidates_owning_cell(self):
        jobs = make_jobs([(float(i + 1), 0.2) for i in range(16)])
        scheduler = ShardedScheduler(shard=ShardConfig(n_cells=4))
        scheduler.schedule(jobs, 40)
        target = jobs[0].job_id
        owner = scheduler._placer.cell_of(target)
        scheduler.plan_cache.invalidate_job(target)
        assert scheduler._cells[owner].last_key is None
        untouched = [cell for cell in scheduler._cells
                     if cell.index != owner and cell.last_key]
        assert untouched

    def test_empty_pool_and_bad_machine_count(self):
        scheduler = ShardedScheduler(shard=ShardConfig(n_cells=4))
        assert scheduler.schedule([], 40) is None
        with pytest.raises(SchedulingError):
            scheduler.schedule(make_jobs([(1.0, 0.1)]), 0)

    def test_machine_pool_resize_rebuilds_cells(self):
        jobs = make_jobs([(float(i + 1), 0.2) for i in range(12)])
        scheduler = ShardedScheduler(shard=ShardConfig(n_cells=3))
        scheduler.schedule(jobs, 30)
        assert [cell.n_machines for cell in scheduler._cells] \
            == [10, 10, 10]
        scheduler.schedule(jobs, 31)
        assert [cell.n_machines for cell in scheduler._cells] \
            == [11, 10, 10]


class TestMasterIntegration:
    def test_master_builds_sharded_scheduler_and_forms_groups(self):
        from repro.workloads.apps import DATASETS, LDA, JobSpec

        config = SimConfig().with_sharding(2)
        sim = Simulator()
        cluster = Cluster(24, config.machine)
        recorder = ClusterUsageRecorder(24)
        master = HarmonyMaster(sim, cluster, CostModel(config.machine),
                               config, RandomStreams(config.seed),
                               recorder)
        assert isinstance(master.scheduler, ShardedScheduler)
        assert master.scheduler.shard.n_cells == 2
        for index in range(3):
            master.submit(JobSpec(f"j{index}", LDA, DATASETS["LDA"][0],
                                  iterations=3))
        # Feeding profiles triggers publishes through the plan-cache
        # facade and schedules the pool through the sharded path.
        for index in range(3):
            master.profiler.record_iteration(f"j{index}", 0.4, 1.0, 4)
        assert master.groups

    def test_unsharded_config_keeps_plain_scheduler(self):
        config = SimConfig()
        sim = Simulator()
        cluster = Cluster(24, config.machine)
        master = HarmonyMaster(sim, cluster, CostModel(config.machine),
                               config, RandomStreams(config.seed),
                               ClusterUsageRecorder(24))
        assert isinstance(master.scheduler, HarmonyScheduler)


# ---------------------------------------------------------------------------
# experiments / CLI satellites


class TestScalabilityGuards:
    def test_empty_sweep_yields_zero_not_indexerror(self):
        assert ScalabilityResult(
            harmony_rows=[], oracle_rows=[]).largest_harmony_seconds \
            == 0.0
        assert ShardScalabilityResult(
            rows=[], churn_steps=4).speedup_at_largest == 0.0

    def test_scale_cli_smoke(self, capsys):
        from repro.shard.cli import main

        code = main(["--cells", "1,2", "--sizes", "30x40",
                     "--churn", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Sharded scheduling" in out
        assert "speedup at largest" in out

    def test_scale_cli_min_speedup_floor_fails_closed(self, capsys):
        from repro.shard.cli import main

        code = main(["--cells", "1,2", "--sizes", "30x40",
                     "--churn", "1", "--min-speedup", "1000"])
        assert code == 1


# ---------------------------------------------------------------------------
# hash-seed stability (subprocess, like tests/test_analysis.py)


class TestHashSeedStability:
    _SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.core.profiler import JobMetrics
from repro.shard import GlobalPlacer

def jobs(prefix, n, scale):
    return [JobMetrics(job_id=f"{{prefix}}{{i}}",
                       cpu_work=scale + (i * 37 % 11),
                       t_net=0.05 + (i % 7) / 9.0, m_observed=16)
            for i in range(n)]

placer = GlobalPlacer((40, 30, 30, 25), cpu_weight=0.75)
pool = jobs("job-", 200, 0.5)
placer.route(pool)
survivors = [job for i, job in enumerate(pool) if i % 3]
routed = placer.route(survivors + jobs("new-", 17, 2.0))
print(json.dumps([[job.job_id for job in cell] for cell in routed]))
"""

    def test_routing_digest_stable_across_hash_seeds(self):
        outputs = []
        script = self._SCRIPT.format(
            src=os.path.join(REPO_ROOT, "src"))
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outputs.append(
                json.loads(proc.stdout.strip().splitlines()[-1]))
        assert outputs[0] == outputs[1] == outputs[2]
