"""Tests for rate-based shared resources."""

import pytest

from repro.errors import ResourceError
from repro.sim import (
    RateResource,
    primary_secondary,
    processor_sharing,
    serial,
)


def drain(sim):
    sim.run()


class TestSerial:
    def test_single_task_runs_at_full_rate(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        done = cpu.submit(5.0)
        drain(sim)
        assert done.ok
        assert sim.now == 5.0

    def test_tasks_serialize_fifo(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        first = cpu.submit(3.0)
        second = cpu.submit(2.0)
        drain(sim)
        assert first.value.finished_at == 3.0
        assert second.value.finished_at == 5.0

    def test_wait_time_recorded(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(3.0)
        second = cpu.submit(2.0)
        drain(sim)
        assert second.value.wait_time == pytest.approx(3.0)

    def test_zero_work_completes_instantly(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        done = cpu.submit(0.0)
        assert done.ok
        assert done.value.total_time == 0.0

    def test_negative_work_raises(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        with pytest.raises(ResourceError):
            cpu.submit(-1.0)

    def test_busy_seconds_equal_total_work(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(3.0)
        cpu.submit(4.0)
        drain(sim)
        cpu.close_segments()
        assert cpu.busy_seconds == pytest.approx(7.0)


class TestPrimarySecondary:
    def test_secondary_runs_at_reduced_rate(self, sim):
        net = RateResource(sim, primary_secondary(0.5), "net")
        primary = net.submit(10.0)
        secondary = net.submit(10.0)
        drain(sim)
        assert primary.value.finished_at == pytest.approx(10.0)
        # Secondary progressed 5.0 at rate 0.5, then finished the last
        # 5.0 at full rate after promotion: 10 + 5 = 15.
        assert secondary.value.finished_at == pytest.approx(15.0)

    def test_third_task_waits(self, sim):
        net = RateResource(sim, primary_secondary(0.5), "net")
        net.submit(10.0)
        net.submit(10.0)
        third = net.submit(1.0)
        rates = net.current_rates()
        assert rates == [1.0, 0.5, 0.0]
        drain(sim)
        assert third.ok

    def test_invalid_secondary_rate_rejected(self):
        with pytest.raises(ResourceError):
            primary_secondary(1.5)

    def test_utilization_capped_at_one(self, sim):
        net = RateResource(sim, primary_secondary(0.5), "net")
        net.submit(10.0)
        net.submit(10.0)
        drain(sim)
        net.close_segments()
        assert all(segment.level <= 1.0 for segment in net.segments)


class TestProcessorSharing:
    def test_equal_split_without_interference(self, sim):
        disk = RateResource(sim, processor_sharing(), "disk")
        a = disk.submit(10.0)
        b = disk.submit(10.0)
        drain(sim)
        assert a.value.finished_at == pytest.approx(20.0)
        assert b.value.finished_at == pytest.approx(20.0)

    def test_interference_degrades_throughput(self, sim):
        cpu = RateResource(sim, processor_sharing(interference=0.5),
                           "cpu")
        a = cpu.submit(10.0)
        b = cpu.submit(10.0)
        drain(sim)
        # eff(2) = 1/1.5; two tasks of 10 take 20 * 1.5 = 30.
        assert a.value.finished_at == pytest.approx(30.0)
        assert b.value.finished_at == pytest.approx(30.0)

    def test_negative_interference_rejected(self):
        with pytest.raises(ResourceError):
            processor_sharing(interference=-0.1)

    def test_max_concurrent_queues_excess(self, sim):
        disk = RateResource(sim, processor_sharing(max_concurrent=1),
                            "disk")
        a = disk.submit(5.0)
        b = disk.submit(5.0)
        drain(sim)
        assert a.value.finished_at == pytest.approx(5.0)
        assert b.value.finished_at == pytest.approx(10.0)

    def test_late_arrival_shares_remaining_work(self, sim):
        disk = RateResource(sim, processor_sharing(), "disk")
        first = disk.submit(10.0)

        def late():
            yield sim.timeout(5.0)
            second = disk.submit(10.0)
            yield second
            return second.value.finished_at
        process = sim.spawn(late())
        drain(sim)
        # First runs alone 5s (5 left), then shares: 5 more each in
        # parallel takes 10s -> first done at 15; second needs 10 at
        # half rate until 15 (5 done), then full rate: 15 + 5 = 20.
        assert first.value.finished_at == pytest.approx(15.0)
        assert process.value == pytest.approx(20.0)


class TestAccounting:
    def test_served_by_tag_accumulates_work(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(3.0, tag="A")
        cpu.submit(4.0, tag="A")
        cpu.submit(5.0, tag="B")
        drain(sim)
        assert cpu.served_by_tag["A"] == pytest.approx(7.0)
        assert cpu.served_by_tag["B"] == pytest.approx(5.0)

    def test_cancel_removes_waiting_task(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(5.0)
        waiting = cpu.submit(5.0)
        assert cpu.cancel(waiting) is True
        drain(sim)
        assert sim.now == pytest.approx(5.0)
        assert not waiting.triggered

    def test_cancel_unknown_event_returns_false(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        assert cpu.cancel(sim.event()) is False

    def test_segments_merge_contiguous_levels(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(2.0)
        cpu.submit(3.0)
        drain(sim)
        cpu.close_segments()
        assert len(cpu.segments) == 1
        assert cpu.segments[0].duration == pytest.approx(5.0)

    def test_idle_gap_splits_segments(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(2.0)

        def later():
            yield sim.timeout(5.0)
            yield cpu.submit(1.0)
        sim.spawn(later())
        drain(sim)
        cpu.close_segments()
        assert len(cpu.segments) == 2
        assert cpu.busy_seconds == pytest.approx(3.0)


class TestConservationLedger:
    """The work-conservation counters consumed by repro.check."""

    def test_audit_balances_mid_run(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(5.0)
        cpu.submit(3.0)
        sim.run(until=2.0)
        audit = cpu.audit()
        assert audit.work_submitted == pytest.approx(8.0)
        assert audit.work_served == pytest.approx(2.0)
        assert audit.work_discarded == 0.0
        assert audit.queued_work == pytest.approx(6.0)
        assert audit.queue_length == 2
        assert audit.work_submitted == pytest.approx(
            audit.work_served + audit.work_discarded
            + audit.queued_work)

    def test_cancel_moves_work_to_discarded(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(5.0)
        waiting = cpu.submit(4.0)
        cpu.cancel(waiting)
        drain(sim)
        audit = cpu.audit()
        assert audit.work_served == pytest.approx(5.0)
        assert audit.work_discarded == pytest.approx(4.0)
        assert audit.queued_work == 0.0

    def test_purge_drops_all_queued_work(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(5.0)
        cpu.submit(3.0)
        sim.run(until=2.0)
        dropped = cpu.purge()
        assert dropped == pytest.approx(6.0)  # 3.0 in flight + 3.0 waiting
        audit = cpu.audit()
        assert audit.queue_length == 0
        assert audit.work_served == pytest.approx(2.0)
        assert audit.work_discarded == pytest.approx(6.0)
        # Served work stays frozen afterwards: nothing phantom-runs.
        sim.run()
        assert cpu.audit().work_served == pytest.approx(2.0)

    def test_purge_empty_resource_is_a_no_op(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        assert cpu.purge() == 0.0
        assert cpu.audit().work_discarded == 0.0


class TestSegmentSealing:
    """close_segments() idempotency: sealed history never mutates."""

    def test_double_close_does_not_duplicate_final_segment(self, sim):
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(2.0)
        cpu.submit(3.0)
        drain(sim)
        cpu.close_segments()
        snapshot = [(s.start, s.end, s.level) for s in cpu.segments]
        cpu.close_segments()
        cpu.close_segments()
        assert [(s.start, s.end, s.level)
                for s in cpu.segments] == snapshot
        assert len(cpu.segments) == 1

    def test_sealed_segments_survive_later_contiguous_work(self, sim):
        """Regression: a shallow copy taken at close_segments() used to
        alias the live final segment — contiguous same-level work
        arriving later mutated its ``end`` in place."""
        cpu = RateResource(sim, serial(), "cpu")
        cpu.submit(2.0)
        drain(sim)
        cpu.close_segments()
        snapshot = [(s.start, s.end) for s in cpu.segments]
        assert snapshot == [(0.0, 2.0)]
        # Same busy level, zero idle gap: mergeable before the seal.
        cpu.submit(3.0)
        drain(sim)
        cpu.close_segments()
        assert [(s.start, s.end) for s in cpu.segments[:1]] == snapshot
        assert len(cpu.segments) == 2
        assert cpu.segments[1].start == pytest.approx(2.0)
        assert cpu.segments[1].end == pytest.approx(5.0)
        assert cpu.busy_seconds == pytest.approx(5.0)
