"""Edge-case tests across runtime components discovered during
calibration — regression guards for subtle behaviours."""


from repro.config import ExecutionConfig, SimConfig
from repro.core.group_runtime import ExecutionMode, GroupRuntime
from repro.core.job import Job, JobState
from repro.core.runtime import HarmonyRuntime
from repro.sim import RandomStreams, Simulator
from repro.workloads.apps import DATASETS, JobSpec, LDA
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator


class _Hooks:
    def __init__(self):
        self.events = []

    def on_iteration(self, job, group):
        self.events.append(("iter", job.job_id))

    def on_job_finished(self, job, group):
        job.state = JobState.FINISHED
        self.events.append(("finish", job.job_id))

    def on_job_paused(self, job, group):
        job.state = JobState.PAUSED
        self.events.append(("pause", job.job_id))

    def on_job_failed(self, job, group, error):
        job.state = JobState.FAILED
        self.events.append(("fail", job.job_id))


def make_group(n_machines=8):
    sim = Simulator()
    config = SimConfig(execution=ExecutionConfig(
        duration_jitter_cv=0.0, barrier_overhead=0.0))
    hooks = _Hooks()
    group = GroupRuntime(sim, "g", tuple(range(n_machines)),
                         ExecutionMode.HARMONY,
                         CostModel(config.machine), config,
                         RandomStreams(1), hooks)
    return sim, group, hooks


def lda_job(job_id, iterations=4):
    job = Job(JobSpec(job_id, LDA, DATASETS["LDA"][1],
                      iterations=iterations))
    job.state = JobState.RUNNING
    return job


class TestCrashEdgeCases:
    def test_crash_empty_group_is_safe(self):
        sim, group, _ = make_group()
        assert group.crash() == []
        assert group.is_idle

    def test_crash_mid_iteration_returns_all_victims(self):
        sim, group, hooks = make_group()
        jobs = [lda_job(f"j{i}", iterations=50) for i in range(3)]
        for job in jobs:
            group.add_job(job)
        victims = []
        sim.call_at(30.0, lambda: victims.extend(group.crash()))
        sim.run()
        assert {j.job_id for j in victims} == {"j0", "j1", "j2"}
        # No finish/pause hooks fired for the crashed jobs.
        assert not [e for e in hooks.events if e[0] != "iter"]
        # Group state fully cleared.
        assert group.is_idle
        for job in jobs:
            assert job.group_id is None

    def test_crash_then_restart_elsewhere(self):
        """A crashed job can immediately join a fresh group."""
        sim, group, _ = make_group()
        job = lda_job("j", iterations=6)
        group.add_job(job)
        state = {}

        def crash_and_restart():
            group.crash()
            job.state = JobState.RUNNING
            sim2_group = GroupRuntime(
                sim, "g2", (100, 101, 102, 103),
                ExecutionMode.HARMONY, group.cost_model, group.config,
                group.streams, group.hooks)
            state["ok"] = sim2_group.add_job(job, restore=True)
        sim.call_at(10.0, crash_and_restart)
        sim.run()
        assert state["ok"]
        assert job.state is JobState.FINISHED

    def test_crash_accounting_stops_resources(self):
        sim, group, _ = make_group()
        group.add_job(lda_job("j", iterations=50))
        sim.call_at(60.0, group.crash)
        sim.run()
        # Busy accounting frozen at crash time, not at queue drain.
        assert group.stopped_at == 60.0


class TestRuntimeFailureEdges:
    def test_failure_at_time_zero(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        result = HarmonyRuntime(24, jobs, failure_times=[0.0]).run()
        assert len(result.finished) == len(jobs)

    def test_many_failures_on_one_machine(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        runtime = HarmonyRuntime(
            24, jobs, failure_times=[1800.0, 1800.5, 1801.0])
        result = runtime.run()
        assert len(result.finished) == len(jobs)

    def test_failure_after_everything_finished(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        baseline = HarmonyRuntime(24, jobs).run()
        late = baseline.makespan + 10_000.0
        result = HarmonyRuntime(24, jobs,
                                failure_times=[late]).run()
        assert len(result.finished) == len(jobs)


class TestProfilingEdgeCases:
    def test_job_shorter_than_profiling_window_finishes(self):
        """A 2-iteration job converges while still PROFILING."""
        spec = JobSpec("flash", LDA, DATASETS["LDA"][1], iterations=2)
        result = HarmonyRuntime(8, [spec]).run()
        assert len(result.finished) == 1

    def test_single_iteration_job(self):
        spec = JobSpec("one", LDA, DATASETS["LDA"][1], iterations=1)
        result = HarmonyRuntime(8, [spec]).run()
        assert len(result.finished) == 1

    def test_many_tiny_jobs_churn_through_profiling(self):
        specs = [JobSpec(f"tiny{i}", LDA, DATASETS["LDA"][1],
                         iterations=2) for i in range(12)]
        result = HarmonyRuntime(16, specs).run()
        assert len(result.finished) == 12
