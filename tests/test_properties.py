"""Property-based tests on the kernel's core invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.perfmodel import PerfModel
from repro.core.profiler import JobMetrics, Profiler
from repro.metrics.stats import cdf_points
from repro.metrics.timeline import bin_segments
from repro.sim import (
    RateResource,
    Simulator,
    primary_secondary,
    processor_sharing,
    serial,
)
from repro.sim.resources import BusySegment


@settings(max_examples=40, deadline=None)
@given(works=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=8))
def test_serial_resource_conserves_work(works):
    """Total busy time equals total submitted work, and the makespan is
    exactly the sum (no work lost, no parallelism invented)."""
    sim = Simulator()
    cpu = RateResource(sim, serial(), "cpu")
    events = [cpu.submit(work) for work in works]
    sim.run()
    cpu.close_segments()
    assert all(event.ok for event in events)
    assert cpu.busy_seconds == pytest.approx(sum(works), rel=1e-6)
    assert sim.now == pytest.approx(sum(works), rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(works=st.lists(st.floats(0.1, 50.0), min_size=1, max_size=8),
       rate=st.floats(0.1, 1.0))
def test_primary_secondary_never_reorders_completions(works, rate):
    """FIFO order: task i never finishes after task i+2 starts service
    before it (completion times are monotone in submission order for
    equal-work batches; here we assert completion >= submission order
    pairwise for identical works)."""
    sim = Simulator()
    net = RateResource(sim, primary_secondary(rate), "net")
    events = [net.submit(w) for w in works]
    sim.run()
    finishes = [e.value.finished_at for e in events]
    # Work-weighted sanity: everything completed, nothing negative.
    assert all(f > 0 for f in finishes)
    # The first submission is always served at full rate from t=0.
    assert finishes[0] == pytest.approx(works[0], rel=1e-6)


@settings(max_examples=40, deadline=None)
@given(works=st.lists(st.floats(0.5, 20.0), min_size=2, max_size=6),
       phi=st.floats(0.0, 0.5))
def test_processor_sharing_interference_never_speeds_up(works, phi):
    """Interference can only stretch the makespan."""
    def run(interference):
        sim = Simulator()
        resource = RateResource(sim, processor_sharing(interference),
                                "r")
        for work in works:
            resource.submit(work)
        sim.run()
        return sim.now
    assert run(phi) >= run(0.0) - 1e-9


@settings(max_examples=40, deadline=None)
@given(cpu_work=st.floats(1.0, 1e4), t_net=st.floats(1.0, 1e3),
       m1=st.integers(1, 64), m2=st.integers(1, 64))
def test_more_machines_never_slow_a_group(cpu_work, t_net, m1, m2):
    low, high = min(m1, m2), max(m1, m2)
    model = PerfModel()
    metrics = [JobMetrics("j", cpu_work, t_net, m_observed=1)]
    slow = model.estimate_group(metrics, low).t_group_iteration
    fast = model.estimate_group(metrics, high).t_group_iteration
    assert fast <= slow + 1e-9


@settings(max_examples=40, deadline=None)
@given(samples=st.lists(
    st.tuples(st.floats(0.1, 100.0), st.floats(0.1, 100.0),
              st.integers(1, 32)),
    min_size=1, max_size=20))
def test_profiler_ema_stays_within_observed_range(samples):
    """The moving average of cpu_work never escapes the convex hull of
    the DoP-normalized observations."""
    profiler = Profiler(ema_alpha=0.3)
    works = []
    for t_cpu, t_net, m in samples:
        profiler.record_iteration("j", t_cpu, t_net, m)
        works.append(t_cpu * m)
    estimate = profiler.get("j").cpu_work
    assert min(works) - 1e-6 <= estimate <= max(works) + 1e-6


@settings(max_examples=40, deadline=None)
@given(values=st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_cdf_points_are_a_distribution(values):
    xs, ys = cdf_points(values)
    assert list(xs) == sorted(xs)
    assert ys[-1] == pytest.approx(1.0)
    assert all(0 < y <= 1.0 + 1e-12 for y in ys)
    assert len(xs) == len(values)


@settings(max_examples=40, deadline=None)
@given(segments=st.lists(
    st.tuples(st.floats(0.0, 100.0), st.floats(0.1, 50.0),
              st.floats(0.0, 1.0)),
    min_size=0, max_size=10),
    bin_seconds=st.floats(1.0, 30.0))
def test_bin_segments_conserve_area(segments, bin_seconds):
    """The integral of the binned series equals the clipped segment
    area (no utilization invented or lost by binning)."""
    t_end = 100.0
    busy = [BusySegment(start, start + duration, level)
            for start, duration, level in segments]
    bins = bin_segments(busy, t_end=t_end, bin_seconds=bin_seconds)
    binned_area = float(np.sum(bins) * bin_seconds)
    true_area = sum(
        max(0.0, min(s.end, t_end) - s.start) * s.level for s in busy)
    assert binned_area == pytest.approx(true_area, rel=1e-6, abs=1e-6)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_simulation_is_seed_deterministic(seed):
    """Two simulators with identical inputs produce identical traces."""
    from repro.sim import RandomStreams

    def trace(seed_value):
        streams = RandomStreams(seed_value)
        return [streams.jitter("a", 0.1) for _ in range(5)] + \
            [float(streams.stream("b").random()) for _ in range(5)]
    assert trace(seed) == trace(seed)
