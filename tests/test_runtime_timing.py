"""Wall-clock validation of §IV-A's execution discipline on real
threads, using the timing-calibrated SleepModel."""

import time

import pytest

from repro.core.local_runtime import LocalHarmonyRuntime, LocalJob
from repro.errors import WorkloadError
from repro.ml.synthetic_sleep import SleepModel

COMP = 0.03  # seconds per COMP subtask


def sleep_job(job_id, epochs=5, comp=COMP):
    return LocalJob(job_id, SleepModel(comp),
                    [{"target_epochs": epochs}],
                    max_epochs=epochs, learning_rate=1.0)


class TestSleepModel:
    def test_objective_counts_down(self):
        import numpy as np
        model = SleepModel(0.0)
        params = model.init_params(np.random.default_rng(0))
        from repro.ml.base import TrainState
        partition = {"target_epochs": 3}
        state = TrainState()
        objectives = []
        for _ in range(3):
            deltas, objective = model.compute(params, partition, state)
            params["state"] = params["state"] + deltas["state"]
            objectives.append(objective)
        assert objectives == sorted(objectives, reverse=True)

    def test_rejects_negative_sleep(self):
        with pytest.raises(WorkloadError):
            SleepModel(-1.0)

    def test_comp_takes_requested_time(self):
        import numpy as np
        from repro.ml.base import TrainState
        model = SleepModel(0.02)
        params = model.init_params(np.random.default_rng(0))
        started = time.perf_counter()
        model.compute(params, {}, TrainState())
        assert time.perf_counter() - started >= 0.018


class TestCoordinationTiming:
    def test_comps_serialize_on_the_cpu_token(self):
        """Two co-located jobs with COMP = x: coordinated execution
        runs their COMPs back to back, so the wall time is at least
        2 * epochs * x (§IV-A: one COMP subtask at a time)."""
        epochs = 4
        runtime = LocalHarmonyRuntime(
            [sleep_job("a", epochs), sleep_job("b", epochs)],
            barrier_timeout=30)
        started = time.perf_counter()
        results = runtime.run()
        wall = time.perf_counter() - started
        assert all(r.epochs == epochs for r in results.values())
        assert wall >= 2 * epochs * COMP * 0.9

    def test_uncoordinated_sleepers_overlap(self):
        """Without coordination, pure-sleep COMPs overlap freely, so
        two jobs take about as long as one (the contention the naive
        baseline ignores does not exist for sleepers — this isolates
        the *token* behaviour itself)."""
        epochs = 4
        coordinated = LocalHarmonyRuntime(
            [sleep_job("a", epochs), sleep_job("b", epochs)],
            barrier_timeout=30)
        free = LocalHarmonyRuntime(
            [sleep_job("a", epochs), sleep_job("b", epochs)],
            coordinate=False, barrier_timeout=30)

        started = time.perf_counter()
        coordinated.run()
        coordinated_wall = time.perf_counter() - started

        started = time.perf_counter()
        free.run()
        free_wall = time.perf_counter() - started

        # Serialized COMPs must cost measurably more wall time than
        # overlapping ones for sleep-based work.
        assert coordinated_wall > free_wall * 1.25

    def test_profiled_comp_matches_configured_sleep(self):
        runtime = LocalHarmonyRuntime([sleep_job("a", 5)],
                                      barrier_timeout=30)
        runtime.run()
        metrics = runtime.profiler.get("a")
        # cpu_work == t_cpu * m with m = 1 worker.
        assert metrics.cpu_work == pytest.approx(COMP, rel=0.5)
