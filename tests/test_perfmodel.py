"""Tests for the performance model (Eqs. 1-4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.perfmodel import PerfModel, UtilizationVector
from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError


def metrics(job_id, cpu_work, t_net):
    return JobMetrics(job_id, cpu_work=cpu_work, t_net=t_net,
                      m_observed=1)


class TestGroupEstimate:
    def test_cpu_bound_case(self):
        """Fig. 8: ΣT_cpu dominates -> CPU util 1, net util < 1."""
        model = PerfModel()
        estimate = model.estimate_group(
            [metrics("a", 100.0, 2.0), metrics("b", 100.0, 2.0)], m=1)
        assert estimate.bound_case == "cpu"
        assert estimate.t_group_iteration == pytest.approx(200.0)
        assert estimate.utilization.cpu == pytest.approx(1.0)
        assert estimate.utilization.net < 1.0

    def test_net_bound_case(self):
        model = PerfModel()
        estimate = model.estimate_group(
            [metrics("a", 10.0, 50.0), metrics("b", 10.0, 50.0)], m=1)
        assert estimate.bound_case == "net"
        assert estimate.t_group_iteration == pytest.approx(100.0)
        assert estimate.utilization.net == pytest.approx(1.0)

    def test_job_bound_case(self):
        """Fig. 8b: one job's iteration exceeds both sums."""
        model = PerfModel()
        estimate = model.estimate_group(
            [metrics("big", 80.0, 80.0), metrics("small", 1.0, 1.0)],
            m=1)
        assert estimate.bound_case == "job"
        assert estimate.t_group_iteration == pytest.approx(160.0)
        assert estimate.utilization.cpu < 1.0
        assert estimate.utilization.net < 1.0

    def test_more_machines_shrink_cpu_side(self):
        model = PerfModel()
        small = model.estimate_group([metrics("a", 100.0, 10.0)], m=1)
        large = model.estimate_group([metrics("a", 100.0, 10.0)], m=10)
        assert large.t_cpu_sum == pytest.approx(small.t_cpu_sum / 10)
        assert large.t_net_sum == pytest.approx(small.t_net_sum)

    def test_empty_group_raises(self):
        with pytest.raises(SchedulingError):
            PerfModel().estimate_group([], m=1)

    def test_bad_dop_raises(self):
        with pytest.raises(SchedulingError):
            PerfModel().estimate_group([metrics("a", 1, 1)], m=0)

    @given(cpu=st.floats(1.0, 1e4), net=st.floats(1.0, 1e4),
           m=st.integers(1, 64))
    def test_utilizations_bounded(self, cpu, net, m):
        estimate = PerfModel().estimate_group(
            [metrics("a", cpu, net)], m=m)
        assert 0.0 <= estimate.utilization.cpu <= 1.0 + 1e-9
        assert 0.0 <= estimate.utilization.net <= 1.0 + 1e-9

    @given(cpu=st.floats(1.0, 1e4), net=st.floats(1.0, 1e4))
    def test_group_iteration_at_least_each_bound(self, cpu, net):
        estimate = PerfModel().estimate_group(
            [metrics("a", cpu, net), metrics("b", cpu / 2, net / 2)],
            m=2)
        assert estimate.t_group_iteration >= estimate.t_cpu_sum - 1e-9
        assert estimate.t_group_iteration >= estimate.t_net_sum - 1e-9
        assert estimate.t_group_iteration >= estimate.t_itr_max - 1e-9


class TestClusterUtilization:
    def test_weighted_average_by_machines(self):
        model = PerfModel()
        busy = model.estimate_group([metrics("a", 100.0, 100.0)], m=3)
        idle = model.estimate_group([metrics("b", 1.0, 100.0)], m=1)
        cluster = model.cluster_utilization([busy, idle])
        expected_cpu = (3 * busy.utilization.cpu
                        + 1 * idle.utilization.cpu) / 4
        assert cluster.cpu == pytest.approx(expected_cpu)

    def test_total_machines_counts_idle_ones(self):
        model = PerfModel()
        group = model.estimate_group([metrics("a", 10.0, 10.0)], m=5)
        partial = model.cluster_utilization([group], total_machines=10)
        full = model.cluster_utilization([group], total_machines=5)
        assert partial.cpu == pytest.approx(full.cpu / 2)

    def test_empty_groups_are_zero(self):
        assert PerfModel().cluster_utilization([]).cpu == 0.0

    def test_overcommitted_machines_raise(self):
        model = PerfModel()
        group = model.estimate_group([metrics("a", 1.0, 1.0)], m=8)
        with pytest.raises(SchedulingError):
            model.cluster_utilization([group], total_machines=4)


class TestScore:
    def test_cpu_weight_dominates(self):
        cpu_heavy = UtilizationVector(cpu=1.0, net=0.0)
        net_heavy = UtilizationVector(cpu=0.0, net=1.0)
        model = PerfModel(cpu_weight=0.75)
        assert model.score(cpu_heavy) > model.score(net_heavy)

    def test_score_is_weighted_sum(self):
        vector = UtilizationVector(cpu=0.8, net=0.4)
        assert PerfModel(cpu_weight=0.75).score(vector) == pytest.approx(
            0.75 * 0.8 + 0.25 * 0.4)

    def test_vector_iterates_cpu_then_net(self):
        assert tuple(UtilizationVector(0.3, 0.7)) == (0.3, 0.7)


class TestErrorInjection:
    def test_injector_perturbs_per_job(self):
        def injector(kind, job_id):
            return 2.0 if job_id == "a" else 1.0
        model = PerfModel(error_injector=injector)
        estimate = model.estimate_group(
            [metrics("a", 10.0, 10.0), metrics("b", 10.0, 10.0)], m=1)
        clean = PerfModel().estimate_group(
            [metrics("a", 10.0, 10.0), metrics("b", 10.0, 10.0)], m=1)
        assert estimate.t_cpu_sum == pytest.approx(
            clean.t_cpu_sum + 10.0)

    def test_no_injector_is_exact(self):
        model = PerfModel()
        estimate = model.estimate_group([metrics("a", 30.0, 5.0)], m=3)
        assert estimate.t_cpu_sum == pytest.approx(10.0)
        assert estimate.t_net_sum == pytest.approx(5.0)
