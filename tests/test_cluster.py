"""Tests for the cluster inventory and its substrate models."""

import pytest

from repro.cluster import Cluster, DiskModel, MemoryLedger, NetworkModel
from repro.config import GB, GCModel
from repro.errors import ClusterError, OutOfMemoryError


class TestCluster:
    def test_all_machines_start_free(self):
        cluster = Cluster(5)
        assert cluster.size == 5
        assert cluster.n_free == 5
        assert cluster.n_allocated == 0

    def test_empty_cluster_rejected(self):
        with pytest.raises(ClusterError):
            Cluster(0)

    def test_allocate_returns_distinct_ids(self):
        cluster = Cluster(10)
        ids = cluster.allocate(4, "g0")
        assert len(set(ids)) == 4
        assert cluster.n_free == 6

    def test_over_allocation_raises(self):
        cluster = Cluster(3)
        with pytest.raises(ClusterError):
            cluster.allocate(4, "g0")

    def test_zero_allocation_raises(self):
        with pytest.raises(ClusterError):
            Cluster(3).allocate(0, "g0")

    def test_release_returns_machines(self):
        cluster = Cluster(4)
        ids = cluster.allocate(2, "g0")
        cluster.release(ids, "g0")
        assert cluster.n_free == 4

    def test_release_by_wrong_owner_raises(self):
        cluster = Cluster(4)
        ids = cluster.allocate(2, "g0")
        with pytest.raises(ClusterError):
            cluster.release(ids, "g1")
        # Nothing was released by the failed call.
        assert cluster.n_free == 2

    def test_release_all_counts(self):
        cluster = Cluster(6)
        cluster.allocate(2, "a")
        cluster.allocate(3, "b")
        assert cluster.release_all("b") == 3
        assert cluster.n_free == 4

    def test_owned_by_tracks_holdings(self):
        cluster = Cluster(5)
        ids = cluster.allocate(3, "g0")
        assert cluster.owned_by("g0") == ids
        assert cluster.owned_by("other") == ()

    def test_reassign_moves_ownership(self):
        cluster = Cluster(4)
        ids = cluster.allocate(2, "old")
        cluster.reassign(ids, "old", "new")
        assert cluster.owned_by("new") == ids
        assert cluster.owned_by("old") == ()
        cluster.release(ids, "new")

    def test_reassign_checks_current_owner(self):
        cluster = Cluster(4)
        ids = cluster.allocate(2, "a")
        with pytest.raises(ClusterError):
            cluster.reassign(ids, "b", "c")

    def test_owners_summary(self):
        cluster = Cluster(6)
        cluster.allocate(2, "a")
        cluster.allocate(1, "b")
        assert cluster.owners() == {"a": 2, "b": 1}


class TestMemoryLedger:
    def test_empty_ledger_has_no_pressure(self, machine_spec):
        ledger = MemoryLedger(machine_spec)
        assert ledger.pressure == 0.0
        assert ledger.gc_inflation() == 1.0
        assert not ledger.is_oom()

    def test_components_accumulate(self, machine_spec):
        ledger = MemoryLedger(machine_spec)
        ledger.set_component("job", "input", 4 * GB)
        ledger.set_component("job", "model", 2 * GB)
        assert ledger.resident_bytes == pytest.approx(6 * GB)
        assert ledger.job_resident_bytes("job") == pytest.approx(6 * GB)

    def test_component_overwrite_replaces(self, machine_spec):
        ledger = MemoryLedger(machine_spec)
        ledger.set_component("job", "input", 4 * GB)
        ledger.set_component("job", "input", 1 * GB)
        assert ledger.resident_bytes == pytest.approx(1 * GB)

    def test_zero_bytes_removes_component(self, machine_spec):
        ledger = MemoryLedger(machine_spec)
        ledger.set_component("job", "input", 4 * GB)
        ledger.set_component("job", "input", 0)
        assert ledger.resident_bytes == 0

    def test_negative_bytes_raises(self, machine_spec):
        with pytest.raises(ValueError):
            MemoryLedger(machine_spec).set_component("j", "x", -1)

    def test_remove_job_drops_every_component(self, machine_spec):
        ledger = MemoryLedger(machine_spec)
        ledger.set_component("a", "input", GB)
        ledger.set_component("a", "model", GB)
        ledger.set_component("b", "input", GB)
        ledger.remove_job("a")
        assert ledger.resident_bytes == pytest.approx(GB)

    def test_oom_raises_with_context(self, machine_spec):
        ledger = MemoryLedger(machine_spec)
        ledger.set_component("j1", "input",
                             machine_spec.usable_memory_bytes * 0.6)
        ledger.set_component("j2", "input",
                             machine_spec.usable_memory_bytes * 0.6)
        with pytest.raises(OutOfMemoryError) as info:
            ledger.check_oom()
        assert info.value.job_ids == ("j1", "j2")
        assert info.value.resident_gb > info.value.capacity_gb

    def test_headroom_never_negative(self, machine_spec):
        ledger = MemoryLedger(machine_spec)
        ledger.set_component("j", "input",
                             machine_spec.usable_memory_bytes * 2)
        assert ledger.headroom_bytes() == 0.0


class TestGCModel:
    def test_no_inflation_below_onset(self):
        model = GCModel(onset=0.7)
        assert model.inflation(0.5) == 1.0
        assert model.inflation(0.7) == 1.0

    def test_inflation_grows_monotonically(self):
        model = GCModel(onset=0.7, strength=2.0)
        samples = [model.inflation(rho)
                   for rho in (0.75, 0.8, 0.9, 0.99)]
        assert samples == sorted(samples)
        assert samples[0] > 1.0

    def test_full_pressure_inflation_equals_one_plus_strength(self):
        model = GCModel(onset=0.5, strength=3.0)
        assert model.inflation(1.0) == pytest.approx(4.0)

    def test_oom_threshold(self):
        model = GCModel(oom_ratio=1.0)
        assert not model.is_oom(0.99)
        assert model.is_oom(1.0)


class TestNetworkModel:
    def test_transfer_time_scales_with_bytes(self, machine_spec):
        model = NetworkModel(machine_spec)
        assert model.transfer_seconds(2 * GB) == pytest.approx(
            2 * model.transfer_seconds(GB))

    def test_efficiency_reduces_goodput(self, machine_spec):
        fast = NetworkModel(machine_spec, efficiency=1.0,
                            serialization_overhead=0.0)
        slow = NetworkModel(machine_spec, efficiency=0.5,
                            serialization_overhead=0.0)
        assert slow.transfer_seconds(GB) == pytest.approx(
            2 * fast.transfer_seconds(GB))

    def test_negative_bytes_raises(self, machine_spec):
        with pytest.raises(ValueError):
            NetworkModel(machine_spec).transfer_seconds(-1)

    def test_traffic_fraction_scales_pull(self, machine_spec):
        model = NetworkModel(machine_spec)
        assert model.pull_seconds(GB, 0.5) == pytest.approx(
            0.5 * model.pull_seconds(GB, 1.0))


class TestDiskModel:
    def test_read_includes_deserialization(self, machine_spec):
        disk = DiskModel(machine_spec, deserialization_overhead=0.25)
        raw_seconds = GB / machine_spec.disk_read_bps
        assert disk.read_seconds(GB) == pytest.approx(1.25 * raw_seconds)

    def test_write_uses_write_bandwidth(self, machine_spec):
        disk = DiskModel(machine_spec)
        assert disk.write_seconds(GB) == pytest.approx(
            GB / machine_spec.disk_write_bps)

    def test_checkpoint_restore_roundtrip_positive(self, machine_spec):
        disk = DiskModel(machine_spec)
        assert disk.checkpoint_seconds(GB) > 0
        assert disk.restore_seconds(GB) > disk.checkpoint_seconds(GB) * 0

    def test_negative_sizes_raise(self, machine_spec):
        disk = DiskModel(machine_spec)
        with pytest.raises(ValueError):
            disk.read_seconds(-1)
        with pytest.raises(ValueError):
            disk.write_seconds(-1)
