"""Tests for the simulated group execution engine (§IV-A)."""

import pytest

from repro.config import ExecutionConfig, SimConfig
from repro.core.group_runtime import ExecutionMode, GroupRuntime
from repro.core.job import Job, JobState
from repro.core.perfmodel import PerfModel
from repro.core.profiler import Profiler
from repro.errors import OutOfMemoryError, SimulationError
from repro.sim import RandomStreams, Simulator
from repro.workloads.apps import DATASETS, JobSpec, LASSO, LDA, MLR, NMF
from repro.workloads.costmodel import CostModel


class Hooks:
    def __init__(self):
        self.finished = []
        self.paused = []
        self.failed = []
        self.iterations = 0

    def on_iteration(self, job, group):
        self.iterations += 1

    def on_job_finished(self, job, group):
        job.state = JobState.FINISHED
        self.finished.append(job.job_id)

    def on_job_paused(self, job, group):
        job.state = JobState.PAUSED
        self.paused.append(job.job_id)

    def on_job_failed(self, job, group, error):
        job.state = JobState.FAILED
        self.failed.append((job.job_id, error))


def build_group(n_machines=8, mode=ExecutionMode.HARMONY,
                config=None):
    sim = Simulator()
    config = config if config is not None else SimConfig(
        execution=ExecutionConfig(duration_jitter_cv=0.0,
                                  barrier_overhead=0.0))
    hooks = Hooks()
    group = GroupRuntime(sim, "g", tuple(range(n_machines)), mode,
                         CostModel(config.machine), config,
                         RandomStreams(1), hooks)
    return sim, group, hooks


def running_job(job_id, app=LDA, dataset=1, iterations=3, **kwargs):
    job = Job(JobSpec(job_id, app, DATASETS[app.name][dataset],
                      iterations=iterations, **kwargs))
    job.state = JobState.RUNNING
    return job


class TestBasicExecution:
    def test_single_job_runs_to_convergence(self):
        sim, group, hooks = build_group()
        job = running_job("a", iterations=4)
        assert group.add_job(job)
        sim.run()
        assert hooks.finished == ["a"]
        assert hooks.iterations == 4
        assert job.remaining_iterations == 0

    def test_no_machines_raises(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            GroupRuntime(sim, "g", (), ExecutionMode.HARMONY,
                         CostModel(), SimConfig(), RandomStreams(1),
                         Hooks())

    def test_duplicate_add_raises(self):
        sim, group, _ = build_group()
        job = running_job("a")
        group.add_job(job)
        with pytest.raises(SimulationError):
            group.add_job(job)

    def test_job_in_other_group_rejected(self):
        sim, group, _ = build_group()
        job = running_job("a")
        job.group_id = "elsewhere"
        with pytest.raises(SimulationError):
            group.add_job(job)

    def test_stop_with_live_jobs_raises(self):
        sim, group, _ = build_group()
        group.add_job(running_job("a"))
        with pytest.raises(SimulationError):
            group.stop()

    def test_cycles_record_measured_subtasks(self):
        sim, group, _ = build_group(n_machines=16)
        job = running_job("a", iterations=2)
        group.add_job(job)
        sim.run()
        assert len(group.cycles) == 2
        profile = CostModel().profile(job.spec, 16)
        cycle = group.cycles[-1]
        assert cycle.t_cpu_measured == pytest.approx(profile.t_comp,
                                                     rel=0.01)
        assert cycle.t_net_measured == pytest.approx(profile.t_comm,
                                                     rel=0.01)


class TestPipelining:
    def test_coordinated_group_matches_eq1(self):
        """Steady-state cycle times track the Eq. 1 prediction within a
        few percent (Fig. 13b's claim)."""
        sim, group, _ = build_group(n_machines=16)
        jobs = [running_job(f"j{i}", app=LDA, dataset=0, iterations=8)
                for i in range(3)]
        for job in jobs:
            group.add_job(job)
        sim.run()
        profiler = Profiler()
        for cycle in group.cycles:
            profiler.record_iteration(cycle.job_id,
                                      cycle.t_cpu_measured,
                                      cycle.t_net_measured, 16)
        estimate = PerfModel().estimate_group(
            [profiler.get(j.job_id) for j in jobs], 16)
        steady = [c.duration for c in group.cycles][len(jobs) * 2:]
        measured = sum(steady) / len(steady)
        assert measured == pytest.approx(estimate.t_group_iteration,
                                         rel=0.10)

    def test_colocation_beats_sequential_execution(self):
        """Two jobs pipelined finish sooner than back-to-back solo
        runs (the whole point of §IV-A)."""
        solo_durations = []
        for index in range(2):
            sim, group, _ = build_group(n_machines=16)
            group.add_job(running_job(f"solo{index}", app=LDA,
                                      dataset=0, iterations=5))
            sim.run()
            solo_durations.append(sim.now)

        sim, group, _ = build_group(n_machines=16)
        group.add_job(running_job("a", app=LDA, dataset=0, iterations=5))
        group.add_job(running_job("b", app=LDA, dataset=0, iterations=5))
        sim.run()
        assert sim.now < sum(solo_durations)

    def test_cpu_never_runs_two_comps_at_once(self):
        sim, group, _ = build_group(n_machines=16)
        for index in range(3):
            group.add_job(running_job(f"j{index}", app=LDA, dataset=0,
                                      iterations=4))
        sim.run()
        group.cpu.close_segments()
        assert all(segment.level <= 1.0 + 1e-9
                   for segment in group.cpu.segments)


class TestPause:
    def test_pause_waits_for_iteration_boundary(self):
        sim, group, hooks = build_group()
        job = running_job("a", iterations=10)
        group.add_job(job)
        # Ask for a pause shortly after start: the ongoing iteration
        # must complete first (§IV-B4).
        sim.call_at(1.0, lambda: group.request_pause("a"))
        sim.run()
        assert hooks.paused == ["a"]
        assert 0 < job.remaining_iterations < 10

    def test_pause_unknown_job_raises(self):
        sim, group, _ = build_group()
        with pytest.raises(SimulationError):
            group.request_pause("ghost")

    def test_pause_all_empties_group(self):
        sim, group, hooks = build_group()
        for index in range(2):
            group.add_job(running_job(f"j{index}", iterations=50))
        sim.call_at(1.0, group.request_pause_all)
        sim.run()
        assert sorted(hooks.paused) == ["j0", "j1"]
        assert group.is_idle

    def test_finished_job_beats_pause(self):
        """A job on its last iteration finishes rather than pauses."""
        sim, group, hooks = build_group()
        job = running_job("a", iterations=1)
        group.add_job(job)
        sim.call_at(1.0, lambda: group.request_pause("a"))
        sim.run()
        assert hooks.finished == ["a"]
        assert hooks.paused == []


class TestMemoryBehaviour:
    def test_naive_triple_ooms(self):
        """The Fig. 4 failure: three big jobs, no spill, 16 machines."""
        sim, group, hooks = build_group(n_machines=16,
                                        mode=ExecutionMode.NAIVE)
        group.add_job(running_job("nmf", app=NMF, dataset=0))
        group.add_job(running_job("mlr", app=MLR, dataset=0,
                                  model_scale=2.0))
        group.add_job(running_job("lasso", app=LASSO, dataset=0,
                                  model_scale=2.0))
        sim.run()
        assert len(hooks.failed) >= 1
        assert all(isinstance(error, OutOfMemoryError)
                   for _, error in hooks.failed)

    def test_harmony_spills_where_naive_ooms(self):
        """The same three jobs survive under Harmony's reloading."""
        sim, group, hooks = build_group(n_machines=16,
                                        mode=ExecutionMode.HARMONY)
        group.add_job(running_job("nmf", app=NMF, dataset=0))
        group.add_job(running_job("mlr", app=MLR, dataset=0,
                                  model_scale=2.0))
        group.add_job(running_job("lasso", app=LASSO, dataset=0,
                                  model_scale=2.0))
        sim.run()
        assert not hooks.failed
        assert len(hooks.finished) == 3

    def test_reload_stall_recorded_when_disk_saturated(self):
        """A spilling job on few machines must sometimes wait on disk."""
        sim, group, _ = build_group(n_machines=4)
        job = running_job("big", app=MLR, dataset=1, iterations=3)
        group.add_job(job)
        sim.run()
        assert job.alpha > 0  # it had to spill
        assert any(cycle.stall >= 0 for cycle in group.cycles)

    def test_can_admit_rejects_impossible_job(self):
        """Even with full input AND model spill, the worker-side cache
        of an absurdly large model cannot fit one machine."""
        sim, group, _ = build_group(n_machines=1)
        monster = running_job("big", app=MLR, dataset=1,
                              model_scale=30.0)
        assert not group.can_admit(monster)

    def test_can_admit_accepts_spillable_giant(self):
        """A Table-I-sized job fits even one machine via the §IV-C
        input + model spill fallbacks (slow, but placeable)."""
        sim, group, _ = build_group(n_machines=1)
        assert group.can_admit(running_job("big", app=MLR, dataset=1))


class TestModes:
    def test_naive_mode_shares_cpu(self):
        """Uncoordinated COMPs overlap: utilization level reflects
        concurrent service."""
        sim, group, _ = build_group(n_machines=16,
                                    mode=ExecutionMode.NAIVE)
        for index in range(2):
            group.add_job(running_job(f"j{index}", app=LDA, dataset=0,
                                      iterations=3))
        sim.run()
        assert len(group.cycles) == 6

    def test_naive_slower_than_harmony_for_same_jobs(self):
        durations = {}
        for mode in (ExecutionMode.HARMONY, ExecutionMode.NAIVE):
            sim, group, _ = build_group(n_machines=16, mode=mode)
            for index in range(3):
                group.add_job(running_job(f"j{index}", app=LDA,
                                          dataset=0, iterations=5))
            sim.run()
            durations[mode] = sim.now
        assert durations[ExecutionMode.NAIVE] > \
            durations[ExecutionMode.HARMONY]

    def test_mode_flags(self):
        assert ExecutionMode.HARMONY.coordinated
        assert ExecutionMode.HARMONY.spill_enabled
        assert not ExecutionMode.NAIVE.coordinated
        assert not ExecutionMode.ISOLATED.spill_enabled
