"""Tests for the named random streams."""

import numpy as np
import pytest

from repro.sim import RandomStreams


class TestStreams:
    def test_same_seed_same_sequence(self):
        first = RandomStreams(1).stream("x").random(5)
        second = RandomStreams(1).stream("x").random(5)
        assert np.allclose(first, second)

    def test_different_names_are_independent(self):
        streams = RandomStreams(1)
        a = streams.stream("a").random(5)
        b = streams.stream("b").random(5)
        assert not np.allclose(a, b)

    def test_stream_is_cached(self):
        streams = RandomStreams(1)
        assert streams.stream("x") is streams.stream("x")

    def test_draws_from_one_stream_do_not_disturb_another(self):
        reference = RandomStreams(5).stream("target").random(3)
        perturbed = RandomStreams(5)
        perturbed.stream("noise").random(1000)
        assert np.allclose(perturbed.stream("target").random(3),
                           reference)

    def test_spawn_creates_independent_family(self):
        parent = RandomStreams(1)
        child = parent.spawn("child")
        assert not np.allclose(parent.stream("x").random(4),
                               child.stream("x").random(4))


class TestJitter:
    def test_zero_cv_is_exactly_one(self):
        assert RandomStreams(1).jitter("j", 0.0) == 1.0

    def test_jitter_mean_is_approximately_one(self):
        streams = RandomStreams(2)
        draws = [streams.jitter("j", 0.1) for _ in range(4000)]
        assert np.mean(draws) == pytest.approx(1.0, abs=0.01)

    def test_jitter_cv_matches_request(self):
        streams = RandomStreams(3)
        draws = np.array([streams.jitter("j", 0.2) for _ in range(6000)])
        assert np.std(draws) / np.mean(draws) == pytest.approx(0.2,
                                                               abs=0.02)

    def test_jitter_is_positive(self):
        streams = RandomStreams(4)
        assert all(streams.jitter("j", 0.5) > 0 for _ in range(500))
