"""Tests for the fault-injection subsystem (repro.faults) and the
master's crash-recovery path."""

import threading
import time

import pytest

from repro.check import InvariantChecker
from repro.cluster.cluster import Cluster
from repro.config import MachineSpec
from repro.core.job import JobState
from repro.core.runtime import HarmonyRuntime
from repro.core.subtask import SubTaskKind
from repro.core.synchronizer import SubTaskSynchronizer
from repro.errors import SimulationError
from repro.faults import FaultEvent, FaultKind, FaultPlan, HealthMonitor
from repro.sim import Simulator
from repro.workloads.generator import WorkloadGenerator


# ---------------------------------------------------------------- plans


class TestFaultPlan:
    def test_same_seed_reproduces_identical_timeline(self):
        kwargs = dict(seed=11, n_machines=50, horizon_seconds=36_000,
                      crash_rate_per_hour=0.7,
                      slowdown_rate_per_hour=1.3,
                      drop_rate_per_hour=2.0)
        assert FaultPlan.generate(**kwargs).events == \
            FaultPlan.generate(**kwargs).events

    def test_different_seeds_differ(self):
        kwargs = dict(n_machines=50, horizon_seconds=36_000,
                      crash_rate_per_hour=2.0)
        assert FaultPlan.generate(seed=1, **kwargs).events != \
            FaultPlan.generate(seed=2, **kwargs).events

    def test_events_sorted_and_within_horizon(self):
        plan = FaultPlan.generate(seed=3, n_machines=10,
                                  horizon_seconds=7200,
                                  crash_rate_per_hour=1.0,
                                  drop_rate_per_hour=5.0)
        times = [e.time for e in plan]
        assert times == sorted(times)
        assert all(0 <= t < 7200 for t in times)
        assert all(0 <= e.machine_id < 10 for e in plan)

    def test_build_sorts_events(self):
        late = FaultEvent(100.0, FaultKind.MACHINE_CRASH, 0)
        early = FaultEvent(5.0, FaultKind.NETWORK_DROP, 1,
                           duration=60.0, severity=2.0)
        plan = FaultPlan.build([late, early])
        assert plan.events == (early, late)

    def test_of_kind_filters(self):
        plan = FaultPlan.generate(seed=5, n_machines=8,
                                  horizon_seconds=36_000,
                                  crash_rate_per_hour=0.5,
                                  slowdown_rate_per_hour=0.5)
        crashes = plan.of_kind(FaultKind.MACHINE_CRASH)
        assert all(e.kind is FaultKind.MACHINE_CRASH for e in crashes)
        assert len(crashes) + len(plan.of_kind(
            FaultKind.MACHINE_SLOWDOWN)) == len(plan)

    def test_validation(self):
        with pytest.raises(SimulationError):
            FaultEvent(-1.0, FaultKind.MACHINE_CRASH, 0)
        with pytest.raises(SimulationError):
            FaultEvent(0.0, FaultKind.MACHINE_CRASH, 0, duration=-5.0)
        with pytest.raises(SimulationError, match="severity"):
            FaultEvent(0.0, FaultKind.NETWORK_DROP, 0, duration=10.0,
                       severity=0.5)
        with pytest.raises(SimulationError):
            FaultPlan.generate(seed=1, n_machines=0,
                               horizon_seconds=100)
        with pytest.raises(SimulationError):
            FaultPlan.generate(seed=1, n_machines=4, horizon_seconds=0)


# --------------------------------------------- synchronizer fault paths


class TestSynchronizerFaultPaths:
    def test_release_wakes_blocked_worker_with_false(self):
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 2)
        outcome = []

        def worker():
            outcome.append(synchronizer.arrive("j", 0, SubTaskKind.PULL))

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        time.sleep(0.1)  # let the worker block at the barrier
        synchronizer.release_job("j")
        thread.join(timeout=5.0)
        assert outcome == [False]
        # Arrivals after the release observe it too (no half-barriers).
        assert synchronizer.arrive("j", 0, SubTaskKind.PULL) is False

    def test_reregister_clears_release_and_stale_state(self):
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 2)
        synchronizer.release_job("j")
        # Resume with a different worker count: barriers work again.
        synchronizer.register_job("j", 1)
        assert synchronizer.arrive("j", 0, SubTaskKind.PULL) is True

    def test_release_of_unknown_job_is_a_no_op(self):
        SubTaskSynchronizer().release_job("ghost")

    def test_double_release_during_migration_is_idempotent(self):
        """Regression for the regroup/fault interleaving: a crash
        landing while a migration's release is already in flight must
        not double-release the barrier — the blocked worker wakes
        exactly once, and a post-recovery re-registration restores a
        fully functional barrier."""
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 2)
        outcome = []

        def worker():
            outcome.append(synchronizer.arrive("j", 0, SubTaskKind.PULL))

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        time.sleep(0.1)  # let the worker block at the barrier
        synchronizer.release_job("j")  # migration checkpoint pause
        synchronizer.release_job("j")  # crash hits the same group
        thread.join(timeout=5.0)
        assert outcome == [False]
        assert synchronizer.pending("j") == 0
        # Recovery re-registers (possibly with fewer workers): barriers
        # work again and no stale arrival survived the double release.
        synchronizer.register_job("j", 1)
        assert synchronizer.arrive("j", 1, SubTaskKind.PULL) is True
        assert synchronizer.pending("j") == 0

    def test_release_then_unregister_leaves_no_state(self):
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 2)
        synchronizer.release_job("j")
        synchronizer.unregister_job("j")
        assert not synchronizer._arrived
        assert synchronizer.pending("j") is None

    def test_completed_barriers_do_not_leak(self):
        """Regression: completed (job, iteration, kind) keys used to stay
        in the arrival table forever, growing without bound over a job's
        lifetime."""
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 2)

        def worker(iterations):
            for i in range(iterations):
                for kind in (SubTaskKind.PULL, SubTaskKind.COMP,
                             SubTaskKind.PUSH):
                    assert synchronizer.arrive("j", i, kind)

        threads = [threading.Thread(target=worker, args=(40,),
                                    daemon=True) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=10.0)
        assert not synchronizer._arrived  # nothing retained
        assert synchronizer.pending("j") == 0

    def test_over_arrival_still_detected_after_completion(self):
        synchronizer = SubTaskSynchronizer()
        synchronizer.register_job("j", 1)
        assert synchronizer.arrive("j", 3, SubTaskKind.PULL)
        with pytest.raises(SimulationError, match="more arrivals"):
            synchronizer.arrive("j", 3, SubTaskKind.PULL)


# ------------------------------------------------------- health monitor


class _RecordingMaster:
    def __init__(self):
        self.failures: list[tuple[int, float]] = []
        self.sim = None

    def on_machine_failure(self, machine_id, fault_record=None):
        self.failures.append((machine_id, self.sim.now))
        return []


class TestHealthMonitor:
    def _fixture(self):
        sim = Simulator()
        cluster = Cluster(4, MachineSpec())
        master = _RecordingMaster()
        master.sim = sim
        monitor = HealthMonitor(sim, cluster, master,
                                interval=5.0, timeout=10.0)
        return sim, cluster, master, monitor

    def test_silenced_machine_detected_after_timeout(self):
        sim, _cluster, master, monitor = self._fixture()
        monitor.start()
        sim.call_at(7.0, lambda: monitor.silence(2, None))
        sim.run(until=60.0)
        assert len(master.failures) == 1
        machine_id, detected_at = master.failures[0]
        assert machine_id == 2
        # Silence at t=7, last beat t=5; earliest poll with
        # now - last_beat >= 10 is t=15.
        assert detected_at == pytest.approx(15.0)
        assert monitor.detections == 1

    def test_revived_before_timeout_never_reported(self):
        sim, _cluster, master, monitor = self._fixture()
        monitor.start()
        sim.call_at(6.0, lambda: monitor.silence(1, None))
        sim.call_at(12.0, lambda: monitor.revive(1))
        sim.run(until=60.0)
        assert master.failures == []

    def test_stop_kills_the_heartbeat_loop(self):
        sim, _cluster, _master, monitor = self._fixture()
        monitor.start()
        sim.call_at(20.0, monitor.stop)
        sim.run()  # would never drain if the loop survived
        assert sim.now == pytest.approx(20.0)


# ------------------------------------------------ end-to-end recovery


def _crash_plan(machine_id=5, at=3600.0, downtime=1800.0):
    return FaultPlan.build([FaultEvent(
        time=at, kind=FaultKind.MACHINE_CRASH, machine_id=machine_id,
        duration=downtime)], seed=42)


class TestCrashRecoveryEndToEnd:
    def _run(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        runtime = HarmonyRuntime(24, jobs, fault_plan=_crash_plan())
        return runtime, runtime.run()

    def test_jobs_regroup_on_survivors_and_all_finish(self):
        runtime, result = self._run()
        assert len(result.finished) == 8
        assert not result.failed
        assert runtime.master.failures_injected == 1

        log = result.fault_log
        assert log is not None and len(log.records) == 1
        record = log.records[0]
        assert record.kind == "machine_crash"
        assert record.machine_id == 5
        # The heartbeat monitor, not an oracle, found the crash: the
        # detection latency is in (0, interval + timeout].
        assert 0.0 < record.detection_seconds <= 120.0
        # The displaced jobs rolled back at most one checkpoint
        # interval each and every one of them recovered.
        assert record.job_ids
        interval = \
            runtime.config.execution.checkpoint_interval_iterations
        assert 0 <= record.lost_iterations \
            <= interval * len(record.job_ids)
        assert not log.pending_recoveries
        summary = log.summary()
        assert summary.n_crashes == 1
        assert summary.unrecovered_jobs == 0
        assert summary.max_recovery_seconds >= record.detection_seconds

    def test_same_seed_replays_identically(self):
        _, first = self._run()
        _, second = self._run()
        assert {j: o.finish_time for j, o in first.outcomes.items()} \
            == {j: o.finish_time for j, o in second.outcomes.items()}
        assert first.fault_log.rows() == second.fault_log.rows()

    def test_crash_rolls_back_one_checkpoint_interval(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        runtime = HarmonyRuntime(24, jobs)
        master = runtime.master
        master.sim.spawn(runtime._pacer(), name="pacer")
        for spec in runtime.workload:
            master.sim.call_at(spec.submit_time,
                               lambda s=spec: master.submit(s))
        master.sim.run(until=3600.0)
        victim = next(m.machine_id for m in runtime.cluster.machines
                      if runtime.cluster.owner_of(m.machine_id))
        group = master.groups[runtime.cluster.owner_of(victim)]
        before = {j.job_id: j.remaining_iterations
                  for j in group.jobs()}
        displaced = master.inject_machine_failure(victim)
        assert set(displaced) == set(before)
        interval = \
            runtime.config.execution.checkpoint_interval_iterations
        for job_id in displaced:
            job = master.jobs[job_id]
            rollback = job.remaining_iterations - before[job_id]
            assert 0 <= rollback <= interval
            # Never rolled back past the job's total work.
            assert job.remaining_iterations <= job.spec.iterations

    def test_crash_during_inflight_pause_checkpoint(self):
        """Regroup/fault interleaving: a machine dies while one of its
        jobs is pausing for a migration checkpoint.  The job must be
        rolled back exactly once (not once for the pause and once for
        the crash), and the resumed run must finish with every
        run-level invariant intact."""
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        runtime = HarmonyRuntime(24, jobs)
        master = runtime.master
        master.sim.spawn(runtime._pacer(), name="pacer")
        for spec in runtime.workload:
            master.sim.call_at(spec.submit_time,
                               lambda s=spec: master.submit(s))
        master.sim.run(until=3600.0)
        group = next(g for g in master.groups.values() if g.n_jobs >= 2)
        migrating = group.jobs()[0]
        group.request_pause(migrating.job_id)  # checkpoint in flight
        before = {j.job_id: j.remaining_iterations
                  for j in group.jobs()}
        displaced = master.inject_machine_failure(group.machine_ids[0])
        assert migrating.job_id in displaced
        interval = \
            runtime.config.execution.checkpoint_interval_iterations
        for job_id in displaced:
            job = master.jobs[job_id]
            rollback = job.remaining_iterations - before[job_id]
            assert 0 <= rollback <= interval  # rolled back at most once
            # The pump may have re-admitted the victim already.
            assert job.state in (JobState.PAUSED, JobState.RUNNING)
        master.sim.run()
        assert all(j.state is JobState.FINISHED
                   for j in master.jobs.values())
        assert master.rolled_back_iterations  # the crash was accounted
        assert InvariantChecker().check_runtime(runtime) == []


class TestTransientFaults:
    def test_slowdown_and_drop_windows_cost_time_not_jobs(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        plan = FaultPlan.build([
            FaultEvent(3600.0, FaultKind.MACHINE_SLOWDOWN, 3,
                       duration=1800.0, severity=4.0),
            FaultEvent(5400.0, FaultKind.NETWORK_DROP, 9,
                       duration=600.0, severity=2.0),
        ], seed=1)
        baseline = HarmonyRuntime(24, jobs).run()
        faulty = HarmonyRuntime(24, jobs, fault_plan=plan).run()
        assert len(faulty.finished) == len(baseline.finished)
        # No crash ⇒ nothing to detect or recover from.
        summary = faulty.fault_log.summary()
        assert summary.n_crashes == 0
        assert summary.n_slowdowns == 1
        assert summary.n_drops == 1
        assert summary.unrecovered_jobs == 0
        # Both windows struck a live group (machines were owned).
        for record in faulty.fault_log.records:
            assert record.group_id is not None
            assert record.job_ids

    def test_fault_on_unknown_machine_rejected(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        plan = FaultPlan.build([FaultEvent(
            10.0, FaultKind.MACHINE_CRASH, 99)], seed=1)
        runtime = HarmonyRuntime(24, jobs, fault_plan=plan)
        with pytest.raises(SimulationError, match="unknown machine"):
            runtime.injector.install()


# --------------------------------------------------- cluster ledger


class TestClusterFailureLedger:
    def test_failed_machine_leaves_and_rejoins_free_pool(self):
        cluster = Cluster(4, MachineSpec())
        assert cluster.n_free == 4
        cluster.mark_failed(2)
        assert cluster.n_free == 3
        assert cluster.n_failed == 1
        assert cluster.is_failed(2)
        assert 2 not in cluster.allocate(3, "g1")
        cluster.restore_machine(2)
        assert cluster.n_failed == 0
        assert cluster.n_free == 1

    def test_owned_machine_parked_on_release(self):
        cluster = Cluster(4, MachineSpec())
        held = cluster.allocate(2, "g1")
        victim = held[0]
        cluster.mark_failed(victim)
        cluster.release_all("g1")
        # The failed machine must not silently rejoin the free pool.
        assert cluster.n_free == 3
        assert cluster.is_failed(victim)
        cluster.restore_machine(victim)
        assert cluster.n_free == 4
