"""Tests for the per-figure experiment drivers (scaled down).

Each driver must run end-to-end and reproduce the *shape* of its paper
exhibit; the full-scale numbers live in benchmarks/ and EXPERIMENTS.md.
"""

import pytest

from repro.experiments import (
    ablation,
    common,
    fig02_single_job,
    fig03_dop_sweep,
    fig04_naive_colocation,
    fig09_workload_cdf,
    fig10_main,
    fig12_group_distributions,
    fig13_model_accuracy,
    fig14_oracle,
    reloading,
    scalability,
    sensitivity_arrival,
    sensitivity_ratio,
)

SCALE = 0.25  # 16 jobs / 25 machines


class TestCommon:
    def test_scaled_workload_shapes(self):
        jobs, machines = common.scaled_workload(0.5)
        assert len(jobs) == 40
        assert machines == 50

    def test_full_scale_is_paper_scale(self):
        jobs, machines = common.scaled_workload(1.0)
        assert len(jobs) == 80
        assert machines == 100

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            common.scaled_workload(0.0)


class TestFig02:
    def test_no_config_reaches_full_utilization(self):
        result = fig02_single_job.run()
        for _label, cpu, net in result.rows:
            assert cpu + net < 170.0  # both cannot be high at once
            assert cpu > 5.0 and net > 5.0
        assert "Fig. 2" in fig02_single_job.report(result)

    def test_lda_is_more_cpu_heavy_than_mlr(self):
        result = fig02_single_job.run()
        by_label = {label: (cpu, net) for label, cpu, net in result.rows}
        assert by_label["LDA-PubMed"][0] > by_label["MLR-16K"][0]


class TestFig03:
    def test_cpu_utilization_falls_with_machines(self):
        result = fig03_dop_sweep.run()
        cpu = [row.cpu_utilization for row in result.rows]
        assert cpu == sorted(cpu, reverse=True)

    def test_comp_shrinks_comm_flat(self):
        result = fig03_dop_sweep.run()
        comps = [row.t_comp for row in result.rows]
        pulls = {row.t_pull for row in result.rows}
        assert comps == sorted(comps, reverse=True)
        assert len(pulls) == 1  # PULL is DoP-independent

    def test_iteration_time_improves_with_machines(self):
        result = fig03_dop_sweep.run()
        iterations = [row.iteration_seconds for row in result.rows]
        assert iterations[-1] < iterations[0]


class TestFig04:
    @pytest.fixture(scope="class")
    def result(self):
        return fig04_naive_colocation.run()

    def test_triple_ooms(self, result):
        assert result.row("NMF+MLR+Lasso").oom

    def test_pairs_complete_without_oom(self, result):
        assert not result.row("NMF+Lasso").oom
        assert not result.row("NMF+MLR").oom

    def test_colocation_does_not_fix_utilization(self, result):
        """Pairs still fail to push both resources high (the paper's
        point: naive co-location averages out around ~50%)."""
        pair = result.row("NMF+Lasso")
        assert pair.cpu_utilization < 90.0
        assert "OOM" in fig04_naive_colocation.report(result)


class TestFig09:
    def test_cdfs_cover_paper_ranges(self):
        result = fig09_workload_cdf.run()
        assert result.iteration_minutes.max() < 25
        assert result.comp_ratios.min() < 0.35
        assert result.comp_ratios.max() > 0.8
        values, fractions = result.iteration_cdf()
        assert fractions[-1] == 1.0
        assert "Table I" in fig09_workload_cdf.report(result)


class TestFig10:
    @pytest.fixture(scope="class")
    def result(self):
        return fig10_main.run(scale=SCALE, n_naive_cases=2)

    def test_harmony_beats_isolated_makespan(self, result):
        assert result.harmony_makespan_speedup > 1.1

    def test_harmony_improves_utilization(self, result):
        assert result.utilization_ratio > 1.1

    def test_naive_is_no_silver_bullet(self, result):
        assert min(result.naive_makespan_speedups) < 1.2

    def test_report_renders(self, result):
        text = fig10_main.report(result)
        assert "Harmony" in text and "Naive" in text


class TestFig12:
    def test_comp_heavy_workload_uses_larger_dops(self):
        result = fig12_group_distributions.run(scale=SCALE)
        assert result.comp_intensive.median_dop >= \
            result.comm_intensive.median_dop
        assert "Fig. 12" in fig12_group_distributions.report(result)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return fig13_model_accuracy.run(scale=SCALE,
                                        error_levels=(0.0, 0.2))

    def test_prediction_error_is_small(self, result):
        assert result.mean_t_group_error < 0.25

    def test_error_injection_rows(self, result):
        assert len(result.sensitivity) == 2
        assert result.sensitivity[0].normalized_jct_speedup == 1.0
        assert "Fig. 13a" in fig13_model_accuracy.report(result)

    def test_injector_is_deterministic_per_job(self):
        injector = fig13_model_accuracy.make_error_injector(0.1, seed=1)
        assert injector("t_cpu", "a") == injector("t_cpu", "a")
        assert injector("t_cpu", "a") in (0.9, 1.1)


class TestFig14:
    def test_oracle_close_to_harmony(self):
        result = fig14_oracle.run(n_jobs=5, n_machines=16)
        assert len(result.oracle.finished) == 5
        assert len(result.harmony.finished) == 5
        # The greedy scheduler stays within a sane band of the oracle.
        assert abs(result.jct_gap) < 0.5
        assert "Fig. 14" in fig14_oracle.report(result)


class TestAblation:
    def test_stages_monotone_and_full_is_best(self):
        result = ablation.run(scale=SCALE)
        fractions = [result.benefit_fraction(stage)
                     for _, stage in result.stages]
        assert fractions[-1] == pytest.approx(1.0)
        assert fractions[0] <= fractions[-1]
        assert "ablation" in ablation.report(result)


class TestSensitivity:
    def test_ratio_subsets_complete(self):
        result = sensitivity_ratio.run(scale=SCALE)
        assert {row.label for row in result.rows} == \
            {"base", "comp-intensive", "comm-intensive"}
        for row in result.rows:
            assert row.makespan_speedup > 0.8

    def test_arrival_sweep_completes(self):
        result = sensitivity_arrival.run(
            scale=SCALE, mean_arrival_minutes=(0.0, 4.0),
            n_trace_windows=1)
        labels = [row.label for row in result.rows]
        assert "poisson 0 min" in labels
        assert "google traces (avg)" in labels


class TestScalability:
    def test_schedule_times_reported(self):
        result = scalability.run(sizes=((80, 100), (500, 1000)),
                                 oracle_sizes=(4, 5))
        assert result.harmony_rows[-1].seconds < 5.0
        assert result.oracle_rows[1].partitions_searched > \
            result.oracle_rows[0].partitions_searched
        assert "V-F" in scalability.report(result)


class TestReloading:
    @pytest.fixture(scope="class")
    def result(self):
        return reloading.run(alphas=(0.1, 0.3, 0.7))

    def test_low_alpha_melts_in_gc(self, result):
        by_alpha = dict(result.fixed_rows)
        assert by_alpha[0.1] > 2 * by_alpha[0.3]

    def test_adaptive_close_to_best_fixed(self, result):
        _, best_seconds = result.best_fixed
        assert result.adaptive_iteration_seconds <= best_seconds * 1.15

    def test_alpha_stats_in_range(self, result):
        mean_alpha, min_alpha, max_alpha = result.alpha_stats()
        assert 0.0 <= min_alpha <= mean_alpha <= max_alpha <= 1.0
        assert "V-G" in reloading.report(result)
