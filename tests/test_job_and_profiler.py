"""Tests for the job state machine, subtasks, and the profiler."""

import pytest

from repro.core.job import Job, JobState
from repro.core.profiler import JobMetrics, Profiler
from repro.core.subtask import (
    ITERATION_SEQUENCE,
    ResourceKind,
    SubTask,
    SubTaskKind,
)
from repro.errors import JobStateError, SchedulingError
from repro.workloads.apps import DATASETS, JobSpec, LDA


def _job(iterations=3) -> Job:
    return Job(JobSpec("j", LDA, DATASETS["LDA"][1],
                       iterations=iterations))


class TestJobStates:
    def test_starts_waiting_with_full_iterations(self):
        job = _job(iterations=5)
        assert job.state is JobState.WAITING
        assert job.remaining_iterations == 5

    def test_happy_path_transitions(self):
        job = _job()
        for state in (JobState.PROFILING, JobState.PROFILED,
                      JobState.RUNNING, JobState.PAUSED,
                      JobState.RUNNING, JobState.FINISHED):
            job.transition(state)
        assert job.is_done

    def test_illegal_transition_raises(self):
        job = _job()
        with pytest.raises(JobStateError):
            job.transition(JobState.FINISHED)  # WAITING -> FINISHED

    def test_terminal_states_are_final(self):
        job = _job()
        job.transition(JobState.PROFILING)
        job.transition(JobState.FAILED)
        with pytest.raises(JobStateError):
            job.transition(JobState.RUNNING)

    def test_interrupted_profiling_can_resume(self):
        job = _job()
        job.transition(JobState.PROFILING)
        job.transition(JobState.PAUSED)
        job.transition(JobState.PROFILING)  # re-profiled later
        assert job.state is JobState.PROFILING

    def test_complete_iteration_counts_down(self):
        job = _job(iterations=2)
        assert job.complete_iteration() is False
        assert job.complete_iteration() is True
        with pytest.raises(JobStateError):
            job.complete_iteration()

    def test_is_schedulable_matches_algorithm_inputs(self):
        job = _job()
        assert not job.is_schedulable  # WAITING
        job.transition(JobState.PROFILING)
        assert not job.is_schedulable
        job.transition(JobState.PROFILED)
        assert job.is_schedulable
        job.transition(JobState.RUNNING)
        assert job.is_schedulable
        job.transition(JobState.PAUSED)
        assert job.is_schedulable

    def test_completion_time_requires_finish(self):
        job = _job()
        with pytest.raises(JobStateError):
            job.completion_time()
        job.finish_time = 100.0
        assert job.completion_time() == 100.0 - job.submit_time


class TestSubTasks:
    def test_iteration_sequence_is_pull_comp_push(self):
        assert ITERATION_SEQUENCE == (SubTaskKind.PULL, SubTaskKind.COMP,
                                      SubTaskKind.PUSH)

    def test_comm_subtasks_use_network(self):
        assert SubTaskKind.PULL.resource is ResourceKind.NETWORK
        assert SubTaskKind.PUSH.resource is ResourceKind.NETWORK
        assert SubTaskKind.PULL.is_comm and SubTaskKind.PUSH.is_comm

    def test_comp_subtask_uses_cpu(self):
        assert SubTaskKind.COMP.resource is ResourceKind.CPU
        assert not SubTaskKind.COMP.is_comm

    def test_subtask_tag_is_job_id(self):
        task = SubTask("jobX", SubTaskKind.COMP, iteration=0,
                       duration=1.0)
        assert task.tag == "jobX"
        assert task.resource is ResourceKind.CPU


class TestJobMetrics:
    def test_t_cpu_scales_inversely_with_machines(self):
        metrics = JobMetrics("j", cpu_work=100.0, t_net=10.0,
                             m_observed=4)
        assert metrics.t_cpu_at(4) == 25.0
        assert metrics.t_cpu_at(8) == 12.5

    def test_iteration_time_adds_network(self):
        metrics = JobMetrics("j", cpu_work=100.0, t_net=10.0,
                             m_observed=4)
        assert metrics.t_iteration_at(10) == pytest.approx(20.0)

    def test_bad_dop_raises(self):
        metrics = JobMetrics("j", cpu_work=1.0, t_net=1.0, m_observed=1)
        with pytest.raises(SchedulingError):
            metrics.t_cpu_at(0)

    def test_comp_comm_ratio(self):
        metrics = JobMetrics("j", cpu_work=100.0, t_net=10.0,
                             m_observed=4)
        assert metrics.comp_comm_ratio_at(10) == pytest.approx(1.0)


class TestProfiler:
    def test_first_record_is_exact(self):
        profiler = Profiler()
        profiler.record_iteration("j", t_cpu=10.0, t_net=4.0, m=8)
        metrics = profiler.get("j")
        assert metrics.cpu_work == pytest.approx(80.0)
        assert metrics.t_net == pytest.approx(4.0)
        assert metrics.samples == 1

    def test_ema_converges_to_new_level(self):
        profiler = Profiler(ema_alpha=0.5)
        profiler.record_iteration("j", 10.0, 4.0, m=1)
        for _ in range(20):
            profiler.record_iteration("j", 20.0, 8.0, m=1)
        metrics = profiler.get("j")
        assert metrics.cpu_work == pytest.approx(20.0, rel=0.01)
        assert metrics.t_net == pytest.approx(8.0, rel=0.01)

    def test_atypical_first_sample_is_averaged_away(self):
        """Regression: the plain EMA anchored on the first observation,
        so a 10x-slow first iteration (cold caches, lazy init) skewed
        the estimate for the job's whole lifetime.  The bias-corrected
        EMA weighs it like any other early sample."""
        profiler = Profiler(ema_alpha=0.1)
        profiler.record_iteration("j", t_cpu=100.0, t_net=40.0, m=1)
        for _ in range(9):
            profiler.record_iteration("j", t_cpu=10.0, t_net=4.0, m=1)
        metrics = profiler.get("j")
        # The uncorrected EMA would still read ~44.9 here (the outlier
        # retains weight (1-a)^9 ~ 0.39); bias correction shrinks its
        # weight to a(1-a)^9 / (1-(1-a)^10) ~ 0.06.
        assert metrics.cpu_work < 20.0
        assert metrics.t_net < 8.0

    def test_bias_corrected_ema_is_geometric_weighted_mean(self):
        alpha = 0.3
        samples = [12.0, 7.0, 9.5, 30.0, 8.0]
        profiler = Profiler(ema_alpha=alpha)
        for value in samples:
            profiler.record_iteration("j", t_cpu=value, t_net=1.0, m=1)
        n = len(samples)
        weights = [alpha * (1 - alpha) ** (n - 1 - i) for i in range(n)]
        expected = sum(w * v for w, v in zip(weights, samples, strict=True)) \
            / sum(weights)
        assert profiler.get("j").cpu_work == pytest.approx(expected)

    def test_cpu_work_is_dop_normalized(self):
        """Measurements at different DoPs agree on the work constant."""
        profiler = Profiler(ema_alpha=1.0)
        profiler.record_iteration("j", t_cpu=10.0, t_net=1.0, m=8)
        work_at_8 = profiler.get("j").cpu_work
        profiler.record_iteration("j", t_cpu=20.0, t_net=1.0, m=4)
        assert profiler.get("j").cpu_work == pytest.approx(work_at_8)

    def test_unknown_job_raises(self):
        with pytest.raises(SchedulingError):
            Profiler().get("ghost")

    def test_negative_measurement_raises(self):
        with pytest.raises(SchedulingError):
            Profiler().record_iteration("j", -1.0, 1.0, m=1)

    def test_invalid_ema_raises(self):
        with pytest.raises(SchedulingError):
            Profiler(ema_alpha=0.0)

    def test_forget_removes(self):
        profiler = Profiler()
        profiler.record_iteration("j", 1.0, 1.0, m=1)
        profiler.forget("j")
        assert not profiler.has("j")
        assert len(profiler) == 0

    def test_known_jobs_sorted(self):
        profiler = Profiler()
        profiler.record_iteration("b", 1.0, 1.0, m=1)
        profiler.record_iteration("a", 1.0, 1.0, m=1)
        assert profiler.known_jobs() == ["a", "b"]
