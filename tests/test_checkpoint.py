"""Tests for model checkpointing and resume on the real runtime."""

import numpy as np
import pytest

from repro.core.local_runtime import LocalHarmonyRuntime, LocalJob
from repro.errors import PSError
from repro.ml import MLRModel
from repro.ml.datasets import make_classification, partition_rows
from repro.ps import PSServer, RangePartitioner
from repro.ps.checkpoint import (
    checkpoint_servers,
    load_checkpoint,
    restore_servers,
    save_checkpoint,
)


class TestCheckpointFile:
    def test_roundtrip(self, tmp_path):
        params = {"w": np.arange(12, dtype=float).reshape(3, 4),
                  "b": np.array([1.0, 2.0])}
        target = save_checkpoint(tmp_path / "model.ckpt", params,
                                 clock=7)
        loaded, clock = load_checkpoint(target)
        assert clock == 7
        assert np.allclose(loaded["w"], params["w"])
        assert np.allclose(loaded["b"], params["b"])

    def test_creates_directories(self, tmp_path):
        target = save_checkpoint(tmp_path / "a/b/model.ckpt",
                                 {"w": np.ones(2)})
        assert target.exists()

    def test_negative_clock_rejected(self, tmp_path):
        with pytest.raises(PSError):
            save_checkpoint(tmp_path / "x.ckpt", {"w": np.ones(1)},
                            clock=-1)

    def test_bad_magic_rejected(self, tmp_path):
        bad = tmp_path / "bad.ckpt"
        bad.write_bytes(b"NOPE" + b"\x00" * 32)
        with pytest.raises(PSError, match="not a Harmony checkpoint"):
            load_checkpoint(bad)


class TestServerRoundtrip:
    def _build(self):
        keys = [f"k{i}" for i in range(6)]
        partitioner = RangePartitioner(keys, 2)
        servers = []
        for shard in range(partitioner.n_shards):
            server = PSServer(shard, n_workers=1)
            server.init_params(
                {k: np.full(3, float(shard))
                 for k in partitioner.keys_of_shard(shard)})
            servers.append(server)
        return partitioner, servers

    def test_checkpoint_and_restore_servers(self, tmp_path):
        partitioner, servers = self._build()
        servers[0].store.update(
            {partitioner.keys_of_shard(0)[0]: np.ones(3)})
        path = checkpoint_servers(tmp_path / "all.ckpt", servers,
                                  clock=3)
        # Wreck the state, then restore.
        for server in servers:
            for key in partitioner.keys_of_shard(server.shard_id):
                server.store.assign({key: np.zeros(3)})
        clock = restore_servers(path, servers, partitioner)
        assert clock == 3
        first_key = partitioner.keys_of_shard(0)[0]
        assert np.allclose(servers[0].store.get(first_key), 1.0)

    def test_restore_detects_missing_keys(self, tmp_path):
        partitioner, servers = self._build()
        path = save_checkpoint(tmp_path / "partial.ckpt",
                               {"k0": np.ones(3)})
        with pytest.raises(PSError, match="misses keys"):
            restore_servers(path, servers, partitioner)


class TestResumeTraining:
    def test_resumed_job_continues_from_checkpoint(self, tmp_path):
        """Train, checkpoint, resume: the resumed run starts from the
        trained loss level, not from scratch (§IV-B4's resume path)."""
        features, labels, _ = make_classification(240, 10, 3, seed=1)
        parts = partition_rows(len(labels), 2)
        partitions = [{"X": features[p], "y": labels[p]} for p in parts]

        first_leg = LocalHarmonyRuntime(
            [LocalJob("job", MLRModel(10, 3), partitions,
                      max_epochs=10, learning_rate=0.5)],
            barrier_timeout=30).run()["job"]
        path = save_checkpoint(tmp_path / "leg1.ckpt",
                               first_leg.final_params,
                               clock=first_leg.epochs)

        params, clock = load_checkpoint(path)
        assert clock == 10
        second_leg = LocalHarmonyRuntime(
            [LocalJob("job", MLRModel(10, 3), partitions,
                      max_epochs=5, learning_rate=0.5,
                      initial_params=params)],
            barrier_timeout=30).run()["job"]
        # The resumed run starts roughly where the first one ended —
        # far below a cold start's initial loss.
        cold_start_loss = first_leg.losses[0]
        assert second_leg.losses[0] < cold_start_loss * 0.8
        assert second_leg.losses[-1] <= second_leg.losses[0] * 1.05
