"""Tests for the threaded local runtime (real PS + real models)."""

import pytest

from repro.core.local_runtime import LocalHarmonyRuntime, LocalJob
from repro.core.subtask import SubTaskKind
from repro.core.synchronizer import SubTaskSynchronizer
from repro.errors import SimulationError, WorkloadError
from repro.ml import LassoModel, MLRModel
from repro.ml.datasets import (
    make_classification,
    make_regression,
    partition_rows,
)


def mlr_job(job_id="mlr", n_workers=2, epochs=10, seed=1):
    features, labels, _ = make_classification(240, 10, 3, seed=seed)
    parts = partition_rows(len(labels), n_workers)
    partitions = [{"X": features[p], "y": labels[p]} for p in parts]
    return LocalJob(job_id, MLRModel(10, 3), partitions,
                    max_epochs=epochs, learning_rate=0.5)


def lasso_job(job_id="lasso", n_workers=2, epochs=10, seed=2):
    features, targets, _ = make_regression(200, 20, sparsity=0.5,
                                           seed=seed)
    parts = partition_rows(len(targets), n_workers)
    partitions = [{"X": features[p], "y": targets[p]} for p in parts]
    return LocalJob(job_id, LassoModel(20), partitions,
                    max_epochs=epochs, learning_rate=0.3)


class TestLocalJob:
    def test_rejects_empty_partitions(self):
        with pytest.raises(WorkloadError):
            LocalJob("x", MLRModel(4, 2), [], max_epochs=1)

    def test_rejects_zero_epochs(self):
        with pytest.raises(WorkloadError):
            LocalJob("x", MLRModel(4, 2), [{}], max_epochs=0)

    def test_n_workers_matches_partitions(self):
        job = mlr_job(n_workers=3)
        assert job.n_workers == 3


class TestLocalRuntime:
    def test_single_job_trains(self):
        runtime = LocalHarmonyRuntime([mlr_job()], barrier_timeout=30)
        results = runtime.run()
        result = results["mlr"]
        assert result.epochs > 1
        assert result.losses[-1] < result.losses[0]
        assert result.bytes_moved > 0

    def test_colocated_jobs_both_converge(self):
        runtime = LocalHarmonyRuntime([mlr_job(), lasso_job()],
                                      barrier_timeout=30)
        results = runtime.run()
        assert set(results) == {"mlr", "lasso"}
        for result in results.values():
            assert result.losses[-1] < result.losses[0]

    def test_duplicate_job_ids_rejected(self):
        with pytest.raises(WorkloadError):
            LocalHarmonyRuntime([mlr_job("same"), mlr_job("same")])

    def test_no_jobs_rejected(self):
        with pytest.raises(WorkloadError):
            LocalHarmonyRuntime([])

    def test_injected_clock_drives_all_timing(self):
        """Regression for wall-clock reads scattered through the
        runtime: every subtask timing read goes through the injected
        clock, so a fake clock ticking in whole seconds must yield
        integer-valued profiled durations (a stray time.perf_counter()
        would contribute sub-millisecond fractions)."""
        import threading

        lock = threading.Lock()
        ticks = [0.0]

        def fake_clock():
            with lock:
                ticks[0] += 1.0
                return ticks[0]

        runtime = LocalHarmonyRuntime([mlr_job(epochs=3)],
                                      barrier_timeout=30,
                                      clock=fake_clock)
        recorded = []
        real_record = runtime.profiler.record_iteration

        def capture(job_id, t_cpu, t_net, m):
            recorded.append((t_cpu, t_net))
            return real_record(job_id, t_cpu, t_net, m)

        runtime.profiler.record_iteration = capture
        results = runtime.run()
        duration = results["mlr"].duration_seconds
        assert duration == int(duration) and duration >= 1.0
        assert recorded
        for t_cpu, t_net in recorded:
            assert t_cpu == int(t_cpu) and t_cpu >= 1.0
            assert t_net == int(t_net) and t_net >= 2.0

    def test_profiler_collects_metrics(self):
        runtime = LocalHarmonyRuntime([mlr_job()], barrier_timeout=30)
        runtime.run()
        assert runtime.profiler.has("mlr")
        metrics = runtime.profiler.get("mlr")
        assert metrics.cpu_work > 0

    def test_uncoordinated_mode_still_correct(self):
        """Without coordination the answer is the same, only timing
        differs (the naive baseline's point)."""
        coordinated = LocalHarmonyRuntime([mlr_job(seed=3)],
                                          barrier_timeout=30).run()
        free_for_all = LocalHarmonyRuntime([mlr_job(seed=3)],
                                           coordinate=False,
                                           barrier_timeout=30).run()
        assert coordinated["mlr"].epochs == free_for_all["mlr"].epochs
        assert coordinated["mlr"].losses[-1] == pytest.approx(
            free_for_all["mlr"].losses[-1], rel=1e-6)

    def test_threshold_stops_early(self):
        job = mlr_job(epochs=50)
        job.threshold = 10.0  # immediately satisfied
        runtime = LocalHarmonyRuntime([job], barrier_timeout=30)
        results = runtime.run()
        assert results["mlr"].epochs == 1

    def test_final_params_returned(self):
        runtime = LocalHarmonyRuntime([mlr_job()], barrier_timeout=30)
        results = runtime.run()
        params = results["mlr"].final_params
        assert params
        total_classes = sum(v.shape[1] for v in params.values())
        assert total_classes == 3


class TestSynchronizer:
    def test_barrier_releases_when_all_arrive(self):
        import threading
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 2)
        released = []

        def worker():
            synchronizer.arrive("j", 0, SubTaskKind.PULL)
            released.append(True)

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        assert not released  # one of two arrived
        synchronizer.arrive("j", 0, SubTaskKind.PULL)
        thread.join(timeout=5.0)
        assert len(released) == 1

    def test_unregistered_job_raises(self):
        synchronizer = SubTaskSynchronizer()
        with pytest.raises(SimulationError):
            synchronizer.arrive("ghost", 0, SubTaskKind.PULL)

    def test_over_arrival_raises(self):
        synchronizer = SubTaskSynchronizer()
        synchronizer.register_job("j", 1)
        synchronizer.arrive("j", 0, SubTaskKind.PULL)
        with pytest.raises(SimulationError, match="more arrivals"):
            synchronizer.arrive("j", 0, SubTaskKind.PULL)

    def test_timeout_raises(self):
        synchronizer = SubTaskSynchronizer(timeout=0.05)
        synchronizer.register_job("j", 2)
        with pytest.raises(SimulationError, match="barrier timeout"):
            synchronizer.arrive("j", 0, SubTaskKind.COMP)

    def test_unregister_releases_waiters(self):
        import threading
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 2)
        outcome = []

        def worker():
            try:
                synchronizer.arrive("j", 0, SubTaskKind.PUSH)
                outcome.append("released")
            except SimulationError:
                outcome.append("timeout")

        thread = threading.Thread(target=worker, daemon=True)
        thread.start()
        import time
        time.sleep(0.1)  # let the worker reach the barrier
        synchronizer.unregister_job("j")
        thread.join(timeout=5.0)
        assert outcome == ["released"]

    def test_pending_reports_open_barriers(self):
        synchronizer = SubTaskSynchronizer(timeout=0.05)
        synchronizer.register_job("j", 2)
        assert synchronizer.pending("j") == 0
        with pytest.raises(SimulationError):
            synchronizer.arrive("j", 0, SubTaskKind.PULL)
        assert synchronizer.pending("j") == 1
        assert synchronizer.pending("ghost") is None

    def test_bad_worker_count_rejected(self):
        with pytest.raises(SimulationError):
            SubTaskSynchronizer().register_job("j", 0)
