"""Tests for the isolated and naive baselines."""

import pytest

from repro.baselines import IsolatedRuntime, NaiveRuntime
from repro.baselines.naive import best_and_worst, run_naive_cases
from repro.workloads.apps import DATASETS, JobSpec, MLR
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def workload():
    return WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)


@pytest.fixture(scope="module")
def isolated_result(workload):
    return IsolatedRuntime(24, workload).run()


class TestIsolated:
    def test_all_jobs_finish(self, isolated_result, workload):
        assert len(isolated_result.finished) == len(workload)
        assert not isolated_result.failed

    def test_scheduler_name(self, isolated_result):
        assert isolated_result.scheduler_name == "isolated"

    def test_one_job_per_group(self, workload):
        runtime = IsolatedRuntime(24, workload)
        assert runtime.master.group_size == 1

    def test_machines_for_balances_cpu_and_network(self, workload):
        runtime = IsolatedRuntime(100, workload)
        spec = workload[0]
        wanted = runtime.master.machines_for([spec])
        assert 1 <= wanted <= 32

    def test_memory_floor_enforced(self):
        """A big job is never squeezed below its no-spill floor."""
        spec = JobSpec("big", MLR, DATASETS["MLR"][1], iterations=2)
        runtime = IsolatedRuntime(100, [spec])
        floor = runtime.master._memory_floor([spec])
        assert runtime.master.machines_for([spec]) >= floor
        assert floor > 1

    def test_strict_fifo_blocks_head_of_line(self, workload):
        lenient = IsolatedRuntime(24, workload).run()
        strict = IsolatedRuntime(24, workload, ).run()
        # Both complete; backfill cannot be slower than strict FIFO.
        assert lenient.makespan <= strict.makespan * 1.05

    def test_dop_scale_shrinks_allocations(self, workload):
        spec = workload[0]
        small = IsolatedRuntime(100, workload, dop_scale=0.5)
        large = IsolatedRuntime(100, workload, dop_scale=1.0)
        assert small.master.machines_for([spec]) <= \
            large.master.machines_for([spec])


class TestNaive:
    def test_all_jobs_finish_when_feasible(self, workload):
        result = NaiveRuntime(24, workload, group_size=2,
                              shuffle_seed=1).run()
        assert len(result.finished) + len(result.failed) == len(workload)
        assert len(result.finished) >= len(workload) - 1

    def test_shuffle_seed_changes_outcome(self, workload):
        first = NaiveRuntime(24, workload, group_size=2,
                             shuffle_seed=1).run()
        second = NaiveRuntime(24, workload, group_size=2,
                              shuffle_seed=2).run()
        assert first.makespan != second.makespan

    def test_run_naive_cases_counts(self, workload):
        cases = run_naive_cases(24, workload, n_cases=3)
        assert len(cases) == 3
        for case in cases:
            assert case.scheduler_name == "naive"

    def test_best_and_worst_ordering(self, workload, isolated_result):
        cases = run_naive_cases(24, workload, n_cases=3)
        best, worst = best_and_worst(cases, isolated_result.mean_jct)
        assert best.mean_jct <= worst.mean_jct

    def test_best_and_worst_empty_raises(self):
        with pytest.raises(ValueError):
            best_and_worst([], 1.0)

    def test_group_size_respected(self, workload):
        runtime = NaiveRuntime(24, workload, group_size=3)
        assert runtime.master.group_size == 3


class TestComparativeShape:
    """The headline qualitative claims of Fig. 10, at test scale."""

    def test_harmony_beats_isolated_makespan(self, workload,
                                             isolated_result):
        from repro.core.runtime import HarmonyRuntime
        harmony = HarmonyRuntime(24, workload).run()
        assert harmony.makespan < isolated_result.makespan

    def test_harmony_utilization_exceeds_isolated(self, workload,
                                                  isolated_result):
        from repro.core.runtime import HarmonyRuntime
        harmony = HarmonyRuntime(24, workload).run()
        assert harmony.average_utilization("cpu") > \
            isolated_result.average_utilization("cpu")
