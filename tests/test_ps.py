"""Tests for the in-process Parameter Server substrate."""

import threading

import numpy as np
import pytest

from repro.errors import PSError
from repro.ps import (
    InProcessTransport,
    KVStore,
    PSClient,
    PSServer,
    RangePartitioner,
    payload_bytes,
)
from repro.ps.serialization import decode, encode


class TestKVStore:
    def test_init_and_get_copies(self):
        store = KVStore()
        value = np.ones(3)
        store.init("w", value)
        fetched = store.get("w")
        fetched[0] = 99.0
        assert store.get("w")[0] == 1.0

    def test_double_init_raises(self):
        store = KVStore()
        store.init("w", np.ones(2))
        with pytest.raises(PSError):
            store.init("w", np.ones(2))

    def test_unknown_key_raises(self):
        with pytest.raises(PSError):
            KVStore().get("missing")

    def test_update_is_additive(self):
        store = KVStore()
        store.init("w", np.array([1.0, 2.0]))
        store.update({"w": np.array([0.5, -1.0])})
        assert np.allclose(store.get("w"), [1.5, 1.0])

    def test_update_scale(self):
        store = KVStore()
        store.init("w", np.zeros(2))
        store.update({"w": np.ones(2)}, scale=-2.0)
        assert np.allclose(store.get("w"), [-2.0, -2.0])

    def test_update_shape_mismatch_raises(self):
        store = KVStore()
        store.init("w", np.zeros(2))
        with pytest.raises(PSError):
            store.update({"w": np.zeros(3)})

    def test_version_bumps_per_update(self):
        store = KVStore()
        store.init("w", np.zeros(1))
        assert store.version == 0
        store.update({"w": np.ones(1)})
        store.update({"w": np.ones(1)})
        assert store.version == 2

    def test_snapshot_selects_keys(self):
        store = KVStore()
        store.init("a", np.ones(1))
        store.init("b", np.ones(1))
        assert set(store.snapshot(["a"])) == {"a"}
        with pytest.raises(PSError):
            store.snapshot(["missing"])

    def test_assign_overwrites(self):
        store = KVStore()
        store.init("w", np.zeros(2))
        store.assign({"w": np.array([7.0, 8.0])})
        assert np.allclose(store.get("w"), [7.0, 8.0])

    def test_total_bytes(self):
        store = KVStore()
        store.init("w", np.zeros(4))
        assert store.total_bytes() == 32


class TestPartitioner:
    def test_round_robin_assignment_is_balanced(self):
        keys = [f"k{i}" for i in range(10)]
        part = RangePartitioner(keys, 3)
        sizes = [len(part.keys_of_shard(s)) for s in range(3)]
        assert max(sizes) - min(sizes) <= 1
        assert sum(sizes) == 10

    def test_shards_capped_by_key_count(self):
        part = RangePartitioner(["a", "b"], 5)
        assert part.n_shards == 2

    def test_unknown_key_raises(self):
        part = RangePartitioner(["a"], 1)
        with pytest.raises(PSError):
            part.shard_of("zzz")

    def test_empty_keys_raise(self):
        with pytest.raises(PSError):
            RangePartitioner([], 2)

    def test_group_by_shard_covers_input(self):
        keys = [f"k{i}" for i in range(7)]
        part = RangePartitioner(keys, 2)
        grouped = part.group_by_shard(keys)
        flattened = [k for shard in grouped.values() for k in shard]
        assert sorted(flattened) == sorted(keys)

    def test_deterministic_across_constructions(self):
        keys = [f"k{i}" for i in range(6)]
        a = RangePartitioner(keys, 2)
        b = RangePartitioner(reversed(keys), 2)
        assert all(a.shard_of(k) == b.shard_of(k) for k in keys)


class TestSerialization:
    def test_roundtrip(self):
        arrays = {"w": np.arange(6, dtype=np.float64).reshape(2, 3),
                  "b": np.array([1.5])}
        decoded = decode(encode(arrays))
        assert set(decoded) == {"w", "b"}
        assert np.allclose(decoded["w"], arrays["w"])
        assert decoded["w"].shape == (2, 3)

    def test_roundtrip_scalar_shapes(self):
        arrays = {"s": np.float64(3.0).reshape(())}
        decoded = decode(encode(arrays))
        assert decoded["s"].shape == ()

    def test_payload_bytes_tracks_data_size(self):
        small = payload_bytes({"w": np.zeros(10)})
        large = payload_bytes({"w": np.zeros(1000)})
        assert large - small == (1000 - 10) * 8

    def test_bad_magic_rejected(self):
        with pytest.raises(PSError):
            decode(b"XXXX" + b"\x00" * 10)

    def test_encoded_size_matches_payload_bytes(self):
        arrays = {"w": np.zeros((3, 4)), "v": np.ones(5)}
        assert len(encode(arrays)) == payload_bytes(arrays)


class TestServerClient:
    def _build(self, n_workers=2, n_keys=4):
        keys = [f"k{i}" for i in range(n_keys)]
        part = RangePartitioner(keys, n_shards=2)
        transport = InProcessTransport()
        servers = []
        for shard in range(part.n_shards):
            server = PSServer(shard, n_workers=n_workers,
                              barrier_timeout=5.0)
            server.init_params({k: np.zeros(2)
                                for k in part.keys_of_shard(shard)})
            transport.register(server)
            servers.append(server)
        clients = [PSClient(w, transport, part)
                   for w in range(n_workers)]
        return part, transport, servers, clients

    def test_pull_gathers_all_keys(self):
        part, _, _, clients = self._build()
        params = clients[0].pull()
        assert sorted(params) == part.keys

    def test_push_applies_deltas_and_advances_clock(self):
        _, _, servers, clients = self._build(n_workers=1)
        client = clients[0]
        client.push({"k0": np.array([1.0, 2.0])})
        assert client.clock == 1
        params = client.pull()
        assert np.allclose(params["k0"], [1.0, 2.0])

    def test_synchronous_barrier_blocks_fast_worker(self):
        """A worker cannot pull clock 1 until every worker pushed 0."""
        _, _, _, clients = self._build(n_workers=2)
        fast, slow = clients
        fast.push({})
        progressed = threading.Event()

        def fast_worker():
            fast.pull()  # needs clock 0 complete -> blocks on slow
            progressed.set()

        thread = threading.Thread(target=fast_worker, daemon=True)
        thread.start()
        assert not progressed.wait(timeout=0.2)
        slow.push({})
        assert progressed.wait(timeout=5.0)
        thread.join(timeout=5.0)

    def test_double_push_same_clock_rejected(self):
        _, _, servers, clients = self._build(n_workers=1)
        servers[0].handle_push(0, {}, clock=0)
        with pytest.raises(PSError):
            servers[0].handle_push(0, {}, clock=0)

    def test_unknown_worker_rejected(self):
        _, _, servers, _ = self._build(n_workers=1)
        with pytest.raises(PSError):
            servers[0].handle_push(99, {}, clock=0)

    def test_barrier_timeout_raises(self):
        server = PSServer(0, n_workers=2, barrier_timeout=0.05)
        server.init_params({"k": np.zeros(1)})
        with pytest.raises(PSError, match="barrier timeout"):
            server.handle_pull(["k"], clock=1)

    def test_transport_meters_bytes(self):
        _, transport, _, clients = self._build(n_workers=1)
        clients[0].pull()
        assert transport.bytes_pulled > 0
        clients[0].push({"k0": np.ones(2)})
        assert transport.bytes_pushed > 0
        assert transport.total_bytes == (transport.bytes_pulled
                                         + transport.bytes_pushed)

    def test_checkpoint_restore_roundtrip(self):
        _, _, servers, clients = self._build(n_workers=1)
        clients[0].push({"k0": np.array([3.0, 4.0])})
        snapshot = servers[0].checkpoint()
        clients[0].push({"k0": np.array([1.0, 1.0])})
        servers[0].restore(snapshot)
        value = servers[0].store.get("k0")
        assert np.allclose(value, [3.0, 4.0])

    def test_duplicate_shard_registration_rejected(self):
        transport = InProcessTransport()
        server = PSServer(0, n_workers=1)
        transport.register(server)
        with pytest.raises(PSError):
            transport.register(PSServer(0, n_workers=1))
