"""Regression tests for placement bugs found during calibration.

Each test pins a failure mode that once produced livelocks, stuck
rebuilds, or over-committed groups — the kind of thing only visible in
long end-to-end runs, captured here as fast, direct scenarios.
"""

from dataclasses import replace

import pytest

from repro.config import DEFAULT_SIM_CONFIG
from repro.core.runtime import HarmonyRuntime
from repro.workloads.generator import WorkloadGenerator


def fixed_alpha_config(alpha):
    return replace(DEFAULT_SIM_CONFIG,
                   memory=replace(DEFAULT_SIM_CONFIG.memory,
                                  fixed_alpha=alpha))


class TestFixedAlphaPlacement:
    """The §V-G fixed-ratio mode once over-committed groups (admission
    had no fit check and nothing rebalanced), inflating GC until drains
    never finished."""

    @pytest.mark.parametrize("alpha", [0.3, 0.5, 0.7])
    def test_fixed_alpha_runs_terminate(self, alpha):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        result = HarmonyRuntime(24, jobs,
                                config=fixed_alpha_config(alpha)).run(
            max_events=2_000_000)
        assert len(result.finished) == len(jobs)

    def test_no_group_sits_above_oom(self):
        """With the admission gate, live groups stay below the OOM
        line at every decision epoch."""
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        runtime = HarmonyRuntime(24, jobs,
                                 config=fixed_alpha_config(0.5))
        # Sample group pressure on every membership change.
        pressures = []
        master = runtime.master
        original = master._note_membership_change

        def spy(group):
            pressures.append(group.ledger.pressure)
            original(group)
        master._note_membership_change = spy
        runtime.run(max_events=2_000_000)
        assert pressures
        assert max(pressures) < 1.0


class TestPlanFloorGateAlignment:
    """A plan sized exactly at its memory floor must pass the admission
    gate, or placement livelocks (plan -> reject -> re-plan forever)."""

    def test_floor_sized_groups_are_admittable(self):
        from repro.cluster.cluster import Cluster
        from repro.core.group_runtime import ExecutionMode, GroupRuntime
        from repro.core.job import Job
        from repro.core.master import HarmonyMaster
        from repro.metrics.utilization import ClusterUsageRecorder
        from repro.sim import RandomStreams, Simulator
        from repro.workloads.costmodel import CostModel

        config = DEFAULT_SIM_CONFIG
        sim = Simulator()
        cluster = Cluster(100, config.machine)
        master = HarmonyMaster(sim, cluster, CostModel(config.machine),
                               config, RandomStreams(1),
                               ClusterUsageRecorder(100))
        jobs = WorkloadGenerator(5).base_workload(hyper_params_per_pair=1)
        for spec in jobs:
            master.jobs[spec.job_id] = Job(spec)
        for spec in jobs:
            floor = master._memory_floor([spec.job_id])
            assert floor <= cluster.size
            group = GroupRuntime(sim, f"probe-{spec.job_id}",
                                 tuple(range(floor)),
                                 ExecutionMode.HARMONY,
                                 master.cost_model, config,
                                 RandomStreams(1), master)
            assert group.can_admit(master.jobs[spec.job_id]), \
                f"{spec.job_id} rejected at its own floor ({floor})"


class TestShrunkSlotSafety:
    """Rebuild slots created with fewer machines than planned (budget
    shrank mid-drain) must not over-commit: jobs that no longer fit
    stay paused and get placed later."""

    def test_heavy_workload_with_small_cluster_terminates(self):
        jobs = WorkloadGenerator(7).base_workload(hyper_params_per_pair=2)
        result = HarmonyRuntime(20, jobs).run(max_events=4_000_000)
        done = len(result.finished) + len(result.failed)
        assert done == len(jobs)
        assert not result.failed


class TestPauseResumeStability:
    def test_repeated_failures_never_wedge_rebuilds(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        failure_times = [float(t) for t in range(1200, 20_000, 2400)]
        runtime = HarmonyRuntime(24, jobs, failure_times=failure_times)
        result = runtime.run(max_events=4_000_000)
        assert len(result.finished) == len(jobs)
        assert runtime.master._rebuild is None
        assert runtime.master._pending_moves == {}
