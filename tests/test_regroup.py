"""Tests for the §IV-B4 regrouping helpers."""


from repro.core.profiler import JobMetrics
from repro.core.regroup import (
    find_similar_bundle,
    find_similar_job,
    is_similar_job,
    prefer_fewer_jobs,
)


def metrics(job_id, cpu_work, t_net):
    return JobMetrics(job_id, cpu_work=cpu_work, t_net=t_net,
                      m_observed=1)


class TestSimilarity:
    def test_identical_jobs_are_similar(self):
        a = metrics("a", 100.0, 10.0)
        b = metrics("b", 100.0, 10.0)
        assert is_similar_job(a, b, m=4)

    def test_within_five_percent_is_similar(self):
        a = metrics("a", 100.0, 10.0)
        b = metrics("b", 103.0, 10.2)
        assert is_similar_job(a, b, m=4, threshold=0.05)

    def test_different_iteration_time_not_similar(self):
        a = metrics("a", 100.0, 10.0)
        b = metrics("b", 200.0, 10.0)
        assert not is_similar_job(a, b, m=4)

    def test_same_total_different_ratio_not_similar(self):
        """Equal iteration times but opposite comp/comm balance."""
        a = metrics("a", 100.0, 10.0)   # at m=4: 25 + 10 = 35
        b = metrics("b", 40.0, 25.0)    # at m=4: 10 + 25 = 35
        assert not is_similar_job(a, b, m=4)

    def test_find_similar_picks_closest(self):
        target = metrics("target", 100.0, 10.0)
        near = metrics("near", 101.0, 10.0)
        far = metrics("far", 104.0, 10.4)
        found = find_similar_job([far, near], target, m=4)
        assert found is near

    def test_find_similar_none_when_empty(self):
        assert find_similar_job([], metrics("t", 1, 1), m=4) is None

    def test_find_similar_none_when_all_too_different(self):
        target = metrics("t", 100.0, 10.0)
        candidates = [metrics("c", 500.0, 50.0)]
        assert find_similar_job(candidates, target, m=4) is None


class TestBundles:
    def test_two_halves_replace_one_whole(self):
        target = metrics("t", 200.0, 20.0)
        halves = [metrics("h1", 100.0, 10.0),
                  metrics("h2", 100.0, 10.0)]
        bundle = find_similar_bundle(halves, target, m=4)
        assert bundle is not None
        assert {item.job_id for item in bundle} == {"h1", "h2"}

    def test_single_candidate_is_not_a_bundle(self):
        target = metrics("t", 200.0, 20.0)
        assert find_similar_bundle([metrics("c", 200.0, 20.0)],
                                   target, m=4) is None

    def test_bundle_respects_budgets(self):
        target = metrics("t", 100.0, 10.0)
        oversized = [metrics("big", 300.0, 30.0),
                     metrics("big2", 300.0, 30.0)]
        assert find_similar_bundle(oversized, target, m=4) is None

    def test_bundle_rejects_ratio_mismatch(self):
        """Sum of iteration times can match while the comp/comm split
        does not."""
        target = metrics("t", 200.0, 20.0)   # cpu 50, net 20 at m=4
        candidates = [metrics("c1", 20.0, 30.0),
                      metrics("c2", 20.0, 30.0)]
        assert find_similar_bundle(candidates, target, m=4) is None

    def test_max_bundle_limits_size(self):
        target = metrics("t", 400.0, 40.0)
        shards = [metrics(f"s{i}", 100.0, 10.0) for i in range(6)]
        bundle = find_similar_bundle(shards, target, m=4, max_bundle=4)
        assert bundle is not None
        assert len(bundle) <= 4


class TestPreferFewerJobs:
    def test_empty_returns_none(self):
        assert prefer_fewer_jobs([]) is None

    def test_single_candidate_chosen(self):
        assert prefer_fewer_jobs([(3, 0.8)]) == 0

    def test_smaller_scope_wins_marginal_improvements(self):
        # Larger decision only 2% better: keep the smaller one.
        assert prefer_fewer_jobs([(3, 0.80), (6, 0.816)]) == 0

    def test_larger_scope_wins_big_improvements(self):
        assert prefer_fewer_jobs([(3, 0.80), (6, 0.90)]) == 1

    def test_equal_size_takes_better_score(self):
        assert prefer_fewer_jobs([(3, 0.80), (3, 0.85)]) == 1

    def test_chain_of_scopes(self):
        plans = [(2, 0.70), (4, 0.72), (8, 0.90), (12, 0.91)]
        # 8 beats 2 by >5%; 12 is not >5% over 8.
        assert prefer_fewer_jobs(plans) == 2


class TestRegroupFaultInterleaving:
    """A crash racing an in-flight §IV-B4 plan application.

    The master applies regroup plans asynchronously: unmatched groups
    drain (pause -> checkpoint) before their machines are rebuilt into
    new groups.  A machine crash landing inside that window used to be
    able to double-release jobs or strand a rebuild slot; the run must
    instead complete with every run-level invariant intact.
    """

    def _run_with_midflight_crash(self, seed):
        from repro.check import InvariantChecker
        from repro.core.job import JobState
        from repro.core.runtime import HarmonyRuntime
        from repro.workloads.generator import WorkloadGenerator

        jobs = WorkloadGenerator(seed).base_workload(
            hyper_params_per_pair=1)
        runtime = HarmonyRuntime(24, jobs)
        master = runtime.master
        crashed: list[str] = []

        def migration_source():
            # Prefer the group a migrating job is pausing out of, then
            # a draining rebuild group, then any live group.
            for job_id in master._pending_moves:
                job = master.jobs.get(job_id)
                if job is not None and job.group_id in master.groups:
                    return job.group_id
            if master._rebuild is not None:
                for gid in master._rebuild.draining:
                    if gid in master.groups:
                        return gid
            return next(iter(master.groups), None)

        total = len(runtime.workload)

        def saboteur():
            # all_done is vacuously true before the first submission,
            # so also wait for the whole workload to arrive.
            while len(master.jobs) < total or not master.all_done:
                inflight = (master._rebuild is not None
                            or master._pending_moves)
                if inflight and not crashed:
                    target_id = migration_source()
                    if target_id is not None:
                        crashed.append(target_id)
                        master.inject_machine_failure(
                            master.groups[target_id].machine_ids[0])
                        return
                yield master.sim.timeout(5.0)

        master.sim.spawn(runtime._pacer(), name="pacer")
        master.sim.spawn(saboteur(), name="saboteur")
        for spec in runtime.workload:
            master.sim.call_at(spec.submit_time,
                               lambda s=spec: master.submit(s))
        master.sim.run()
        assert all(job.state is JobState.FINISHED
                   for job in master.jobs.values())
        assert InvariantChecker().check_runtime(runtime) == []
        return crashed

    def test_crash_during_rebuild_keeps_run_consistent(self):
        # At least one seed must actually catch an in-flight rebuild,
        # otherwise the interleaving was never exercised.
        observed = [bool(self._run_with_midflight_crash(seed))
                    for seed in (3, 5, 11)]
        assert any(observed)
