"""Tests for job grouping (assignJobs) and machine allocation."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.allocation import allocate_machines
from repro.core.grouping import _imbalance, assign_jobs
from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError


def metrics(job_id, cpu_work, t_net):
    return JobMetrics(job_id, cpu_work=cpu_work, t_net=t_net,
                      m_observed=1)


def balanced_pool(n):
    """Jobs whose CPU/net profiles alternate between heavy sides."""
    pool = []
    for index in range(n):
        if index % 2 == 0:
            pool.append(metrics(f"cpu{index}", 100.0 + index, 5.0))
        else:
            pool.append(metrics(f"net{index}", 20.0, 50.0 + index))
    return pool


class TestAssignJobs:
    def test_partitions_every_job_once(self):
        pool = balanced_pool(10)
        groups = assign_jobs(pool, n_groups=3, m_ref=4)
        placed = [job.job_id for group in groups for job in group]
        assert sorted(placed) == sorted(j.job_id for j in pool)

    def test_group_sizes_even(self):
        groups = assign_jobs(balanced_pool(10), n_groups=3, m_ref=4)
        sizes = sorted(len(g) for g in groups)
        assert sizes == [3, 3, 4]

    def test_single_group(self):
        pool = balanced_pool(4)
        groups = assign_jobs(pool, n_groups=1, m_ref=4)
        assert len(groups) == 1 and len(groups[0]) == 4

    def test_more_groups_than_jobs_raises(self):
        with pytest.raises(SchedulingError):
            assign_jobs(balanced_pool(2), n_groups=3, m_ref=1)

    def test_zero_groups_raises(self):
        with pytest.raises(SchedulingError):
            assign_jobs(balanced_pool(2), n_groups=0, m_ref=1)

    def test_mixing_reduces_imbalance_vs_naive_split(self):
        """The balanced fill + swaps beat a sorted chunk split."""
        pool = balanced_pool(12)
        groups = assign_jobs(pool, n_groups=3, m_ref=4)
        ordered = sorted(pool, key=lambda j: j.t_iteration_at(4),
                         reverse=True)
        naive = [ordered[0:4], ordered[4:8], ordered[8:12]]
        smart_cost = sum(abs(_imbalance(g, 4)) for g in groups)
        naive_cost = sum(abs(_imbalance(g, 4)) for g in naive)
        assert smart_cost <= naive_cost

    def test_similar_iteration_times_kept_together(self):
        """Two long jobs and six short ones: the long pair should land
        in the same group (prevents Fig. 8b's job-bound case)."""
        pool = ([metrics(f"long{i}", 500.0, 100.0) for i in range(2)]
                + [metrics(f"short{i}", 10.0, 2.0) for i in range(6)])
        groups = assign_jobs(pool, n_groups=4, m_ref=4)
        homes = {job.job_id: index for index, group in enumerate(groups)
                 for job in group}
        assert homes["long0"] == homes["long1"]

    @settings(max_examples=30, deadline=None)
    @given(n_jobs=st.integers(2, 16), n_groups=st.integers(1, 4),
           seed=st.integers(0, 100))
    def test_partition_invariants(self, n_jobs, n_groups, seed):
        import numpy as np
        rng = np.random.default_rng(seed)
        n_groups = min(n_groups, n_jobs)
        pool = [metrics(f"j{i}", float(rng.uniform(1, 200)),
                        float(rng.uniform(1, 200)))
                for i in range(n_jobs)]
        groups = assign_jobs(pool, n_groups, m_ref=4)
        assert len(groups) == n_groups
        assert all(groups)
        placed = sorted(j.job_id for g in groups for j in g)
        assert placed == sorted(j.job_id for j in pool)


class TestAllocateMachines:
    def test_every_group_gets_at_least_one(self):
        groups = [[metrics("a", 1.0, 100.0)],
                  [metrics("b", 1.0, 100.0)]]
        allocation = allocate_machines(groups, total_machines=10)
        assert all(m >= 1 for m in allocation)

    def test_cpu_bound_group_attracts_machines(self):
        cpu_heavy = [metrics("cpu", 1000.0, 1.0)]
        net_heavy = [metrics("net", 1.0, 1000.0)]
        allocation = allocate_machines([cpu_heavy, net_heavy],
                                       total_machines=20)
        assert allocation[0] > allocation[1]

    def test_stops_when_nothing_cpu_bound(self):
        """Network-bound groups leave spare machines unallocated."""
        groups = [[metrics("a", 1.0, 100.0)]]
        allocation = allocate_machines(groups, total_machines=50)
        assert allocation[0] < 50

    def test_balances_toward_equal_pressure(self):
        groups = [[metrics("a", 400.0, 10.0)],
                  [metrics("b", 400.0, 10.0)]]
        allocation = allocate_machines(groups, total_machines=21)
        assert abs(allocation[0] - allocation[1]) <= 1

    def test_memory_floor_is_respected(self):
        groups = [[metrics("a", 1.0, 100.0)]]
        allocation = allocate_machines(groups, total_machines=10,
                                       memory_floor=lambda ids: 4)
        assert allocation[0] >= 4

    def test_infeasible_floors_return_none(self):
        groups = [[metrics("a", 1.0, 1.0)], [metrics("b", 1.0, 1.0)]]
        assert allocate_machines(groups, total_machines=5,
                                 memory_floor=lambda ids: 3) is None

    def test_never_exceeds_total(self):
        groups = [[metrics(f"g{i}", 500.0, 1.0)] for i in range(3)]
        allocation = allocate_machines(groups, total_machines=10)
        assert sum(allocation) <= 10

    def test_empty_groups_list(self):
        assert allocate_machines([], total_machines=5) == []

    def test_empty_group_raises(self):
        with pytest.raises(SchedulingError):
            allocate_machines([[]], total_machines=5)

    def test_bad_total_raises(self):
        with pytest.raises(SchedulingError):
            allocate_machines([[metrics("a", 1, 1)]], total_machines=0)

    @settings(max_examples=30, deadline=None)
    @given(n_groups=st.integers(1, 5), total=st.integers(5, 60),
           seed=st.integers(0, 50))
    def test_allocation_invariants(self, n_groups, total, seed):
        import numpy as np
        rng = np.random.default_rng(seed)
        groups = [[metrics(f"g{i}j{j}", float(rng.uniform(1, 500)),
                           float(rng.uniform(1, 100)))
                   for j in range(rng.integers(1, 4))]
                  for i in range(n_groups)]
        allocation = allocate_machines(groups, total)
        assert allocation is not None
        assert len(allocation) == n_groups
        assert all(m >= 1 for m in allocation)
        assert sum(allocation) <= total
