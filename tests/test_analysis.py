"""Tests for harmonylint (repro.analysis): each rule family on
small fixtures (positive flagged / negative clean), suppression
comments, the expiring baseline, the CLI, and self-application to
this repository's own tree."""

import ast
import json
import os
import shutil
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import AnalysisConfig, Analyzer, REGISTRY
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    TODAY_ENV,
    snippet_hash,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.findings import FAMILIES
from repro.analysis.visitors import ImportMap, module_name

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint(tmp_path, files, select=(), baseline_path=None):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and run
    the analyzer over the whole tree."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    config = AnalysisConfig(paths=["."], select=set(select),
                            baseline_path=baseline_path,
                            root=str(tmp_path))
    return Analyzer(config).run()


def rule_ids(report):
    return {finding.rule_id for finding in report.findings}


class TestDetFamily:
    def test_wall_clock_flagged_in_core(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()
            """})
        assert "DET001" in rule_ids(report)

    def test_wall_clock_alias_resolved(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            from time import perf_counter as pc

            def now():
                return pc()
            """})
        assert "DET001" in rule_ids(report)

    def test_trace_and_benchmarks_exempt(self, tmp_path):
        report = lint(tmp_path, {
            "src/repro/trace/x.py": "import time\nt = time.time()\n",
            "benchmarks/bench_x.py": "import time\nt = time.time()\n"})
        assert "DET001" not in rule_ids(report)

    def test_global_random_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import random

            def pick(items):
                return random.choice(items)
            """})
        assert "DET002" in rule_ids(report)

    def test_seeded_random_instance_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import random

            def make(seed):
                return random.Random(seed)
            """})
        assert "DET002" not in rule_ids(report)

    def test_legacy_numpy_random_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """})
        assert "DET003" in rule_ids(report)

    def test_default_rng_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import numpy as np

            def noise(n, seed):
                return np.random.default_rng(seed).random(n)
            """})
        assert "DET003" not in rule_ids(report)

    def test_set_order_escape_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def order(a, b):
                pending = {a, b}
                out = []
                for item in pending:
                    out.append(item)
                return out
            """})
        assert "DET004" in rule_ids(report)

    def test_sorted_iteration_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def order(a, b):
                pending = {a, b}
                out = []
                for item in sorted(pending):
                    out.append(item)
                return out
            """})
        assert "DET004" not in rule_ids(report)

    def test_identity_sort_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def order(groups):
                return sorted(groups, key=id)
            """})
        assert "DET005" in rule_ids(report)

    def test_float_equality_on_score_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def same(score, ref_score):
                return score == ref_score
            """})
        assert "DET006" in rule_ids(report)

    def test_is_sorted_idiom_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def is_sorted(times):
                return times == sorted(times)
            """})
        assert "DET006" not in rule_ids(report)

    def test_entropy_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import uuid

            def fresh_id():
                return uuid.uuid4().hex
            """})
        assert "DET007" in rule_ids(report)


SIM_HEADER = "from repro.sim import Simulator\n"


class TestSimFamily:
    def test_sleep_in_sim_module_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
import time

def wait():
    time.sleep(1)
"""})
        assert "SIM001" in rule_ids(report)

    def test_sleep_without_sim_import_clean(self, tmp_path):
        """Thread-based runtimes (no repro.sim import) may sleep."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def wait():
                time.sleep(1)
            """})
        assert "SIM001" not in rule_ids(report)

    def test_open_inside_sim_process_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
def process(sim):
    with open('x.txt') as fh:
        fh.read()
    yield sim.timeout(1)
"""})
        assert "SIM001" in rule_ids(report)

    def test_config_mutation_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def tweak(config):
                config.alpha = 2.0
            """})
        assert "SIM002" in rule_ids(report)

    def test_config_construction_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            class Runtime:
                def __init__(self, config):
                    self.config = config
            """})
        assert "SIM002" not in rule_ids(report)

    def test_sim_reentry_from_callback_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
class Master:
    def on_job_finished(self, job):
        self.sim.run()
"""})
        assert "SIM003" in rule_ids(report)

    def test_sim_run_at_driver_level_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
def drive(sim):
    sim.run()
"""})
        assert "SIM003" not in rule_ids(report)


class TestTrcFamily:
    def test_unbalanced_span_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def work(tracer):
                span = tracer.begin(0, "COMP")
                do_work()
            """})
        assert "TRC001" in rule_ids(report)

    def test_span_closed_in_finally_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def work(tracer):
                span = tracer.begin(0, "COMP")
                try:
                    return do_work()
                finally:
                    tracer.end(span)
            """})
        assert "TRC001" not in rule_ids(report)

    def test_undeclared_counter_name_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def bump(tracer):
                tracer.counter("totally.bogus.name", 1)
            """})
        assert "TRC002" in rule_ids(report)

    def test_declared_counter_name_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def bump(tracer):
                tracer.counter("faults.detected", 1)
            """})
        assert "TRC002" not in rule_ids(report)

    def test_undeclared_span_name_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def work(tracer):
                span = tracer.begin(0, "MYSTERY-PHASE")
                tracer.end(span)
            """})
        assert "TRC003" in rule_ids(report)


CACHE_PROFILER = """
from dataclasses import dataclass

@dataclass
class JobMetrics:
    job_id: str
    cpu_work: float
    t_net: float

    def t_cpu_at(self, m):
        return self.cpu_work / m
"""

CACHE_FINGERPRINT_PARTIAL = """
def _prefix_fingerprints(jobs):
    return [hash((job.job_id, job.cpu_work)) for job in jobs]
"""

CACHE_FINGERPRINT_FULL = """
def _prefix_fingerprints(jobs):
    return [hash((job.job_id, job.cpu_work, job.t_net))
            for job in jobs]
"""


class TestCacheFamily:
    def test_uncovered_field_read_flagged(self, tmp_path):
        report = lint(tmp_path, {
            "src/repro/core/profiler.py": CACHE_PROFILER,
            "src/repro/core/scheduler.py": CACHE_FINGERPRINT_PARTIAL,
            "src/repro/core/grouping.py":
                "def score(m):\n    return m.t_net\n"})
        assert "CACHE001" in rule_ids(report)
        finding = [f for f in report.findings
                   if f.rule_id == "CACHE001"][0]
        assert "t_net" in finding.message

    def test_covered_reads_clean(self, tmp_path):
        report = lint(tmp_path, {
            "src/repro/core/profiler.py": CACHE_PROFILER,
            "src/repro/core/scheduler.py": CACHE_FINGERPRINT_FULL,
            "src/repro/core/grouping.py":
                "def score(m):\n    return m.t_net + m.t_cpu_at(4)\n"})
        assert "CACHE001" not in rule_ids(report)

    def test_derived_method_resolved_to_fields(self, tmp_path):
        """Reading t_cpu_at() counts as reading cpu_work."""
        report = lint(tmp_path, {
            "src/repro/core/profiler.py": CACHE_PROFILER,
            "src/repro/core/scheduler.py": """
def _prefix_fingerprints(jobs):
    return [hash((job.job_id, job.t_net)) for job in jobs]
""",
            "src/repro/core/grouping.py":
                "def score(m):\n    return m.t_cpu_at(4)\n"})
        assert "CACHE001" in rule_ids(report)


class TestSuppression:
    def test_allow_on_same_line(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()  # harmony: allow[DET001] deliberate
            """})
        assert "DET001" not in rule_ids(report)
        assert any(f.rule_id == "DET001" for f in report.suppressed)

    def test_allow_on_line_above(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                # harmony: allow[DET001] deliberate
                return time.time()
            """})
        assert "DET001" not in rule_ids(report)

    def test_allow_is_rule_specific(self, tmp_path):
        """An allow for one rule does not mask another."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()  # harmony: allow[SIM001] wrong id
            """})
        assert "DET001" in rule_ids(report)

    def test_allow_list_of_rules(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()  # harmony: allow[DET001,DET006] x
            """})
        assert "DET001" not in rule_ids(report)


class TestBaseline:
    def _write_baseline(self, tmp_path, expires):
        source = "import time\nt = time.time()\n"
        (tmp_path / "src").mkdir(parents=True, exist_ok=True)
        (tmp_path / "src" / "x.py").write_text(source)
        baseline = Baseline([BaselineEntry(
            rule="DET001", path="src/x.py",
            snippet_hash=snippet_hash("t = time.time()"),
            reason="pre-existing", expires=expires)])
        baseline.save(str(tmp_path / "lint-baseline.json"))

    def _run(self, tmp_path):
        config = AnalysisConfig(paths=["."], select={"DET001"},
                                baseline_path="lint-baseline.json",
                                root=str(tmp_path))
        return Analyzer(config).run()

    def test_live_entry_masks_finding(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TODAY_ENV, "2026-01-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        report = self._run(tmp_path)
        assert not report.findings
        assert len(report.baselined) == 1
        assert report.ok

    def test_expired_entry_resurfaces_finding(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv(TODAY_ENV, "2027-06-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        report = self._run(tmp_path)
        assert len(report.findings) == 1
        assert report.findings[0].baseline_expired
        assert not report.ok

    def test_baseline_keyed_by_snippet_not_line(self, tmp_path,
                                                monkeypatch):
        """Edits above the finding do not unmask it."""
        monkeypatch.setenv(TODAY_ENV, "2026-01-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        moved = "import time\n\n\n# a comment\nt = time.time()\n"
        (tmp_path / "src" / "x.py").write_text(moved)
        report = self._run(tmp_path)
        assert not report.findings
        assert len(report.baselined) == 1

    def test_stale_entry_reported(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TODAY_ENV, "2026-01-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        (tmp_path / "src" / "x.py").write_text("t = 0\n")
        report = self._run(tmp_path)
        assert not report.findings
        assert report.stale_baseline_entries


CONC_MIXED_DISCIPLINE = textwrap.dedent("""
    import threading


    class Store:
        def __init__(self):
            self._lock = threading.Lock()
            self._items = {}

        def put(self, key, value):
            with self._lock:
                self._items[key] = value

        def drop(self, key):
            self._items.pop(key, None)
    """)

CONC_POOL_MUTATION = textwrap.dedent("""
    from concurrent.futures import ThreadPoolExecutor


    class Fan:
        def __init__(self):
            self.results = []

        def work(self, item):
            self.results.append(item)

        def run(self, items):
            with ThreadPoolExecutor(max_workers=4) as pool:
                for item in items:
                    pool.submit(self.work, item)
    """)

CONC_LOCK_CYCLE = textwrap.dedent("""
    import threading


    class Pipeline:
        def __init__(self):
            self._head = threading.Lock()
            self._tail = threading.Lock()

        def forward(self):
            with self._head:
                with self._tail:
                    pass

        def backward(self):
            with self._tail:
                with self._head:
                    pass
    """)


#: Fixtures that must trip each registered rule: the coverage floor
#: the issue asks for (>= 12 distinct rule ids across all families).
_POSITIVE_FIXTURES = {
    "DET001": {"src/repro/core/x.py":
               "import time\nt = time.time()\n"},
    "DET002": {"src/repro/core/x.py":
               "import random\nv = random.random()\n"},
    "DET003": {"src/repro/core/x.py":
               "import numpy as np\nv = np.random.rand(3)\n"},
    "DET004": {"src/repro/core/x.py": textwrap.dedent("""
        def f(a, b):
            out = []
            for item in {a, b}:
                out.append(item)
            return out
        """)},
    "DET005": {"src/repro/core/x.py":
               "def f(xs):\n    return sorted(xs, key=id)\n"},
    "DET006": {"src/repro/core/x.py":
               "def f(score, other_score):\n"
               "    return score == other_score\n"},
    "DET007": {"src/repro/core/x.py":
               "import uuid\nv = uuid.uuid4()\n"},
    "SIM001": {"src/repro/core/x.py":
               SIM_HEADER + "import time\ntime.sleep(1)\n"},
    "SIM002": {"src/repro/core/x.py":
               "def f(config):\n    config.x = 1\n"},
    "SIM003": {"src/repro/core/x.py": SIM_HEADER + textwrap.dedent("""
        class M:
            def on_done(self):
                self.sim.run()
        """)},
    "TRC001": {"src/repro/core/x.py": textwrap.dedent("""
        def f(tracer):
            span = tracer.begin(0, "COMP")
        """)},
    "TRC002": {"src/repro/core/x.py":
               "def f(t):\n    t.counter('nope.nope', 1)\n"},
    "TRC003": {"src/repro/core/x.py": textwrap.dedent("""
        def f(t):
            span = t.begin(0, "NOPE")
            t.end(span)
        """)},
    "CACHE001": {
        "src/repro/core/profiler.py": CACHE_PROFILER,
        "src/repro/core/scheduler.py": CACHE_FINGERPRINT_PARTIAL,
        "src/repro/core/grouping.py":
            "def score(m):\n    return m.t_net\n"},
    "CONC001": {"src/repro/core/x.py": CONC_MIXED_DISCIPLINE},
    "CONC002": {"src/repro/core/x.py": CONC_POOL_MUTATION},
    "CONC003": {"src/repro/core/x.py": CONC_LOCK_CYCLE},
    "CONC004": {"src/repro/core/x.py":
                SIM_HEADER + "import threading\n"
                             "lock = threading.Lock()\n"},
}


class TestRuleCoverage:
    def test_registry_spans_all_families(self):
        families = {REGISTRY[rule_id].rule.family
                    for rule_id in REGISTRY}
        assert families == set(FAMILIES)
        assert len(REGISTRY) >= 12

    def test_every_fixture_has_a_rule(self):
        assert set(_POSITIVE_FIXTURES) == set(REGISTRY)

    @pytest.mark.parametrize("rule_id", sorted(_POSITIVE_FIXTURES))
    def test_rule_fires_on_fixture(self, rule_id, tmp_path):
        report = lint(tmp_path, _POSITIVE_FIXTURES[rule_id])
        assert rule_id in rule_ids(report)

    def test_twelve_distinct_ids_across_all_families(self, tmp_path):
        seen = set()
        for index, (_rule_id, files) in enumerate(
                sorted(_POSITIVE_FIXTURES.items())):
            case = tmp_path / f"case{index}"
            case.mkdir()
            seen |= rule_ids(lint(case, files))
        assert len(seen) >= 12
        assert {rule_id.rstrip("0123456789")
                for rule_id in seen} == set(FAMILIES)


class TestCli:
    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\nt = time.time()\n")
        code = lint_main(["--root", str(tmp_path), "--no-baseline"])
        assert code == 1
        assert "DET001" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text("x = 1\n")
        assert lint_main(["--root", str(tmp_path)]) == 0

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\nt = time.time()\n")
        code = lint_main(["--root", str(tmp_path), "--format", "json",
                          "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["findings"][0]["rule"] == "DET001"
        assert payload["ok"] is False

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path),
                          "--select", "NOPE999"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "SIM001", "TRC001", "CACHE001"):
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\nt = time.time()\n")
        assert lint_main(["--root", str(tmp_path),
                          "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        assert lint_main(["--root", str(tmp_path)]) == 0

    def test_output_file_written(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text("x = 1\n")
        target = tmp_path / "report.json"
        lint_main(["--root", str(tmp_path), "--format", "json",
                   "--output", str(target)])
        assert json.loads(target.read_text())["ok"] is True


class TestSelfApplication:
    def test_own_tree_is_clean(self):
        """The linter applied to this repository: every finding is
        fixed, suppressed inline, or baselined with a justification."""
        config = AnalysisConfig(paths=["src", "benchmarks"],
                                baseline_path="lint-baseline.json",
                                root=REPO_ROOT)
        report = Analyzer(config).run()
        assert report.ok, "\n".join(
            finding.render() for finding in report.findings)
        assert report.n_files > 100

    def test_injected_wall_clock_fails_ci_style(self, tmp_path):
        """The acceptance scenario: an un-suppressed time.time() in
        core/ makes ``python -m repro lint --format=json`` exit 1."""
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "freshly_broken.py").write_text(
            "import time\n\n\ndef now():\n    return time.time()\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--format=json",
             "--root", str(tmp_path)],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        flagged = {f["rule"] for f in payload["findings"]}
        assert "DET001" in flagged


class TestConcFamily:
    def test_mixed_discipline_flagged(self, tmp_path):
        report = lint(tmp_path,
                      {"src/repro/core/x.py": CONC_MIXED_DISCIPLINE},
                      select=["CONC001"])
        assert "CONC001" in rule_ids(report)
        assert "Store._items" in report.findings[0].message
        assert "Store._lock" in report.findings[0].message

    def test_unguarded_read_flagged(self, tmp_path):
        """The PSServer pattern: a read outside the lock of a field
        that is mutated under it."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Registry:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._seen = {}

                def mark(self, key):
                    with self._lock:
                        self._seen[key] = True

                def peek(self, key):
                    return key in self._seen
            """}, select=["CONC001"])
        assert "CONC001" in rule_ids(report)
        assert "read" in report.findings[0].message

    def test_consistent_discipline_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def drop(self, key):
                    with self._lock:
                        self._items.pop(key, None)
            """}, select=["CONC001"])
        assert not report.findings

    def test_try_finally_acquire_counts_as_guarded(self, tmp_path):
        """Manual acquire()/release() in try/finally is the same
        discipline as ``with`` — no finding."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def drop(self, key):
                    self._lock.acquire()
                    try:
                        self._items.pop(key, None)
                    finally:
                        self._lock.release()
            """}, select=["CONC001"])
        assert not report.findings

    def test_release_before_write_flagged(self, tmp_path):
        """A write *after* the finally-release is outside the lock."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Store:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._items = {}

                def put(self, key, value):
                    with self._lock:
                        self._items[key] = value

                def drop(self, key):
                    self._lock.acquire()
                    try:
                        pass
                    finally:
                        self._lock.release()
                    self._items.pop(key, None)
            """}, select=["CONC001"])
        assert "CONC001" in rule_ids(report)

    def test_nested_with_counts_as_guarded(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Pair:
                def __init__(self):
                    self._a = threading.Lock()
                    self._b = threading.Lock()
                    self._x = 0

                def bump(self):
                    with self._a:
                        with self._b:
                            self._x += 1

                def read(self):
                    with self._b:
                        return self._x
            """}, select=["CONC001", "CONC003"])
        assert not report.findings

    def test_private_helper_inherits_lock_context(self, tmp_path):
        """A private method only ever called under the lock is
        guarded by propagation, not flagged."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._n = 0

                def bump(self):
                    with self._lock:
                        self._bump_locked()

                def _bump_locked(self):
                    self._n += 1
            """}, select=["CONC001"])
        assert not report.findings

    def test_pool_submit_unguarded_mutation_flagged(self, tmp_path):
        """The acceptance scenario: a ThreadPoolExecutor fan-out whose
        callable mutates shared state without a lock is detected."""
        report = lint(tmp_path,
                      {"src/repro/core/x.py": CONC_POOL_MUTATION},
                      select=["CONC002"])
        assert "CONC002" in rule_ids(report)
        assert "unsynchronized" in report.findings[0].message

    def test_thread_target_captured_mutation_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Launcher:
                def run(self):
                    errors = []

                    def worker():
                        errors.append(1)

                    thread = threading.Thread(target=worker)
                    thread.start()
                    return errors
            """}, select=["CONC002"])
        assert "CONC002" in rule_ids(report)
        assert "errors" in report.findings[0].message

    def test_thread_target_guarded_by_local_lock_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Launcher:
                def run(self):
                    lock = threading.Lock()
                    errors = []

                    def worker():
                        with lock:
                            errors.append(1)

                    thread = threading.Thread(target=worker)
                    thread.start()
                    return errors
            """}, select=["CONC002"])
        assert not report.findings

    def test_thread_local_state_clean(self, tmp_path):
        """Objects constructed inside the thread body are thread-local
        and need no synchronization."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Launcher:
                def run(self):
                    def worker():
                        scratch = []
                        scratch.append(1)
                        return scratch

                    thread = threading.Thread(target=worker)
                    thread.start()
            """}, select=["CONC002"])
        assert not report.findings

    def test_queue_is_threadsafe_by_contract(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import queue
            import threading


            class Launcher:
                def run(self):
                    results = queue.Queue()

                    def worker():
                        results.put(1)

                    thread = threading.Thread(target=worker)
                    thread.start()
                    return results
            """}, select=["CONC002"])
        assert not report.findings

    def test_pool_submit_guarded_method_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading
            from concurrent.futures import ThreadPoolExecutor


            class Fan:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.results = []

                def work(self, item):
                    with self._lock:
                        self.results.append(item)

                def run(self, items):
                    with ThreadPoolExecutor(max_workers=4) as pool:
                        for item in items:
                            pool.submit(self.work, item)
            """}, select=["CONC002"])
        assert not report.findings

    def test_lock_order_cycle_flagged(self, tmp_path):
        """The acceptance scenario: two methods acquiring the same
        pair of locks in opposite orders is a deliberate deadlock."""
        report = lint(tmp_path,
                      {"src/repro/core/x.py": CONC_LOCK_CYCLE},
                      select=["CONC003"])
        assert "CONC003" in rule_ids(report)
        assert "lock-order cycle" in report.findings[0].message

    def test_cross_file_lock_order_cycle_flagged(self, tmp_path):
        """The acquisition graph is global: a cycle spanning two
        classes in two files is still found."""
        report = lint(tmp_path, {
            "src/repro/core/a.py": """
                import threading

                first = threading.Lock()
                second = threading.Lock()


                def forward():
                    with first:
                        with second:
                            pass
                """,
            "src/repro/core/b.py": """
                from repro.core.a import first, second


                def backward():
                    with second:
                        with first:
                            pass
                """}, select=["CONC003"])
        assert "CONC003" in rule_ids(report)

    def test_consistent_lock_order_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import threading


            class Pipeline:
                def __init__(self):
                    self._head = threading.Lock()
                    self._tail = threading.Lock()

                def forward(self):
                    with self._head:
                        with self._tail:
                            pass

                def also_forward(self):
                    with self._head:
                        with self._tail:
                            pass
            """}, select=["CONC003"])
        assert not report.findings

    def test_threading_in_sim_module_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/sim/x.py":
                                 "import threading\n"
                                 "lock = threading.Lock()\n"},
                      select=["CONC004"])
        assert "CONC004" in rule_ids(report)

    def test_threading_outside_sim_clock_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/ps/x.py":
                                 "import threading\n"
                                 "lock = threading.Lock()\n"},
                      select=["CONC004"])
        assert not report.findings


class TestImportMap:
    def _imports(self, source, module=None, is_package=False):
        return ImportMap.of(ast.parse(textwrap.dedent(source)),
                            module=module, is_package=is_package)

    def _qualify(self, imports, expr):
        return imports.qualify(ast.parse(expr, mode="eval").body)

    def test_relative_import_in_module(self):
        imports = self._imports("from .cells import Cell\n",
                                module="repro.shard.scheduler")
        assert imports.aliases["Cell"] == "repro.shard.cells.Cell"

    def test_relative_import_in_package_init(self):
        """``from .cells import Cell`` inside ``repro/shard/__init__``
        resolves against the package itself, not its parent."""
        imports = self._imports("from .cells import Cell\n",
                                module="repro.shard", is_package=True)
        assert imports.aliases["Cell"] == "repro.shard.cells.Cell"

    def test_two_level_relative_import(self):
        imports = self._imports(
            "from ..core.profiler import Profiler\n",
            module="repro.shard.scheduler")
        assert imports.aliases["Profiler"] == \
            "repro.core.profiler.Profiler"

    def test_relative_import_beyond_root_unmapped(self):
        imports = self._imports("from ...nowhere import thing\n",
                                module="repro.shard")
        assert "thing" not in imports.aliases

    def test_relative_import_without_module_unmapped(self):
        imports = self._imports("from .cells import Cell\n")
        assert "Cell" not in imports.aliases

    def test_dotted_import_with_alias(self):
        imports = self._imports("import concurrent.futures as cf\n")
        assert self._qualify(imports, "cf.ThreadPoolExecutor") == \
            "concurrent.futures.ThreadPoolExecutor"

    def test_star_import_fallback(self):
        imports = self._imports("from numpy import *\n")
        assert self._qualify(imports, "array") == "numpy.array"

    def test_star_fallback_skips_builtins(self):
        imports = self._imports("from numpy import *\n")
        assert self._qualify(imports, "print") == "print"

    def test_two_star_imports_disable_fallback(self):
        """With two star modules the origin is ambiguous — the bare
        name stays bare rather than guessing."""
        imports = self._imports("from numpy import *\n"
                                "from math import *\n")
        assert self._qualify(imports, "array") == "array"

    def test_module_name_strips_src_and_init(self):
        assert module_name("src/repro/shard/scheduler.py") == \
            "repro.shard.scheduler"
        assert module_name("src/repro/shard/__init__.py") == \
            "repro.shard"


class TestChangedOnly:
    @staticmethod
    def _git(cwd, *args):
        subprocess.run(
            ["git", "-c", "user.email=lint@test",
             "-c", "user.name=lint", *args],
            cwd=cwd, check=True, capture_output=True)

    @pytest.fixture
    def repo(self, tmp_path):
        if shutil.which("git") is None:
            pytest.skip("git not available")
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "old.py").write_text(
            "import time\nt = time.time()\n")
        (tmp_path / "src" / "fresh.py").write_text("x = 1\n")
        self._git(tmp_path, "init", "-q")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-q", "-m", "seed")
        return tmp_path

    def test_only_changed_files_reported(self, repo, capsys):
        """A pre-existing finding in an untouched file stays out of a
        --changed-only run; one in the edited file is reported."""
        (repo / "src" / "fresh.py").write_text(
            "import time\nt = time.time()\n")
        code = lint_main(["--root", str(repo), "--changed-only",
                          "--no-baseline", "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        paths = {f["path"] for f in payload["findings"]}
        assert code == 1
        assert paths == {"src/fresh.py"}

    def test_no_changes_exits_zero(self, repo, capsys):
        assert lint_main(["--root", str(repo), "--changed-only",
                          "--no-baseline"]) == 0

    def test_unknown_base_exits_two(self, repo, capsys):
        assert lint_main(["--root", str(repo), "--changed-only",
                          "--base", "no-such-ref"]) == 2

    def test_outside_git_exits_two(self, tmp_path, capsys):
        if shutil.which("git") is None:
            pytest.skip("git not available")
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text("x = 1\n")
        assert lint_main(["--root", str(tmp_path),
                          "--changed-only"]) == 2


class TestSarifExport:
    def test_sarif_document_structure(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\nt = time.time()\n")
        code = lint_main(["--root", str(tmp_path), "--format", "sarif",
                          "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        run = payload["runs"][0]
        assert run["tool"]["driver"]["name"] == "harmonylint"
        result = run["results"][0]
        assert result["ruleId"] == "DET001"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "src/x.py"
        assert location["region"]["startLine"] == 2
        assert any(rule["id"] == "DET001"
                   for rule in run["tool"]["driver"]["rules"])

    def test_sarif_excludes_suppressed(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\n"
            "t = time.time()  # harmony: allow[DET001] fixture\n")
        code = lint_main(["--root", str(tmp_path), "--format", "sarif",
                          "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        run = payload["runs"][0]
        assert run["results"] == []
        assert run["properties"]["suppressed"] == 1
