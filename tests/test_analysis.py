"""Tests for harmonylint (repro.analysis): each rule family on
small fixtures (positive flagged / negative clean), suppression
comments, the expiring baseline, the CLI, and self-application to
this repository's own tree."""

import json
import os
import subprocess
import sys
import textwrap

import pytest

from repro.analysis import AnalysisConfig, Analyzer, REGISTRY
from repro.analysis.baseline import (
    Baseline,
    BaselineEntry,
    TODAY_ENV,
    snippet_hash,
)
from repro.analysis.cli import main as lint_main
from repro.analysis.findings import FAMILIES

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def lint(tmp_path, files, select=(), baseline_path=None):
    """Write ``files`` (relpath -> source) under ``tmp_path`` and run
    the analyzer over the whole tree."""
    for relpath, source in files.items():
        target = tmp_path / relpath
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(source))
    config = AnalysisConfig(paths=["."], select=set(select),
                            baseline_path=baseline_path,
                            root=str(tmp_path))
    return Analyzer(config).run()


def rule_ids(report):
    return {finding.rule_id for finding in report.findings}


class TestDetFamily:
    def test_wall_clock_flagged_in_core(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()
            """})
        assert "DET001" in rule_ids(report)

    def test_wall_clock_alias_resolved(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            from time import perf_counter as pc

            def now():
                return pc()
            """})
        assert "DET001" in rule_ids(report)

    def test_trace_and_benchmarks_exempt(self, tmp_path):
        report = lint(tmp_path, {
            "src/repro/trace/x.py": "import time\nt = time.time()\n",
            "benchmarks/bench_x.py": "import time\nt = time.time()\n"})
        assert "DET001" not in rule_ids(report)

    def test_global_random_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import random

            def pick(items):
                return random.choice(items)
            """})
        assert "DET002" in rule_ids(report)

    def test_seeded_random_instance_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import random

            def make(seed):
                return random.Random(seed)
            """})
        assert "DET002" not in rule_ids(report)

    def test_legacy_numpy_random_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import numpy as np

            def noise(n):
                return np.random.rand(n)
            """})
        assert "DET003" in rule_ids(report)

    def test_default_rng_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import numpy as np

            def noise(n, seed):
                return np.random.default_rng(seed).random(n)
            """})
        assert "DET003" not in rule_ids(report)

    def test_set_order_escape_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def order(a, b):
                pending = {a, b}
                out = []
                for item in pending:
                    out.append(item)
                return out
            """})
        assert "DET004" in rule_ids(report)

    def test_sorted_iteration_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def order(a, b):
                pending = {a, b}
                out = []
                for item in sorted(pending):
                    out.append(item)
                return out
            """})
        assert "DET004" not in rule_ids(report)

    def test_identity_sort_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def order(groups):
                return sorted(groups, key=id)
            """})
        assert "DET005" in rule_ids(report)

    def test_float_equality_on_score_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def same(score, ref_score):
                return score == ref_score
            """})
        assert "DET006" in rule_ids(report)

    def test_is_sorted_idiom_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def is_sorted(times):
                return times == sorted(times)
            """})
        assert "DET006" not in rule_ids(report)

    def test_entropy_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import uuid

            def fresh_id():
                return uuid.uuid4().hex
            """})
        assert "DET007" in rule_ids(report)


SIM_HEADER = "from repro.sim import Simulator\n"


class TestSimFamily:
    def test_sleep_in_sim_module_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
import time

def wait():
    time.sleep(1)
"""})
        assert "SIM001" in rule_ids(report)

    def test_sleep_without_sim_import_clean(self, tmp_path):
        """Thread-based runtimes (no repro.sim import) may sleep."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def wait():
                time.sleep(1)
            """})
        assert "SIM001" not in rule_ids(report)

    def test_open_inside_sim_process_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
def process(sim):
    with open('x.txt') as fh:
        fh.read()
    yield sim.timeout(1)
"""})
        assert "SIM001" in rule_ids(report)

    def test_config_mutation_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def tweak(config):
                config.alpha = 2.0
            """})
        assert "SIM002" in rule_ids(report)

    def test_config_construction_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            class Runtime:
                def __init__(self, config):
                    self.config = config
            """})
        assert "SIM002" not in rule_ids(report)

    def test_sim_reentry_from_callback_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
class Master:
    def on_job_finished(self, job):
        self.sim.run()
"""})
        assert "SIM003" in rule_ids(report)

    def test_sim_run_at_driver_level_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": SIM_HEADER + """
def drive(sim):
    sim.run()
"""})
        assert "SIM003" not in rule_ids(report)


class TestTrcFamily:
    def test_unbalanced_span_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def work(tracer):
                span = tracer.begin(0, "COMP")
                do_work()
            """})
        assert "TRC001" in rule_ids(report)

    def test_span_closed_in_finally_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def work(tracer):
                span = tracer.begin(0, "COMP")
                try:
                    return do_work()
                finally:
                    tracer.end(span)
            """})
        assert "TRC001" not in rule_ids(report)

    def test_undeclared_counter_name_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def bump(tracer):
                tracer.counter("totally.bogus.name", 1)
            """})
        assert "TRC002" in rule_ids(report)

    def test_declared_counter_name_clean(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def bump(tracer):
                tracer.counter("faults.detected", 1)
            """})
        assert "TRC002" not in rule_ids(report)

    def test_undeclared_span_name_flagged(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            def work(tracer):
                span = tracer.begin(0, "MYSTERY-PHASE")
                tracer.end(span)
            """})
        assert "TRC003" in rule_ids(report)


CACHE_PROFILER = """
from dataclasses import dataclass

@dataclass
class JobMetrics:
    job_id: str
    cpu_work: float
    t_net: float

    def t_cpu_at(self, m):
        return self.cpu_work / m
"""

CACHE_FINGERPRINT_PARTIAL = """
def _prefix_fingerprints(jobs):
    return [hash((job.job_id, job.cpu_work)) for job in jobs]
"""

CACHE_FINGERPRINT_FULL = """
def _prefix_fingerprints(jobs):
    return [hash((job.job_id, job.cpu_work, job.t_net))
            for job in jobs]
"""


class TestCacheFamily:
    def test_uncovered_field_read_flagged(self, tmp_path):
        report = lint(tmp_path, {
            "src/repro/core/profiler.py": CACHE_PROFILER,
            "src/repro/core/scheduler.py": CACHE_FINGERPRINT_PARTIAL,
            "src/repro/core/grouping.py":
                "def score(m):\n    return m.t_net\n"})
        assert "CACHE001" in rule_ids(report)
        finding = [f for f in report.findings
                   if f.rule_id == "CACHE001"][0]
        assert "t_net" in finding.message

    def test_covered_reads_clean(self, tmp_path):
        report = lint(tmp_path, {
            "src/repro/core/profiler.py": CACHE_PROFILER,
            "src/repro/core/scheduler.py": CACHE_FINGERPRINT_FULL,
            "src/repro/core/grouping.py":
                "def score(m):\n    return m.t_net + m.t_cpu_at(4)\n"})
        assert "CACHE001" not in rule_ids(report)

    def test_derived_method_resolved_to_fields(self, tmp_path):
        """Reading t_cpu_at() counts as reading cpu_work."""
        report = lint(tmp_path, {
            "src/repro/core/profiler.py": CACHE_PROFILER,
            "src/repro/core/scheduler.py": """
def _prefix_fingerprints(jobs):
    return [hash((job.job_id, job.t_net)) for job in jobs]
""",
            "src/repro/core/grouping.py":
                "def score(m):\n    return m.t_cpu_at(4)\n"})
        assert "CACHE001" in rule_ids(report)


class TestSuppression:
    def test_allow_on_same_line(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()  # harmony: allow[DET001] deliberate
            """})
        assert "DET001" not in rule_ids(report)
        assert any(f.rule_id == "DET001" for f in report.suppressed)

    def test_allow_on_line_above(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                # harmony: allow[DET001] deliberate
                return time.time()
            """})
        assert "DET001" not in rule_ids(report)

    def test_allow_is_rule_specific(self, tmp_path):
        """An allow for one rule does not mask another."""
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()  # harmony: allow[SIM001] wrong id
            """})
        assert "DET001" in rule_ids(report)

    def test_allow_list_of_rules(self, tmp_path):
        report = lint(tmp_path, {"src/repro/core/x.py": """
            import time

            def now():
                return time.time()  # harmony: allow[DET001,DET006] x
            """})
        assert "DET001" not in rule_ids(report)


class TestBaseline:
    def _write_baseline(self, tmp_path, expires):
        source = "import time\nt = time.time()\n"
        (tmp_path / "src").mkdir(parents=True, exist_ok=True)
        (tmp_path / "src" / "x.py").write_text(source)
        baseline = Baseline([BaselineEntry(
            rule="DET001", path="src/x.py",
            snippet_hash=snippet_hash("t = time.time()"),
            reason="pre-existing", expires=expires)])
        baseline.save(str(tmp_path / "lint-baseline.json"))

    def _run(self, tmp_path):
        config = AnalysisConfig(paths=["."], select={"DET001"},
                                baseline_path="lint-baseline.json",
                                root=str(tmp_path))
        return Analyzer(config).run()

    def test_live_entry_masks_finding(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TODAY_ENV, "2026-01-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        report = self._run(tmp_path)
        assert not report.findings
        assert len(report.baselined) == 1
        assert report.ok

    def test_expired_entry_resurfaces_finding(self, tmp_path,
                                              monkeypatch):
        monkeypatch.setenv(TODAY_ENV, "2027-06-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        report = self._run(tmp_path)
        assert len(report.findings) == 1
        assert report.findings[0].baseline_expired
        assert not report.ok

    def test_baseline_keyed_by_snippet_not_line(self, tmp_path,
                                                monkeypatch):
        """Edits above the finding do not unmask it."""
        monkeypatch.setenv(TODAY_ENV, "2026-01-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        moved = "import time\n\n\n# a comment\nt = time.time()\n"
        (tmp_path / "src" / "x.py").write_text(moved)
        report = self._run(tmp_path)
        assert not report.findings
        assert len(report.baselined) == 1

    def test_stale_entry_reported(self, tmp_path, monkeypatch):
        monkeypatch.setenv(TODAY_ENV, "2026-01-01")
        self._write_baseline(tmp_path, expires="2026-12-31")
        (tmp_path / "src" / "x.py").write_text("t = 0\n")
        report = self._run(tmp_path)
        assert not report.findings
        assert report.stale_baseline_entries


#: Fixtures that must trip each registered rule: the coverage floor
#: the issue asks for (>= 12 distinct rule ids across 4 families).
_POSITIVE_FIXTURES = {
    "DET001": {"src/repro/core/x.py":
               "import time\nt = time.time()\n"},
    "DET002": {"src/repro/core/x.py":
               "import random\nv = random.random()\n"},
    "DET003": {"src/repro/core/x.py":
               "import numpy as np\nv = np.random.rand(3)\n"},
    "DET004": {"src/repro/core/x.py": textwrap.dedent("""
        def f(a, b):
            out = []
            for item in {a, b}:
                out.append(item)
            return out
        """)},
    "DET005": {"src/repro/core/x.py":
               "def f(xs):\n    return sorted(xs, key=id)\n"},
    "DET006": {"src/repro/core/x.py":
               "def f(score, other_score):\n"
               "    return score == other_score\n"},
    "DET007": {"src/repro/core/x.py":
               "import uuid\nv = uuid.uuid4()\n"},
    "SIM001": {"src/repro/core/x.py":
               SIM_HEADER + "import time\ntime.sleep(1)\n"},
    "SIM002": {"src/repro/core/x.py":
               "def f(config):\n    config.x = 1\n"},
    "SIM003": {"src/repro/core/x.py": SIM_HEADER + textwrap.dedent("""
        class M:
            def on_done(self):
                self.sim.run()
        """)},
    "TRC001": {"src/repro/core/x.py": textwrap.dedent("""
        def f(tracer):
            span = tracer.begin(0, "COMP")
        """)},
    "TRC002": {"src/repro/core/x.py":
               "def f(t):\n    t.counter('nope.nope', 1)\n"},
    "TRC003": {"src/repro/core/x.py": textwrap.dedent("""
        def f(t):
            span = t.begin(0, "NOPE")
            t.end(span)
        """)},
    "CACHE001": {
        "src/repro/core/profiler.py": CACHE_PROFILER,
        "src/repro/core/scheduler.py": CACHE_FINGERPRINT_PARTIAL,
        "src/repro/core/grouping.py":
            "def score(m):\n    return m.t_net\n"},
}


class TestRuleCoverage:
    def test_registry_spans_all_families(self):
        families = {REGISTRY[rule_id].rule.family
                    for rule_id in REGISTRY}
        assert families == set(FAMILIES)
        assert len(REGISTRY) >= 12

    def test_every_fixture_has_a_rule(self):
        assert set(_POSITIVE_FIXTURES) == set(REGISTRY)

    @pytest.mark.parametrize("rule_id", sorted(_POSITIVE_FIXTURES))
    def test_rule_fires_on_fixture(self, rule_id, tmp_path):
        report = lint(tmp_path, _POSITIVE_FIXTURES[rule_id])
        assert rule_id in rule_ids(report)

    def test_twelve_distinct_ids_across_four_families(self, tmp_path):
        seen = set()
        for index, (_rule_id, files) in enumerate(
                sorted(_POSITIVE_FIXTURES.items())):
            case = tmp_path / f"case{index}"
            case.mkdir()
            seen |= rule_ids(lint(case, files))
        assert len(seen) >= 12
        assert {rule_id.rstrip("0123456789")
                for rule_id in seen} == set(FAMILIES)


class TestCli:
    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\nt = time.time()\n")
        code = lint_main(["--root", str(tmp_path), "--no-baseline"])
        assert code == 1
        assert "DET001" in capsys.readouterr().out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text("x = 1\n")
        assert lint_main(["--root", str(tmp_path)]) == 0

    def test_json_format(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\nt = time.time()\n")
        code = lint_main(["--root", str(tmp_path), "--format", "json",
                          "--no-baseline"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["findings"][0]["rule"] == "DET001"
        assert payload["ok"] is False

    def test_unknown_rule_id_exits_two(self, tmp_path, capsys):
        assert lint_main(["--root", str(tmp_path),
                          "--select", "NOPE999"]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("DET001", "SIM001", "TRC001", "CACHE001"):
            assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text(
            "import time\nt = time.time()\n")
        assert lint_main(["--root", str(tmp_path),
                          "--write-baseline"]) == 0
        assert (tmp_path / "lint-baseline.json").exists()
        assert lint_main(["--root", str(tmp_path)]) == 0

    def test_output_file_written(self, tmp_path, capsys):
        (tmp_path / "src").mkdir()
        (tmp_path / "src" / "x.py").write_text("x = 1\n")
        target = tmp_path / "report.json"
        lint_main(["--root", str(tmp_path), "--format", "json",
                   "--output", str(target)])
        assert json.loads(target.read_text())["ok"] is True


class TestSelfApplication:
    def test_own_tree_is_clean(self):
        """The linter applied to this repository: every finding is
        fixed, suppressed inline, or baselined with a justification."""
        config = AnalysisConfig(paths=["src", "benchmarks"],
                                baseline_path="lint-baseline.json",
                                root=REPO_ROOT)
        report = Analyzer(config).run()
        assert report.ok, "\n".join(
            finding.render() for finding in report.findings)
        assert report.n_files > 100

    def test_injected_wall_clock_fails_ci_style(self, tmp_path):
        """The acceptance scenario: an un-suppressed time.time() in
        core/ makes ``python -m repro lint --format=json`` exit 1."""
        bad = tmp_path / "src" / "repro" / "core"
        bad.mkdir(parents=True)
        (bad / "freshly_broken.py").write_text(
            "import time\n\n\ndef now():\n    return time.time()\n")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "--format=json",
             "--root", str(tmp_path)],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        flagged = {f["rule"] for f in payload["findings"]}
        assert "DET001" in flagged
