"""Differential tests for the multi-job Eq. 1 boundary oracle.

:func:`repro.check.oracle.predict_group_boundaries` replays a shared
group as a pure fixed-point mini-simulator; these tests pit its
predicted iteration boundaries against the full execution engine's
``CycleRecord.finished_at`` instants under the deterministic config
(jitter, barrier overhead and spill all off, so the engine *is*
Eq. 1's world and the two must agree to float accumulation error).
"""

import numpy as np
import pytest

from repro.check.oracle import (
    deterministic_config,
    job_subtasks,
    predict_group_boundaries,
    predict_group_iteration_boundaries,
    predict_job_span,
    exact_metrics,
)
from repro.core.group_runtime import (
    NAIVE_CPU_INTERFERENCE,
    NAIVE_NET_INTERFERENCE,
    ExecutionMode,
    GroupRuntime,
)
from repro.core.job import Job, JobState
from repro.sim import RandomStreams, Simulator
from repro.sim.resources import (
    primary_secondary,
    processor_sharing,
    serial,
)
from repro.workloads.apps import DATASETS, LASSO, LDA, MLR, NMF, JobSpec
from repro.workloads.costmodel import CostModel


class _Hooks:
    iteration_hooks_inert = True

    def __init__(self):
        self.finished = []

    def on_iteration(self, job, group):
        pass

    def on_job_finished(self, job, group):
        job.state = JobState.FINISHED
        self.finished.append(job.job_id)

    def on_job_paused(self, job, group):  # pragma: no cover - unused
        job.state = JobState.PAUSED

    def on_job_failed(self, job, group, error):  # pragma: no cover
        job.state = JobState.FAILED


def spec_pool():
    # Small enough that a 5-job group on 24 machines stays below the
    # GC-pressure onset (asserted per test) — Eq. 1 has no GC term.
    return [
        JobSpec("j0", LDA, DATASETS[LDA.name][1], iterations=4),
        JobSpec("j1", MLR, DATASETS[MLR.name][0], iterations=3),
        JobSpec("j2", NMF, DATASETS[NMF.name][0], iterations=5),
        JobSpec("j3", LASSO, DATASETS[LASSO.name][0], iterations=4),
        JobSpec("j4", LDA, DATASETS[LDA.name][0], iterations=2),
    ]


def run_engine(specs, m, mode, seed=3):
    """Run the real engine; per-job finished_at arrays + the group."""
    config = deterministic_config(seed)
    sim = Simulator()
    group = GroupRuntime(sim, "g", tuple(range(m)), mode,
                         CostModel(config.machine), config,
                         RandomStreams(config.seed), _Hooks())
    for spec in specs:
        job = Job(spec)
        job.state = JobState.RUNNING
        assert group.add_job(job)
    sim.run()
    measured = {spec.job_id: [] for spec in specs}
    for cycle in group.cycles:
        measured[cycle.job_id].append(cycle.finished_at)
    return {job_id: np.asarray(times)
            for job_id, times in measured.items()}, group


def oracle_inputs(specs, m, mode, seed=3):
    """The (jobs, policies) tapes mirroring the engine's construction."""
    config = deterministic_config(seed)
    cost_model = CostModel(config.machine)
    jobs = []
    for spec in specs:
        job = Job(spec)
        profile = cost_model.profile(spec, m)
        load = cost_model.disk.read_seconds(
            spec.input_gb * (1.0 - job.alpha) / m * 1024**3)
        jobs.append((spec.job_id,
                     job_subtasks(load, profile.t_pull, profile.t_comp,
                                  profile.t_push, spec.iterations)))
    if mode is ExecutionMode.NAIVE:
        policies = {"cpu": processor_sharing(NAIVE_CPU_INTERFERENCE),
                    "net": processor_sharing(NAIVE_NET_INTERFERENCE),
                    "disk": processor_sharing()}
    else:
        policies = {"cpu": serial(),
                    "net": primary_secondary(
                        config.execution.secondary_comm_rate),
                    "disk": processor_sharing()}
    return jobs, policies


class TestAgainstEngine:
    @pytest.mark.parametrize("n_jobs", [1, 2, 3, 4, 5])
    def test_harmony_boundaries_match(self, n_jobs):
        specs = spec_pool()[:n_jobs]
        m = 24
        measured, group = run_engine(specs, m, ExecutionMode.HARMONY)
        # The scenario must stay in Eq. 1's regime: no GC inflation,
        # no reload stalls — otherwise the tapes are the wrong model.
        assert all(c.gc_overhead == 0.0 and c.stall == 0.0
                   for c in group.cycles)
        jobs, policies = oracle_inputs(specs, m, ExecutionMode.HARMONY)
        predicted = predict_group_iteration_boundaries(jobs, policies)
        for spec in specs:
            np.testing.assert_allclose(predicted[spec.job_id],
                                       measured[spec.job_id],
                                       rtol=1e-9)

    @pytest.mark.parametrize("n_jobs", [2, 3, 4])
    def test_naive_boundaries_match(self, n_jobs):
        specs = spec_pool()[:n_jobs]
        m = 24
        measured, group = run_engine(specs, m, ExecutionMode.NAIVE)
        assert all(c.gc_overhead == 0.0 and c.stall == 0.0
                   for c in group.cycles)
        jobs, policies = oracle_inputs(specs, m, ExecutionMode.NAIVE)
        predicted = predict_group_iteration_boundaries(jobs, policies)
        for spec in specs:
            np.testing.assert_allclose(predicted[spec.job_id],
                                       measured[spec.job_id],
                                       rtol=1e-9)

    def test_solo_degenerates_to_eq1_span(self):
        """With one job the joint fixed point collapses to Eq. 1."""
        spec = spec_pool()[0]
        m = 24
        config = deterministic_config(3)
        cost_model = CostModel(config.machine)
        jobs, policies = oracle_inputs([spec], m, ExecutionMode.HARMONY)
        predicted = predict_group_iteration_boundaries(jobs, policies)
        metrics = exact_metrics(cost_model, spec, m)
        load = jobs[0][1][0][1]
        span = predict_job_span(metrics, m, spec.iterations)
        assert predicted[spec.job_id][-1] == pytest.approx(
            load + span, rel=1e-12)


class TestMiniSimulatorSemantics:
    def test_two_jobs_overlap_on_harmony_policies(self):
        """Co-location pipelines CPU against network (§III-B): the
        joint makespan beats running the tapes back-to-back."""
        jobs = [("a", job_subtasks(0.0, 2.0, 6.0, 2.0, 3)),
                ("b", job_subtasks(0.0, 2.0, 6.0, 2.0, 3))]
        policies = {"cpu": serial(), "net": primary_secondary(0.4),
                    "disk": processor_sharing()}
        done = predict_group_boundaries(jobs, policies)
        joint = max(done["a"][-1], done["b"][-1])
        solo = 3 * (2.0 + 6.0 + 2.0)
        assert solo < joint < 2 * solo

    def test_zero_work_waits_for_serial_turn(self):
        """A zero-work subtask behind a serial() head is starved until
        the head completes — it must not finish at t=0."""
        jobs = [("a", [("cpu", 5.0)]), ("b", [("cpu", 0.0)])]
        done = predict_group_boundaries(jobs, {"cpu": serial()})
        assert done["a"][0] == pytest.approx(5.0)
        assert done["b"][0] == pytest.approx(5.0)

    def test_zero_work_completes_instantly_under_sharing(self):
        jobs = [("a", [("cpu", 5.0)]), ("b", [("cpu", 0.0)])]
        done = predict_group_boundaries(
            jobs, {"cpu": processor_sharing()})
        assert done["b"][0] == 0.0
        assert done["a"][0] == pytest.approx(5.0)

    def test_starved_forever_raises(self):
        def dead_policy(n_active):
            return (0.0,)
        jobs = [("a", [("cpu", 1.0)])]
        with pytest.raises(RuntimeError, match="starved"):
            predict_group_boundaries(jobs, {"cpu": dead_policy})

    def test_empty_tape_job(self):
        jobs = [("a", []), ("b", [("cpu", 1.0)])]
        done = predict_group_boundaries(jobs, {"cpu": serial()})
        assert done["a"].size == 0
        assert done["b"][0] == pytest.approx(1.0)

    def test_negative_iterations_rejected(self):
        with pytest.raises(ValueError):
            job_subtasks(0.0, 1.0, 1.0, 1.0, -1)
