"""Tests for the CLI entry point, configuration, and error types."""

import dataclasses

import pytest

from repro import errors
from repro.__main__ import DRIVERS, main
from repro.config import DEFAULT_SIM_CONFIG, GB, GCModel, MB, MachineSpec


class TestCli:
    def test_list_exits_cleanly(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "fig10_main" in out
        assert "reloading" in out

    def test_no_args_lists(self, capsys):
        assert main([]) == 0
        assert "available experiments" in capsys.readouterr().out

    def test_unknown_driver_fails(self, capsys):
        assert main(["not-a-driver"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_every_driver_has_run_and_report(self):
        for name, module in DRIVERS.items():
            assert callable(module.run), name
            assert callable(module.report), name

    def test_small_driver_runs_through_cli(self, capsys):
        assert main(["fig03_dop_sweep"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out
        assert "completed in" in out

    def test_scale_flag_is_forwarded(self, capsys):
        assert main(["fig10_main", "--scale", "0.15", "--seed", "5"]) == 0
        assert "Harmony" in capsys.readouterr().out


class TestSubcommandDispatch:
    def test_help_lists_subcommands(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "check" in out
        assert "lint" in out
        assert "invariant checker" in out
        assert "static" in out and "analyzer" in out

    def test_list_includes_subcommands(self, capsys):
        assert main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "check" in out
        assert "lint" in out

    def test_lint_dispatches_to_analysis_cli(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "harmonylint rules" in out

    def test_lint_forwards_arguments(self, capsys):
        assert main(["lint", "--select", "BOGUS123"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_check_dispatches_to_check_cli(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["check", "--help"])
        assert excinfo.value.code == 0
        assert "repro check" in capsys.readouterr().out


class TestMachineSpec:
    def test_m4_2xlarge_defaults(self):
        spec = MachineSpec()
        assert spec.cores == 8
        assert spec.memory_gb == 32.0
        assert spec.network_bps == pytest.approx(1.1e9 / 8)

    def test_usable_memory(self):
        spec = MachineSpec(memory_gb=10.0, usable_memory_fraction=0.5)
        assert spec.usable_memory_gb == 5.0
        assert spec.usable_memory_bytes == 5.0 * GB

    def test_units(self):
        assert GB == 1024.0 ** 3
        assert MB == 1024.0 ** 2


class TestSimConfig:
    def test_with_seed_changes_only_seed(self):
        derived = DEFAULT_SIM_CONFIG.with_seed(99)
        assert derived.seed == 99
        assert derived.machine == DEFAULT_SIM_CONFIG.machine
        assert derived.scheduler == DEFAULT_SIM_CONFIG.scheduler

    def test_configs_are_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            DEFAULT_SIM_CONFIG.seed = 1

    def test_gc_model_nested_in_memory_config(self):
        assert isinstance(DEFAULT_SIM_CONFIG.memory.gc_model, GCModel)

    def test_paper_constants(self):
        scheduler = DEFAULT_SIM_CONFIG.scheduler
        assert scheduler.regroup_benefit_threshold == 0.05
        assert scheduler.similarity_threshold == 0.05
        assert scheduler.fewer_jobs_preference == 0.05


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_oom_error_carries_context(self):
        error = errors.OutOfMemoryError("boom", job_ids=("a", "b"),
                                        resident_gb=30.0,
                                        capacity_gb=25.6)
        assert error.job_ids == ("a", "b")
        assert error.resident_gb > error.capacity_gb

    def test_resource_error_is_simulation_error(self):
        assert issubclass(errors.ResourceError, errors.SimulationError)


class TestPublicApi:
    def test_top_level_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_version_string(self):
        import repro
        assert repro.__version__.count(".") == 2
