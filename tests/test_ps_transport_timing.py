"""Tests for transport bandwidth simulation and PS wiring details."""

import time

import numpy as np
import pytest

from repro.errors import PSError
from repro.ps import InProcessTransport, PSClient, PSServer, RangePartitioner


def build(n_workers=1, bandwidth=None):
    keys = ["k0", "k1"]
    partitioner = RangePartitioner(keys, 2)
    transport = InProcessTransport(simulated_bandwidth_bps=bandwidth)
    for shard in range(partitioner.n_shards):
        server = PSServer(shard, n_workers=n_workers,
                          barrier_timeout=5.0)
        server.init_params({k: np.zeros(64)
                            for k in partitioner.keys_of_shard(shard)})
        transport.register(server)
    clients = [PSClient(w, transport, partitioner)
               for w in range(n_workers)]
    return transport, clients


class TestBandwidthSimulation:
    def test_simulated_bandwidth_adds_latency(self):
        fast_transport, fast_clients = build()
        slow_transport, slow_clients = build(bandwidth=50_000.0)

        started = time.perf_counter()
        fast_clients[0].pull()
        fast_elapsed = time.perf_counter() - started

        started = time.perf_counter()
        slow_clients[0].pull()
        slow_elapsed = time.perf_counter() - started
        assert slow_elapsed > fast_elapsed
        # ~1.1 KiB over 50 kB/s is ~20 ms.
        assert slow_elapsed > 0.01

    def test_request_count_increments(self):
        transport, clients = build()
        clients[0].pull()
        pulls = transport.requests
        clients[0].push({"k0": np.ones(64)})
        assert transport.requests > pulls


class TestClientWiring:
    def test_pull_subset_of_keys(self):
        _, clients = build()
        values = clients[0].pull(["k1"])
        assert set(values) == {"k1"}

    def test_push_routes_to_owning_shard_only(self):
        transport, clients = build()
        clients[0].push({"k0": np.ones(64)})
        after_first = transport.bytes_pushed
        clients[0].push({})  # empty push still syncs both shards
        assert transport.bytes_pushed > 0
        assert transport.bytes_pushed - after_first < after_first

    def test_unknown_shard_raises(self):
        transport, _ = build()
        with pytest.raises(PSError):
            transport.pull(99, ["k0"], clock=0)

    def test_serialize_helpers_roundtrip(self):
        _, clients = build()
        payload = {"k0": np.arange(4.0)}
        frame = PSClient.serialize(payload)
        decoded = PSClient.deserialize(frame)
        assert np.allclose(decoded["k0"], payload["k0"])


class TestSleepModelRegistration:
    def test_sleep_model_is_ps_trainable(self):
        from repro.ml.base import PSTrainable
        from repro.ml.synthetic_sleep import SleepModel
        assert issubclass(SleepModel, PSTrainable)
        model = SleepModel(0.0, payload_elements=16)
        params = model.init_params(np.random.default_rng(0))
        assert params["state"].shape == (16,)
