"""Differential tests pinning the batched simulator fast path
(:mod:`repro.sim.fastpath`) bitwise-equal to the per-event reference
engine, plus regressions for the event-loop correctness sweep that
rode along: deterministic event-tie ordering, closed-form step
boundaries (no accumulated-float drift), and zero-duration segments
when a fault fires exactly on a step boundary.

Bitwise means bitwise: every comparison below is ``==`` or
``np.array_equal`` — no tolerances.  The fast path runs the *same*
generator code under a warped clock, so any difference at all is a
bug, not noise.
"""

import os
from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines import IsolatedRuntime, NaiveRuntime
from repro.check import InvariantChecker, ScenarioGenerator, run_checked
from repro.check.oracle import deterministic_config, step_boundaries
from repro.config import DEFAULT_SIM_CONFIG, ExecutionConfig, SimConfig
from repro.core.group_runtime import ExecutionMode, GroupRuntime
from repro.core.job import Job, JobState
from repro.core.runtime import HarmonyRuntime
from repro.errors import SimulationError
from repro.experiments.common import _CollectingHooks
from repro.sim import Event, RandomStreams, Simulator
from repro.sim.fastpath import BatchStats, cycles_view, ledger_view
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator

POOL = WorkloadGenerator(2021).base_workload(hyper_params_per_pair=1)


def run_group(spec, mode, engine, config, m=4):
    """One single-job group run to completion on the given engine."""
    sim = Simulator()
    cfg = config.with_engine(engine)
    cost_model = CostModel(cfg.machine)
    hooks = _CollectingHooks()
    group = GroupRuntime(sim, "g", tuple(range(m)), mode, cost_model,
                         cfg, RandomStreams(cfg.seed), hooks)
    job = Job(spec)
    job.state = JobState.RUNNING
    group.add_job(job)
    sim.run()
    group.cpu.close_segments()
    group.net.close_segments()
    group.disk.close_segments()
    return sim, group, hooks


def run_multi_group(specs, mode, engine, config, m=6,
                    hooks_factory=_CollectingHooks):
    """A multi-job group run to completion on the given engine."""
    sim = Simulator()
    cfg = config.with_engine(engine)
    hooks = hooks_factory()
    group = GroupRuntime(sim, "g", tuple(range(m)), mode,
                         CostModel(cfg.machine), cfg,
                         RandomStreams(cfg.seed), hooks)
    for spec in specs:
        job = Job(spec)
        job.state = JobState.RUNNING
        group.add_job(job)
    sim.run()
    for resource in (group.cpu, group.net, group.disk):
        resource.close_segments()
    return sim, group, hooks


def multi_specs(n_jobs, iterations=5, stagger_iterations=True):
    """``n_jobs`` heterogeneous specs cycling through the base pool."""
    return [replace(POOL[i % len(POOL)], job_id=f"j{i}",
                    iterations=iterations + (i if stagger_iterations
                                             else 0),
                    submit_time=0.0)
            for i in range(n_jobs)]


def segments_of(resource):
    return [(s.start, s.end, s.level) for s in resource.segments]


def assert_bitwise_equal(fast, ref):
    """Every observable of the two runs must match exactly."""
    sim_f, group_f, hooks_f = fast
    sim_r, group_r, hooks_r = ref
    assert sim_f.now == sim_r.now
    assert hooks_f.finished == hooks_r.finished
    # Exceptions compare by identity; match failures by id + message.
    assert ([(j, repr(e)) for j, e in hooks_f.failed]
            == [(j, repr(e)) for j, e in hooks_r.failed])
    assert np.array_equal(cycles_view(group_f.cycles),
                          cycles_view(group_r.cycles))
    for res_f, res_r in ((group_f.cpu, group_r.cpu),
                         (group_f.net, group_r.net),
                         (group_f.disk, group_r.disk)):
        assert np.array_equal(ledger_view(res_f), ledger_view(res_r))
        assert segments_of(res_f) == segments_of(res_r)


class TestGroupDifferential:
    """Fast engine vs reference engine on single-job groups."""

    @pytest.mark.parametrize("mode", [ExecutionMode.HARMONY,
                                      ExecutionMode.ISOLATED])
    def test_workload_sweep_bitwise_equal(self, mode):
        """Every base-workload app, with and without jitter."""
        for config in (DEFAULT_SIM_CONFIG, deterministic_config(7)):
            for spec in POOL:
                spec = replace(spec, iterations=25, submit_time=0.0)
                fast = run_group(spec, mode, "fast", config)
                ref = run_group(spec, mode, "reference", config)
                assert_bitwise_equal(fast, ref)

    @settings(max_examples=25, deadline=None)
    @given(spec_index=st.integers(0, len(POOL) - 1),
           iterations=st.integers(1, 30),
           m=st.integers(2, 8),
           jitter_cv=st.sampled_from([0.0, 0.02, 0.05]),
           seed=st.integers(0, 2**16))
    def test_random_workloads_bitwise_equal(self, spec_index,
                                            iterations, m, jitter_cv,
                                            seed):
        """Hypothesis sweep over shapes, jitter, and rng seeds."""
        spec = replace(POOL[spec_index], iterations=iterations,
                       submit_time=0.0)
        config = SimConfig(
            seed=seed,
            execution=ExecutionConfig(duration_jitter_cv=jitter_cv))
        fast = run_group(spec, ExecutionMode.HARMONY, "fast", config, m)
        ref = run_group(spec, ExecutionMode.HARMONY, "reference",
                        config, m)
        assert_bitwise_equal(fast, ref)

    def test_conservation_invariants_hold_on_both_engines(self):
        """The repro.check group invariants pass under either engine."""
        checker = InvariantChecker()
        spec = replace(POOL[0], iterations=10, submit_time=0.0)
        for engine in ("fast", "reference"):
            _, group, _ = run_group(spec, ExecutionMode.HARMONY,
                                    engine, DEFAULT_SIM_CONFIG)
            violations = []
            checker.check_audit(group.audit(), violations)
            assert violations == [], engine

    def test_fast_engine_actually_batches(self):
        """Guard against the fast path silently never engaging."""
        spec = replace(POOL[0], iterations=10, submit_time=0.0)
        _, group, _ = run_group(spec, ExecutionMode.HARMONY, "fast",
                                DEFAULT_SIM_CONFIG)
        stats = group._engine.stats
        assert stats.n_batches >= 1
        assert stats.batched_seconds > 0.0
        assert int(stats.iterations.sum()) == 10

    def test_reference_engine_never_batches(self):
        spec = replace(POOL[0], iterations=5, submit_time=0.0)
        _, group, _ = run_group(spec, ExecutionMode.HARMONY,
                                "reference", DEFAULT_SIM_CONFIG)
        assert group._engine is None

    def test_multi_job_groups_skip_solo_lane(self):
        """Contending jobs interleave; the solo batch must refuse to
        open — the coordinated drive lane carries them instead."""
        sim, group, _ = run_multi_group(multi_specs(2),
                                        ExecutionMode.HARMONY, "fast",
                                        DEFAULT_SIM_CONFIG, m=4)
        assert group._engine.stats.n_batches == 0
        assert sim.fastpath_stats.solo_batches == 0
        assert sim.fastpath_stats.wakes_served > 0


class TestMultiJobDifferential:
    """Fast engine vs reference engine on multi-job groups: the
    coordinated drive lane serves parked wakes at true times, so every
    co-location mode must come out bitwise identical."""

    @pytest.mark.parametrize("mode", [ExecutionMode.HARMONY,
                                      ExecutionMode.NAIVE])
    @pytest.mark.parametrize("n_jobs", [2, 3, 5])
    def test_group_sweep_bitwise_equal(self, mode, n_jobs):
        """Heterogeneous apps, with and without jitter."""
        specs = multi_specs(n_jobs)
        for config in (DEFAULT_SIM_CONFIG, deterministic_config(7)):
            fast = run_multi_group(specs, mode, "fast", config)
            ref = run_multi_group(specs, mode, "reference", config)
            assert_bitwise_equal(fast, ref)

    @settings(max_examples=20, deadline=None)
    @given(n_jobs=st.integers(2, 4),
           iterations=st.integers(1, 10),
           m=st.integers(2, 8),
           jitter_cv=st.sampled_from([0.0, 0.02, 0.05]),
           seed=st.integers(0, 2**16))
    def test_random_multi_job_groups_bitwise_equal(self, n_jobs,
                                                   iterations, m,
                                                   jitter_cv, seed):
        """Hypothesis sweep over group sizes, shapes, jitter, seeds."""
        specs = multi_specs(n_jobs, iterations=iterations,
                            stagger_iterations=False)
        config = SimConfig(
            seed=seed,
            execution=ExecutionConfig(duration_jitter_cv=jitter_cv))
        fast = run_multi_group(specs, ExecutionMode.HARMONY, "fast",
                               config, m)
        ref = run_multi_group(specs, ExecutionMode.HARMONY,
                              "reference", config, m)
        assert_bitwise_equal(fast, ref)

    def test_conservation_invariants_hold_on_both_engines(self):
        """The repro.check group invariants pass for a 3-job group
        under either engine."""
        checker = InvariantChecker()
        specs = multi_specs(3)
        for engine in ("fast", "reference"):
            _, group, _ = run_multi_group(specs, ExecutionMode.HARMONY,
                                          engine, DEFAULT_SIM_CONFIG)
            violations = []
            checker.check_audit(group.audit(), violations)
            assert violations == [], engine

    def test_drive_lane_engages_for_multi_job_groups(self):
        """Guard against the coordinated lane silently never engaging:
        the whole point of the engine is that multi-job groups batch."""
        sim, group, _ = run_multi_group(multi_specs(3),
                                        ExecutionMode.HARMONY, "fast",
                                        DEFAULT_SIM_CONFIG)
        stats = sim.fastpath_stats
        assert stats.engaged
        assert stats.groups_attached == 1
        assert stats.drive_windows >= 1
        assert stats.wakes_served > 0
        # Multi-job groups never open the fused solo lane.
        assert stats.solo_batches == 0
        assert group._engine is not None

    def test_reference_engine_stats_stay_zero(self):
        sim, group, _ = run_multi_group(multi_specs(3),
                                        ExecutionMode.HARMONY,
                                        "reference",
                                        DEFAULT_SIM_CONFIG)
        stats = sim.fastpath_stats
        assert not stats.engaged
        assert stats.groups_attached == 0
        assert stats.drive_windows == 0
        assert stats.wakes_served == 0
        assert group._engine is None

    def test_undeclared_hooks_fall_back_to_reference(self):
        """Hooks that declare neither ``iteration_hooks_inert`` nor
        ``iteration_hooks_replayable`` must keep the group off the
        fast path entirely — and the run still matches bitwise."""
        class OpaqueHooks(_CollectingHooks):
            iteration_hooks_inert = False

        specs = multi_specs(2)
        fast = run_multi_group(specs, ExecutionMode.HARMONY, "fast",
                               DEFAULT_SIM_CONFIG,
                               hooks_factory=OpaqueHooks)
        ref = run_multi_group(specs, ExecutionMode.HARMONY,
                              "reference", DEFAULT_SIM_CONFIG,
                              hooks_factory=OpaqueHooks)
        assert fast[1]._engine is None
        assert not fast[0].fastpath_stats.engaged
        assert_bitwise_equal(fast, ref)


class TestMasterDifferential:
    """Fig. 10-style full ``HarmonyRuntime`` runs — profiler
    transitions, pauses, regroups, migrations, faults — must be
    bitwise identical, with the drive lane engaged."""

    @pytest.mark.parametrize("failure_times", [[], [150.0, 900.0]],
                             ids=["no-faults", "faults"])
    def test_fig10_run_bitwise_equal(self, failure_times):
        pool = WorkloadGenerator(11).base_workload(
            hyper_params_per_pair=1)
        specs = [replace(pool[i % len(pool)], job_id=f"j{i}",
                         iterations=6, submit_time=float(40 * i))
                 for i in range(8)]
        results = {}
        for engine in ("fast", "reference"):
            cfg = deterministic_config(11).with_engine(engine)
            runtime = HarmonyRuntime(20, specs, config=cfg,
                                     failure_times=failure_times)
            result = runtime.run()
            results[engine] = (result, runtime.sim.fastpath_stats)
        fast, fast_stats = results["fast"]
        ref, ref_stats = results["reference"]
        assert fast.makespan == ref.makespan
        for job_id, outcome in fast.outcomes.items():
            other = ref.outcomes[job_id]
            assert outcome.state == other.state
            assert outcome.jct == other.jct
            assert outcome.finish_time == other.finish_time
        assert np.array_equal(cycles_view(fast._all_cycles),
                              cycles_view(ref._all_cycles))
        assert fast.gc_seconds == ref.gc_seconds
        assert fast.stall_seconds == ref.stall_seconds
        assert (fast.migration_overhead_seconds
                == ref.migration_overhead_seconds)
        # HarmonyMaster's hooks are replayable, so the drive lane must
        # actually carry the run — not silently fall back.
        assert fast_stats.engaged
        assert fast_stats.drive_windows >= 1
        assert fast_stats.wakes_served > 0
        assert fast_stats.groups_attached >= 1
        assert not ref_stats.engaged


class TestTruncation:
    """Truncated runs cannot use the batched lane; tearing it down
    mid-run must requeue parked wakes bit-for-bit."""

    def _fresh(self, engine):
        sim = Simulator()
        cfg = DEFAULT_SIM_CONFIG.with_engine(engine)
        hooks = _CollectingHooks()
        group = GroupRuntime(sim, "g", tuple(range(6)),
                             ExecutionMode.HARMONY,
                             CostModel(cfg.machine), cfg,
                             RandomStreams(cfg.seed), hooks)
        for spec in multi_specs(3):
            job = Job(spec)
            job.state = JobState.RUNNING
            group.add_job(job)
        return sim, group, hooks

    def _finish(self, sim, group, hooks):
        for resource in (group.cpu, group.net, group.disk):
            resource.close_segments()
        return sim, group, hooks

    def _reference_run(self):
        sim, group, hooks = self._fresh("reference")
        sim.run()
        return self._finish(sim, group, hooks)

    def test_max_events_run_tears_down_and_stays_equal(self):
        """``max_events`` budgets reference callbacks; the fast path is
        deactivated up front and the run continues bit-for-bit."""
        sim, group, hooks = self._fresh("fast")
        sim.run(max_events=40)
        assert sim.fastpath_enabled is False
        assert sim.fastpath_stats.engines_deactivated == 1
        for resource in (group.cpu, group.net, group.disk):
            assert resource._pending_wake_at is None
        assert group._engine._driver_handle is None
        sim.run()  # finish on the reference path
        assert_bitwise_equal(self._finish(sim, group, hooks),
                             self._reference_run())

    def test_mid_run_disable_requeues_parked_wakes(self):
        """Clearing ``fastpath_enabled`` mid-run (between events, with
        wakes parked under the drive lane) requeues them at their
        exact ``(when, seq)`` keys: the rest of the run is bitwise
        reference."""
        ref = self._reference_run()
        t_mid = ref[0].now / 3.0
        sim, group, hooks = self._fresh("fast")
        sim.run(until=t_mid)
        assert sim.now == t_mid
        # Mid-run the group still has parked work under the engine.
        assert any(r._pending_wake_at is not None
                   for r in (group.cpu, group.net, group.disk))
        sim.fastpath_enabled = False
        for resource in (group.cpu, group.net, group.disk):
            assert resource._pending_wake_at is None
        assert group._engine._driver_handle is None
        sim.run()
        assert_bitwise_equal(self._finish(sim, group, hooks), ref)

    def test_until_truncated_drive_stops_on_horizon(self):
        """A drive window never serves a parked wake past ``until`` —
        the truncated fast run stops at exactly the reference state."""
        ref_sim, ref_group, _ = self._fresh("reference")
        ref_sim.run(until=120.0)
        sim, group, _ = self._fresh("fast")
        sim.run(until=120.0)
        assert sim.now == ref_sim.now == 120.0
        assert np.array_equal(cycles_view(group.cycles),
                              cycles_view(ref_group.cycles))
        for fast_res, ref_res in ((group.cpu, ref_group.cpu),
                                  (group.net, ref_group.net),
                                  (group.disk, ref_group.disk)):
            assert np.array_equal(ledger_view(fast_res),
                                  ledger_view(ref_res))

    def test_crash_with_parked_wakes_cleans_up(self):
        """A group crash mid-run (between events) purges the parked
        wakes and retracts the driver entry — no stale wake may fire
        into the dead group."""
        sim, group, hooks = self._fresh("fast")
        sim.run(until=60.0)
        victims = group.crash()
        assert victims
        for resource in (group.cpu, group.net, group.disk):
            assert resource._pending_wake_at is None
        assert group._engine._driver_handle is None
        sim.run()  # drains without touching the dead group
        assert hooks.finished == []


class TestBaselineDifferential:
    """Whole baseline runs — many groups, queueing, backfill — must
    come out identical under either engine."""

    @pytest.mark.parametrize("make", [
        lambda cfg: IsolatedRuntime(20, _workload(), config=cfg),
        lambda cfg: NaiveRuntime(20, _workload(), config=cfg,
                                 group_size=3, shuffle_seed=1),
    ], ids=["isolated", "naive"])
    def test_run_bitwise_equal(self, make):
        results = {}
        for engine in ("fast", "reference"):
            cfg = DEFAULT_SIM_CONFIG.with_engine(engine)
            runtime = make(cfg)
            results[engine] = (runtime.run(), runtime.sim.now)
        (fast, now_f), (ref, now_r) = results["fast"], results["reference"]
        assert now_f == now_r
        assert fast.makespan == ref.makespan
        for job_id, outcome in fast.outcomes.items():
            other = ref.outcomes[job_id]
            assert outcome.state == other.state
            assert outcome.finish_time == other.finish_time
        assert np.array_equal(cycles_view(fast._all_cycles),
                              cycles_view(ref._all_cycles))

    def test_truncated_run_disables_fastpath(self):
        runtime = IsolatedRuntime(20, _workload())
        runtime.run(max_sim_seconds=50.0)
        assert runtime.sim.fastpath_enabled is False


def _workload():
    return [replace(s, iterations=6) for s in POOL[:6]]


class TestEngineConfig:
    def test_engine_validated(self):
        with pytest.raises(ValueError):
            SimConfig(engine="vectorized")

    def test_with_engine_round_trip(self):
        cfg = DEFAULT_SIM_CONFIG.with_engine("reference")
        assert cfg.engine == "reference"
        # The package default honours the CI matrix's env knob; with no
        # knob set it is "fast".
        assert DEFAULT_SIM_CONFIG.engine == os.environ.get(
            "HARMONY_SIM_ENGINE", "fast")

    def test_env_knob_sets_default(self, monkeypatch):
        monkeypatch.setenv("HARMONY_SIM_ENGINE", "reference")
        assert SimConfig().engine == "reference"
        monkeypatch.delenv("HARMONY_SIM_ENGINE")
        assert SimConfig().engine == "fast"
        # Explicit engine= and with_engine() ignore the knob, so the
        # differential tests pin both engines regardless of the matrix
        # leg they run on.
        monkeypatch.setenv("HARMONY_SIM_ENGINE", "reference")
        assert SimConfig(engine="fast").engine == "fast"
        assert SimConfig().with_engine("fast").engine == "fast"

    def test_env_knob_rejects_unknown_engine(self, monkeypatch):
        monkeypatch.setenv("HARMONY_SIM_ENGINE", "vectorized")
        with pytest.raises(ValueError):
            SimConfig()

    def test_crash_inside_batch_is_rejected(self):
        """A fault delivered to a group mid-batch would corrupt the
        warped clock; the runtime must refuse loudly, not silently."""
        spec = replace(POOL[0], iterations=5, submit_time=0.0)
        sim = Simulator()
        cfg = DEFAULT_SIM_CONFIG.with_engine("fast")
        group = GroupRuntime(sim, "g", tuple(range(4)),
                             ExecutionMode.HARMONY, CostModel(cfg.machine),
                             cfg, RandomStreams(cfg.seed),
                             _CollectingHooks())
        job = Job(spec)
        job.state = JobState.RUNNING
        group.add_job(job)
        group._engine.active = True  # simulate an open batch
        with pytest.raises(SimulationError):
            group.crash()


class TestBatchStats:
    def test_struct_of_arrays_views(self):
        stats = BatchStats()
        stats.record(0.0, 10.0, 3)
        stats.record(12.0, 30.0, 5)
        assert stats.n_batches == 2
        assert np.array_equal(stats.opened, [0.0, 12.0])
        assert np.array_equal(stats.closed, [10.0, 30.0])
        assert np.array_equal(stats.iterations, [3, 5])
        assert stats.batched_seconds == 28.0

    def test_cycles_view_empty(self):
        assert cycles_view([]).shape == (0, 6)


class TestEventTieOrdering:
    """Satellite regression: same-timestamp events resolve by insertion
    order via a monotonic creation counter — never ``id()``, whose
    ordering varies run to run."""

    def test_creation_order_is_monotonic(self, sim):
        events = [Event(sim, name=f"e{i}") for i in range(64)]
        orders = [e.order for e in events]
        assert orders == sorted(orders)
        assert len(set(orders)) == len(orders)

    def test_lt_compares_creation_order(self, sim):
        first = Event(sim)
        second = Event(sim)
        assert first < second
        assert not second < first
        assert Event.__lt__(first, object()) is NotImplemented

    def test_sorting_ties_restores_insertion_order(self, sim):
        events = [Event(sim, name=f"e{i}") for i in range(16)]
        shuffled = list(reversed(events))
        assert sorted(shuffled) == events

    def test_same_time_timeouts_fire_in_scheduling_order(self, sim):
        fired = []
        for index in range(8):
            event = sim.timeout(5.0, name=f"t{index}")
            event.add_callback(
                lambda e, index=index: fired.append(index))
        sim.run()
        assert fired == list(range(8))
        assert sim.now == 5.0

    def test_same_time_at_events_fire_in_scheduling_order(self, sim):
        fired = []
        for index in range(8):
            sim.at(42.0, name=f"a{index}").add_callback(
                lambda e, index=index: fired.append(index))
        sim.run()
        assert fired == list(range(8))


class TestClosedFormBoundaries:
    """Satellite regression: the k-th step boundary is ``t0 + k * dt``
    in closed form — accumulating ``t += dt`` drifts off the exact
    boundary after enough steps."""

    N_STEPS = 10**6

    def test_million_step_boundaries_exact(self):
        t0, dt = 3.0, 0.1
        bounds = step_boundaries(t0, self.N_STEPS, dt)
        assert bounds.shape == (self.N_STEPS,)
        # Spot-check bitwise equality with the scalar closed form.
        for k in (1, 2, 999, 10**5, self.N_STEPS):
            assert bounds[k - 1] == t0 + k * dt
        # The accumulated alternative has drifted by now.
        t = t0
        for _ in range(1000):
            t += dt
        assert t != t0 + 1000 * dt

    def test_million_step_periodic_process_stays_on_boundary(self):
        """A pacer-style loop over ``sim.at`` lands on the closed-form
        boundary bitwise, a million events deep."""
        sim = Simulator()
        t0, dt = 0.0, 0.1
        n = self.N_STEPS
        observed = {}

        def pacer():
            tick = 0
            while tick < n:
                tick += 1
                yield sim.at(t0 + tick * dt)
                if tick in (1, 10**3, 10**5, n):
                    observed[tick] = sim.now

        sim.spawn(pacer(), name="pacer")
        sim.run()
        for tick, now in observed.items():
            assert now == t0 + tick * dt
        assert sim.now == t0 + n * dt

    def test_health_monitor_ticks_on_exact_boundaries(self):
        from repro.cluster.cluster import Cluster
        from repro.faults.monitor import HealthMonitor

        class _Master:
            def on_machine_failure(self, machine_id, fault_record=None):
                pass

        sim = Simulator()
        cluster = Cluster(4, DEFAULT_SIM_CONFIG.machine)
        monitor = HealthMonitor(sim, cluster, _Master(), interval=0.3)
        monitor.start()
        sim.run(until=30.0)
        monitor.stop()
        # The 100th sweep is at exactly 100 * 0.3, not the accumulated
        # sum of a hundred 0.3s, which differs in the last ulp.
        assert sim.now == 30.0


class TestZeroDurationSegments:
    """Satellite regression: a fault firing exactly on a step boundary
    must not leave a zero-duration segment (it double-counted in the
    conservation ledger)."""

    def _resource(self, sim):
        from repro.sim.resources import RateResource, serial
        return RateResource(sim, serial(), name="cpu",
                            record_segments=True)

    def test_append_zero_duration_segment_is_dropped(self, sim):
        resource = self._resource(sim)
        resource._append_segment(5.0, 5.0, 1.0)
        assert resource.segments == []
        resource._append_segment(5.0, 4.0, 1.0)  # negative: clock bug
        assert resource.segments == []

    def test_purge_on_exact_completion_boundary(self, sim):
        """Serve 10s of work, then purge at exactly t=10 with a fresh
        task queued: no zero-duration segment, ledger balanced."""
        resource = self._resource(sim)
        resource.submit(10.0, tag="a")
        sim.run()
        assert sim.now == 10.0
        resource.submit(3.0, tag="b")
        resource.purge()  # the fault, exactly on the boundary
        resource.close_segments()
        assert all(s.end > s.start for s in resource.segments)
        busy = sum((s.end - s.start) * s.level
                   for s in resource.segments)
        assert busy == resource.busy_seconds
        assert resource.work_submitted == pytest.approx(
            resource.work_served + resource.work_discarded)

    def test_close_segments_on_boundary_is_idempotent(self, sim):
        resource = self._resource(sim)
        resource.submit(4.0, tag="a")
        sim.run()
        resource.close_segments()
        before = segments_of(resource)
        resource.close_segments()
        resource.close_segments()
        assert segments_of(resource) == before
        assert all(s.end > s.start for s in resource.segments)

    def test_scenario_with_faults_stays_invariant_clean(self):
        """End-to-end: a generated scenario with a fault plan passes
        the full repro.check invariant suite (fault times can land
        exactly on step boundaries via the generated plans)."""
        scenario = None
        for seed in range(50):
            candidate = ScenarioGenerator(seed).generate()
            if candidate.fault_plan is not None:
                scenario = candidate
                break
        assert scenario is not None
        run = run_checked(scenario)
        assert run.violations == []
