"""End-to-end tests of the Harmony master and runtime."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.config import SimConfig
from repro.core.runtime import HarmonyRuntime
from repro.errors import SchedulingError
from repro.workloads.apps import DATASETS, JobSpec, LDA
from repro.workloads.arrivals import poisson_arrivals, with_arrival_times
from repro.workloads.generator import WorkloadGenerator


@pytest.fixture(scope="module")
def small_run():
    """One shared 8-job end-to-end run (module-scoped: it is the
    expensive fixture most assertions read from)."""
    jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
    runtime = HarmonyRuntime(24, jobs)
    return runtime, runtime.run()


class TestEndToEnd:
    def test_every_job_finishes(self, small_run):
        _, result = small_run
        assert len(result.finished) == 8
        assert not result.failed

    def test_cluster_fully_released_at_end(self, small_run):
        runtime, _ = small_run
        assert runtime.cluster.n_free == runtime.cluster.size
        assert not runtime.master.groups

    def test_makespan_and_jct_consistent(self, small_run):
        _, result = small_run
        assert 0 < result.mean_jct <= result.makespan
        for outcome in result.finished:
            assert outcome.finish_time is not None
            assert outcome.jct > 0

    def test_utilization_within_bounds(self, small_run):
        _, result = small_run
        for resource in ("cpu", "net"):
            value = result.average_utilization(resource)
            assert 0.0 < value <= 1.0

    def test_concurrency_exceeds_one(self, small_run):
        _, result = small_run
        assert result.mean_concurrent_jobs() > 1.0
        assert result.mean_concurrent_groups() >= 1.0

    def test_decisions_have_bounded_prediction_error(self, small_run):
        _, result = small_run
        errors = result.prediction_errors()
        if errors["t_group"]:
            assert float(np.mean(errors["t_group"])) < 0.35

    def test_group_shape_log_populated(self, small_run):
        _, result = small_run
        assert result.group_shape_log
        assert all(m >= 1 and n >= 1
                   for _, m, n in result.group_shape_log)

    def test_alpha_samples_in_range(self, small_run):
        _, result = small_run
        assert result.alpha_samples
        assert all(0.0 <= a <= 1.0 for a in result.alpha_samples)

    def test_migration_overhead_is_small(self, small_run):
        _, result = small_run
        assert result.migration_overhead_seconds < 0.2 * result.makespan

    def test_summary_mentions_key_numbers(self, small_run):
        _, result = small_run
        text = result.summary()
        assert "mean JCT" in text
        assert "makespan" in text


class TestArrivals:
    def test_staggered_arrivals_complete(self):
        jobs = WorkloadGenerator(5).base_workload(hyper_params_per_pair=1)
        times = poisson_arrivals(len(jobs), 600.0, seed=1)
        workload = with_arrival_times(jobs, times)
        result = HarmonyRuntime(24, workload).run()
        assert len(result.finished) == len(jobs)
        # JCT is measured from each job's own submission.
        for outcome in result.finished:
            assert outcome.jct > 0

    def test_single_job_cluster(self):
        spec = JobSpec("only", LDA, DATASETS["LDA"][1], iterations=3)
        result = HarmonyRuntime(8, [spec]).run()
        assert len(result.finished) == 1

    def test_duplicate_submission_rejected(self):
        spec = JobSpec("dup", LDA, DATASETS["LDA"][1], iterations=2)
        runtime = HarmonyRuntime(8, [spec, spec])
        with pytest.raises(SchedulingError):
            runtime.run()


class TestDeterminism:
    def test_same_seed_reproduces_exactly(self):
        jobs = WorkloadGenerator(9).base_workload(hyper_params_per_pair=1)
        first = HarmonyRuntime(16, jobs).run()
        second = HarmonyRuntime(16, jobs).run()
        assert first.makespan == second.makespan
        assert first.mean_jct == second.mean_jct

    def test_different_seed_differs(self):
        jobs = WorkloadGenerator(9).base_workload(hyper_params_per_pair=1)
        config = SimConfig(seed=99)
        first = HarmonyRuntime(16, jobs).run()
        second = HarmonyRuntime(16, jobs, config=config).run()
        assert first.makespan != second.makespan

    def test_outcomes_invariant_under_hash_randomization(self):
        """Regression for a set-iteration-order bug in
        HarmonyMaster._apply_plan: group matching iterated a set, so
        migrations could differ between processes with different
        PYTHONHASHSEED values.  The whole-run outcome digest must be
        identical across hash seeds."""
        script = (
            "from repro.core.runtime import HarmonyRuntime\n"
            "from repro.workloads.generator import WorkloadGenerator\n"
            "jobs = WorkloadGenerator(3).base_workload("
            "hyper_params_per_pair=1)\n"
            "result = HarmonyRuntime(24, jobs).run()\n"
            "print(';'.join("
            "f'{o.job_id}:{o.finish_time:.9f}:{o.migrations}'"
            " for o in sorted(result.outcomes.values(),"
            " key=lambda o: o.job_id)))\n")
        digests = set()
        for hash_seed in ("1", "2", "42"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.path.join(
                os.path.dirname(os.path.dirname(
                    os.path.abspath(__file__))), "src")
            proc = subprocess.run([sys.executable, "-c", script],
                                  capture_output=True, text=True,
                                  env=env, check=True)
            digests.add(proc.stdout.strip())
        assert len(digests) == 1


class TestBudgetedRun:
    def test_max_sim_seconds_truncates(self):
        jobs = WorkloadGenerator(3).base_workload(hyper_params_per_pair=1)
        runtime = HarmonyRuntime(24, jobs)
        runtime.run(max_sim_seconds=60.0)
        assert runtime.sim.now <= 60.0 + 1e-6

    def test_unfinished_jobs_raise_without_budget(self):
        """A cluster too small for a job's memory floor deadlocks its
        admission; the runtime must report that loudly."""
        spec = JobSpec("too-big", LDA, DATASETS["LDA"][0],
                       compute_scale=50.0, iterations=10_000)
        runtime = HarmonyRuntime(8, [spec])
        result = runtime.run(max_sim_seconds=100.0)
        assert len(result.finished) == 0
