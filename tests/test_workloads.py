"""Tests for the workload substrate: specs, cost model, generators,
arrivals, and traces."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import WorkloadError
from repro.workloads import (
    APPS,
    CostModel,
    DATASETS,
    JobSpec,
    LDA,
    MLR,
    WorkloadGenerator,
    batch_arrivals,
    comm_intensive_subset,
    comp_intensive_subset,
    google_trace_arrivals,
    make_base_workload,
    poisson_arrivals,
    with_arrival_times,
)
from repro.workloads.traces import google_trace_windows


class TestJobSpec:
    def test_cpu_work_scales_with_hyper_params(self):
        base = JobSpec("a", MLR, DATASETS["MLR"][0])
        double = JobSpec("b", MLR, DATASETS["MLR"][0], compute_scale=2.0)
        assert double.cpu_work_machine_seconds == pytest.approx(
            2 * base.cpu_work_machine_seconds)

    def test_model_scales_with_hyper_params(self):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0], model_scale=1.5)
        assert spec.model_gb == pytest.approx(18.0)

    def test_rejects_nonpositive_iterations(self):
        with pytest.raises(WorkloadError):
            JobSpec("a", MLR, DATASETS["MLR"][0], iterations=0)

    def test_rejects_negative_submit_time(self):
        with pytest.raises(WorkloadError):
            JobSpec("a", MLR, DATASETS["MLR"][0], submit_time=-1.0)

    def test_table_one_inventory(self):
        assert set(APPS) == {"NMF", "LDA", "MLR", "Lasso"}
        assert DATASETS["NMF"][0].input_gb == 45.6
        assert DATASETS["LDA"][0].model_gb == 2.1
        assert DATASETS["MLR"][1].input_gb == 155.0


class TestCostModel:
    def test_comp_time_inverse_in_machines(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        assert cost_model.comp_seconds(spec, 8) == pytest.approx(
            2 * cost_model.comp_seconds(spec, 16))

    def test_comm_time_independent_of_machines(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        assert cost_model.profile(spec, 4).t_comm == pytest.approx(
            cost_model.profile(spec, 32).t_comm)

    def test_profile_composition(self, cost_model):
        spec = JobSpec("a", LDA, DATASETS["LDA"][0])
        profile = cost_model.profile(spec, 16)
        assert profile.t_iteration == pytest.approx(
            profile.t_pull + profile.t_comp + profile.t_push)
        assert 0.0 < profile.comp_ratio < 1.0

    def test_resident_bytes_decrease_with_alpha(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        assert cost_model.resident_bytes(spec, 8, alpha=0.8) < \
            cost_model.resident_bytes(spec, 8, alpha=0.2)

    def test_model_spill_reduces_residency(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        assert cost_model.model_resident_bytes(spec, 8,
                                               model_spilled=True) < \
            cost_model.model_resident_bytes(spec, 8)

    def test_memory_floor_monotone_in_alpha(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][1])
        assert cost_model.memory_floor(spec, alpha=1.0) <= \
            cost_model.memory_floor(spec, alpha=0.0)

    def test_reload_bytes_proportional(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        half = cost_model.reload_bytes_per_iteration(spec, 8, 0.5)
        full = cost_model.reload_bytes_per_iteration(spec, 8, 1.0)
        assert full == pytest.approx(2 * half)

    def test_invalid_alpha_raises(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        with pytest.raises(WorkloadError):
            cost_model.input_resident_bytes(spec, 8, alpha=1.5)

    def test_invalid_dop_raises(self, cost_model):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        with pytest.raises(WorkloadError):
            cost_model.comp_seconds(spec, 0)

    @settings(max_examples=40, deadline=None)
    @given(m=st.integers(1, 128), alpha=st.floats(0.0, 1.0))
    def test_resident_bytes_positive(self, m, alpha):
        spec = JobSpec("a", MLR, DATASETS["MLR"][0])
        assert CostModel().resident_bytes(spec, m, alpha) > 0


class TestGenerator:
    def test_base_workload_has_eighty_jobs(self):
        assert len(make_base_workload()) == 80

    def test_scaled_workload_counts(self):
        assert len(make_base_workload(hyper_params_per_pair=2)) == 16

    def test_deterministic_per_seed(self):
        a = make_base_workload(seed=5)
        b = make_base_workload(seed=5)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert [j.compute_scale for j in a] == \
            [j.compute_scale for j in b]

    def test_job_ids_unique(self):
        ids = [j.job_id for j in make_base_workload()]
        assert len(set(ids)) == len(ids)

    def test_characteristics_match_fig9(self):
        """Iteration times within ~0-20+ min, comp ratios well spread."""
        cost_model = CostModel()
        profiles = [cost_model.profile(job, 16)
                    for job in make_base_workload()]
        minutes = np.array([p.t_iteration / 60 for p in profiles])
        ratios = np.array([p.comp_ratio for p in profiles])
        assert minutes.max() < 25.0
        assert minutes.min() < 1.0
        assert ratios.min() < 0.35
        assert ratios.max() > 0.8

    def test_sized_workload(self):
        jobs = WorkloadGenerator(1).sized_workload(100)
        assert len(jobs) == 100

    def test_subsets_partition_by_comp_ratio(self):
        jobs = make_base_workload()
        comp = comp_intensive_subset(jobs, 60)
        comm = comm_intensive_subset(jobs, 60)
        cost_model = CostModel()
        comp_mean = np.mean([cost_model.profile(j, 16).comp_ratio
                             for j in comp])
        comm_mean = np.mean([cost_model.profile(j, 16).comp_ratio
                             for j in comm])
        assert comp_mean > comm_mean

    def test_subset_size_checked(self):
        with pytest.raises(WorkloadError):
            comp_intensive_subset(make_base_workload(), 100)


class TestArrivals:
    def test_batch_arrivals_all_zero(self):
        assert batch_arrivals(5) == [0.0] * 5

    def test_poisson_zero_mean_degenerates_to_batch(self):
        assert poisson_arrivals(4, 0.0) == [0.0] * 4

    def test_poisson_is_sorted_and_starts_at_zero(self):
        times = poisson_arrivals(20, 60.0, seed=3)
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_poisson_mean_gap_close_to_request(self):
        times = poisson_arrivals(2000, 60.0, seed=4)
        gaps = np.diff(times)
        assert np.mean(gaps) == pytest.approx(60.0, rel=0.1)

    def test_with_arrival_times_stamps_jobs(self):
        jobs = make_base_workload(hyper_params_per_pair=1)
        times = [float(i) for i in range(len(jobs))]
        stamped = with_arrival_times(jobs, times)
        assert [j.submit_time for j in stamped] == times

    def test_with_arrival_times_length_mismatch(self):
        jobs = make_base_workload(hyper_params_per_pair=1)
        with pytest.raises(WorkloadError):
            with_arrival_times(jobs, [0.0])

    def test_negative_counts_rejected(self):
        with pytest.raises(WorkloadError):
            batch_arrivals(-1)
        with pytest.raises(WorkloadError):
            poisson_arrivals(-1, 10.0)


class TestTraces:
    def test_trace_is_sorted_and_zero_based(self):
        times = google_trace_arrivals(50, seed=1)
        assert times == sorted(times)
        assert times[0] == 0.0

    def test_windows_are_distinct(self):
        a = google_trace_arrivals(50, window_index=0)
        b = google_trace_arrivals(50, window_index=1)
        assert a != b

    def test_traces_are_burstier_than_poisson(self):
        """The squared coefficient of variation of inter-arrival gaps
        exceeds a Poisson process's (~1) — the paper's "more diverse
        pattern of arrivals and job arrival spikes"."""
        times = google_trace_arrivals(400, burstiness=0.7, seed=2)
        gaps = np.diff(times)
        cv2 = np.var(gaps) / np.mean(gaps) ** 2
        assert cv2 > 1.2

    def test_window_count(self):
        windows = google_trace_windows(30, n_windows=4)
        assert len(windows) == 4

    def test_invalid_burstiness_rejected(self):
        with pytest.raises(WorkloadError):
            google_trace_arrivals(10, burstiness=1.0)
