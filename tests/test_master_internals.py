"""White-box tests of the HarmonyMaster's scheduling machinery."""

import pytest

from repro.cluster.cluster import Cluster
from repro.config import ExecutionConfig, MemoryConfig, SimConfig
from repro.core.job import JobState
from repro.core.master import HarmonyMaster
from repro.errors import SchedulingError
from repro.metrics.utilization import ClusterUsageRecorder
from repro.sim import RandomStreams, Simulator
from repro.workloads.apps import DATASETS, JobSpec, LDA, MLR
from repro.workloads.costmodel import CostModel


def build_master(n_machines=24, config=None):
    sim = Simulator()
    config = config if config is not None else SimConfig(
        execution=ExecutionConfig(duration_jitter_cv=0.0,
                                  barrier_overhead=0.0))
    cluster = Cluster(n_machines, config.machine)
    recorder = ClusterUsageRecorder(n_machines)
    master = HarmonyMaster(sim, cluster, CostModel(config.machine),
                           config, RandomStreams(config.seed), recorder)
    return sim, master


def lda_spec(job_id, iterations=5, **kwargs):
    return JobSpec(job_id, LDA, DATASETS["LDA"][1],
                   iterations=iterations, **kwargs)


def mlr_spec(job_id, iterations=5, **kwargs):
    return JobSpec(job_id, MLR, DATASETS["MLR"][0],
                   iterations=iterations, **kwargs)


class TestSubmission:
    def test_submit_enters_profiling_immediately(self):
        sim, master = build_master()
        job = master.submit(lda_spec("a"))
        assert job.state is JobState.PROFILING
        assert master.groups  # a bootstrap group exists

    def test_duplicate_submit_rejected(self):
        sim, master = build_master()
        master.submit(lda_spec("a"))
        with pytest.raises(SchedulingError):
            master.submit(lda_spec("a"))

    def test_bootstrap_group_size_covers_memory_floor(self):
        sim, master = build_master(n_machines=24)
        master.submit(mlr_spec("big"))
        group = next(iter(master.groups.values()))
        floor = master._memory_floor(["big"])
        assert group.n_machines >= floor

    def test_second_job_joins_profiling_group(self):
        """§IV-B1: deploy to 'a job group that is already profiling
        another new job'."""
        sim, master = build_master()
        master.submit(lda_spec("a"))
        master.submit(lda_spec("b"))
        assert len(master.groups) == 1

    def test_third_profiler_opens_new_group(self):
        """At most two concurrent profilees per group."""
        sim, master = build_master()
        for name in ("a", "b", "c"):
            master.submit(lda_spec(name))
        assert len(master.groups) == 2


class TestMemoryFloor:
    def test_floor_with_spill_is_small(self):
        sim, master = build_master()
        master.submit(mlr_spec("big"))
        assert master._memory_floor(["big"]) <= 4

    def test_floor_without_spill_is_larger(self):
        config = SimConfig(memory=MemoryConfig(spill_enabled=False))
        sim, master = build_master(config=config)
        master.submit(mlr_spec("big"))
        assert master._memory_floor(["big"]) >= 5

    def test_floor_sums_over_colocated_jobs(self):
        config = SimConfig(memory=MemoryConfig(spill_enabled=False))
        sim, master = build_master(config=config)
        master.submit(mlr_spec("a"))
        master.submit(mlr_spec("b"))
        single = master._memory_floor(["a"])
        double = master._memory_floor(["a", "b"])
        assert double > single

    def test_unplaceable_jobs_get_sentinel(self):
        sim, master = build_master(n_machines=8)
        master.submit(mlr_spec("huge", model_scale=40.0,
                               compute_scale=1.0))
        config_floor = master._memory_floor(["huge"])
        assert config_floor == master.cluster.size + 1


class TestSchedulableSets:
    def test_profiling_jobs_are_not_schedulable(self):
        sim, master = build_master()
        master.submit(lda_spec("a"))
        assert master._schedulable_metrics() == []

    def test_profiled_jobs_become_schedulable(self):
        sim, master = build_master()
        master.submit(lda_spec("a", iterations=500))
        # Run long enough for profiling (3 iterations) to complete,
        # but far short of the job's convergence.
        sim.run(until=2500.0)
        assert master.profiler.has("a")
        job = master.jobs["a"]
        assert job.state in (JobState.RUNNING, JobState.PROFILED,
                             JobState.PAUSED)
        assert len(master._schedulable_metrics()) == 1


class TestEndToEndInvariants:
    def _run(self, specs, n_machines=24):
        sim, master = build_master(n_machines)
        for spec in specs:
            sim.call_at(spec.submit_time,
                        lambda s=spec: master.submit(s))
        sim.run()
        return sim, master

    def test_machines_never_oversubscribed(self):
        specs = [lda_spec(f"j{i}", iterations=6) for i in range(6)]
        sim, master = self._run(specs)
        assert master.all_done
        assert master.cluster.n_free == master.cluster.size

    def test_every_decision_record_is_consistent(self):
        specs = [lda_spec(f"j{i}", iterations=8) for i in range(4)]
        sim, master = self._run(specs)
        for record in master.recorder.decisions:
            assert record.n_machines >= 1
            assert record.predicted_t_group > 0
            assert len(record.job_ids) >= 1
            if record.measured_t_group is not None:
                assert record.measured_t_group > 0

    def test_group_shape_log_matches_decisions(self):
        specs = [lda_spec(f"j{i}", iterations=8) for i in range(4)]
        sim, master = self._run(specs)
        assert len(master.group_shape_log) == \
            len(master.recorder.decisions)

    def test_pending_moves_drained_by_completion(self):
        specs = [lda_spec(f"j{i}", iterations=6) for i in range(5)]
        sim, master = self._run(specs)
        assert master._pending_moves == {}
        assert master._rebuild is None

    def test_mixed_workload_completes(self):
        specs = [lda_spec("small", iterations=6),
                 mlr_spec("large", iterations=4),
                 lda_spec("small2", iterations=6)]
        sim, master = self._run(specs)
        assert master.all_done
        assert all(job.state is JobState.FINISHED
                   for job in master.jobs.values())


class TestPeriodicCheck:
    def test_noop_when_nothing_profiled(self):
        sim, master = build_master()
        master.periodic_check()  # must not raise
        assert master._rebuild is None

    def test_cooldown_suppresses_back_to_back_applies(self):
        sim, master = build_master()
        master._last_apply_time = 0.0
        # Immediately after an apply, even a beneficial plan must wait.
        master.periodic_check()
        assert master._rebuild is None

    def test_check_skips_during_rebuild(self):
        sim, master = build_master()
        from repro.core.master import _Rebuild
        master._rebuild = _Rebuild(draining=set(), slots=[])
        master.periodic_check()  # no exception, no change
        assert master._rebuild is not None


class TestBalancedMachines:
    def test_balanced_m_reflects_ratio(self):
        sim, master = build_master(n_machines=24)
        master.submit(lda_spec("a", iterations=40))
        sim.run(until=7200.0)
        metrics = master.profiler.get("a")
        balanced = master._balanced_machines(metrics)
        if balanced is not None:
            assert 1 <= balanced <= 24

    def test_none_when_no_free_machines(self):
        from repro.core.profiler import JobMetrics
        sim, master = build_master(n_machines=4)
        master.cluster.allocate(master.cluster.n_free, "hog")
        stub = JobMetrics("stub", cpu_work=100.0, t_net=10.0,
                          m_observed=4)
        assert master._balanced_machines(stub) is None
