"""Tests for the ML workloads: datasets, models, convergence."""

import numpy as np
import pytest

from repro.errors import ConvergenceError, WorkloadError
from repro.ml import (
    ConvergenceTracker,
    LDAModel,
    LassoModel,
    MLRModel,
    NMFModel,
    make_classification,
    make_documents,
    make_ratings,
    make_regression,
)
from repro.ml.base import TrainState
from repro.ml.datasets import partition_rows
from repro.ml.lasso import soft_threshold


class TestDatasets:
    def test_classification_shapes(self):
        features, labels, true_w = make_classification(100, 10, 4, seed=1)
        assert features.shape == (100, 10)
        assert labels.shape == (100,)
        assert true_w.shape == (10, 4)
        assert set(np.unique(labels)) <= set(range(4))

    def test_classification_deterministic_per_seed(self):
        a = make_classification(50, 5, 3, seed=9)[0]
        b = make_classification(50, 5, 3, seed=9)[0]
        assert np.allclose(a, b)

    def test_classification_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            make_classification(0, 5, 3)

    def test_regression_sparsity(self):
        _, _, true_w = make_regression(100, 200, sparsity=0.9, seed=2)
        assert np.mean(true_w == 0.0) >= 0.8

    def test_regression_rejects_bad_sparsity(self):
        with pytest.raises(WorkloadError):
            make_regression(10, 10, sparsity=1.0)

    def test_ratings_are_non_negative(self):
        coords, values = make_ratings(30, 20, density=0.2, seed=3)
        assert values.min() > 0
        assert coords[:, 0].max() < 30
        assert coords[:, 1].max() < 20

    def test_ratings_density_controls_nnz(self):
        coords, _ = make_ratings(40, 40, density=0.1, seed=1)
        assert len(coords) == 160

    def test_documents_word_ids_in_vocab(self):
        documents = make_documents(10, vocab_size=25, doc_length=15,
                                   seed=4)
        assert len(documents) == 10
        for doc in documents:
            assert len(doc) == 15
            assert doc.max() < 25

    def test_partition_rows_covers_everything(self):
        parts = partition_rows(10, 3)
        joined = np.concatenate(parts)
        assert sorted(joined.tolist()) == list(range(10))

    def test_partition_rows_rejects_zero(self):
        with pytest.raises(WorkloadError):
            partition_rows(10, 0)


def _loss_curve(model, partition, epochs=25, lr=0.3, seed=0):
    """Train single-worker via the raw compute/update cycle."""
    rng = np.random.default_rng(seed)
    params = model.init_params(rng)
    state = TrainState(learning_rate=lr)
    losses = []
    for epoch in range(epochs):
        state.iteration = epoch
        deltas, loss = model.compute(params, partition, state)
        for key, delta in deltas.items():
            params[key] = params[key] + delta
        losses.append(loss)
    return losses, params


class TestMLR:
    def test_loss_decreases(self):
        features, labels, _ = make_classification(300, 12, 4, seed=5)
        model = MLRModel(12, 4)
        losses, _ = _loss_curve(model, {"X": features, "y": labels},
                                lr=0.5)
        assert losses[-1] < losses[0] * 0.8

    def test_accuracy_beats_chance(self):
        features, labels, _ = make_classification(400, 12, 4, seed=6)
        model = MLRModel(12, 4)
        _, params = _loss_curve(model, {"X": features, "y": labels},
                                epochs=40, lr=0.5)
        assert model.accuracy(params, features, labels) > 0.5

    def test_param_blocks_cover_all_classes(self):
        model = MLRModel(7, 10)
        params = model.init_params(np.random.default_rng(0))
        total_columns = sum(v.shape[1] for v in params.values())
        assert total_columns == 10

    def test_rejects_single_class(self):
        with pytest.raises(WorkloadError):
            MLRModel(5, 1)


class TestLasso:
    def test_soft_threshold_shrinks_toward_zero(self):
        values = np.array([-2.0, -0.5, 0.0, 0.5, 2.0])
        shrunk = soft_threshold(values, 1.0)
        assert np.allclose(shrunk, [-1.0, 0.0, 0.0, 0.0, 1.0])

    def test_loss_decreases(self):
        # Moderate sparsity so the targets carry real signal.
        features, targets, _ = make_regression(200, 30, sparsity=0.5,
                                               seed=7)
        model = LassoModel(30, l1=0.01)
        losses, _ = _loss_curve(model, {"X": features, "y": targets},
                                epochs=30)
        assert losses[-1] < losses[0] * 0.5

    def test_l1_produces_sparsity(self):
        features, targets, _ = make_regression(300, 50, sparsity=0.9,
                                               seed=8)
        model = LassoModel(50, l1=0.05)
        _, params = _loss_curve(model, {"X": features, "y": targets},
                                epochs=60, lr=0.3)
        assert model.sparsity(params, tolerance=1e-4) > 0.3

    def test_rejects_zero_features(self):
        with pytest.raises(WorkloadError):
            LassoModel(0)


class TestNMF:
    def test_loss_decreases(self):
        coords, values = make_ratings(50, 30, rank=4, density=0.2,
                                      seed=9)
        model = NMFModel(50, 30, rank=4)
        partition = {"coords": coords, "values": values,
                     "W": np.random.default_rng(1).uniform(
                         0.1, 0.5, size=(50, 4))}
        losses, _ = _loss_curve(model, partition, epochs=40, lr=0.5)
        assert losses[-1] < losses[0] * 0.9

    def test_factors_stay_non_negative(self):
        coords, values = make_ratings(30, 20, rank=3, density=0.3,
                                      seed=10)
        model = NMFModel(30, 20, rank=3)
        partition = {"coords": coords, "values": values,
                     "W": np.random.default_rng(2).uniform(
                         0.1, 0.5, size=(30, 3))}
        _, params = _loss_curve(model, partition, epochs=20, lr=0.5)
        for value in params.values():
            assert value.min() >= 0.0
        assert partition["W"].min() >= 0.0

    def test_rejects_bad_dims(self):
        with pytest.raises(WorkloadError):
            NMFModel(0, 5)


class TestLDA:
    def _partition(self, seed=11):
        documents = make_documents(15, vocab_size=30, n_topics=3,
                                   doc_length=20, seed=seed)
        return {"docs": documents}

    def test_requires_seeding(self):
        model = LDAModel(30, n_topics=3)
        params = model.init_params(np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            model.compute(params, self._partition(), TrainState())

    def test_seed_deltas_count_every_token(self):
        model = LDAModel(30, n_topics=3)
        partition = self._partition()
        deltas = model.seed_partition(partition,
                                      np.random.default_rng(1))
        n_tokens = sum(len(doc) for doc in partition["docs"])
        assert deltas["topic_total"].sum() == pytest.approx(n_tokens)
        assert deltas["topic_word"].sum() == pytest.approx(n_tokens)

    def test_gibbs_deltas_conserve_counts(self):
        """Resampling moves tokens between topics but never creates or
        destroys them."""
        model = LDAModel(30, n_topics=3)
        partition = self._partition()
        params = model.init_params(np.random.default_rng(0))
        seed_deltas = model.seed_partition(partition,
                                           np.random.default_rng(1))
        for key in params:
            params[key] = params[key] + seed_deltas[key]
        deltas, _ = model.compute(params, partition, TrainState())
        assert deltas["topic_total"].sum() == pytest.approx(0.0)
        assert deltas["topic_word"].sum() == pytest.approx(0.0)

    def test_objective_improves(self):
        model = LDAModel(30, n_topics=3)
        partition = self._partition()
        params = model.init_params(np.random.default_rng(0))
        seed_deltas = model.seed_partition(partition,
                                           np.random.default_rng(1))
        for key in params:
            params[key] = params[key] + seed_deltas[key]
        losses = []
        state = TrainState()
        for epoch in range(8):
            state.iteration = epoch
            deltas, loss = model.compute(params, partition, state)
            for key in params:
                params[key] = params[key] + deltas[key]
            losses.append(loss)
        assert losses[-1] < losses[0]


class TestConvergenceTracker:
    def test_threshold_stops(self):
        tracker = ConvergenceTracker(threshold=0.5)
        assert tracker.record(1.0) is False
        assert tracker.record(0.4) is True

    def test_plateau_stops_after_patience(self):
        tracker = ConvergenceTracker(relative_tolerance=0.01, patience=2)
        assert tracker.record(1.0) is False
        assert tracker.record(0.999) is False
        assert tracker.record(0.998) is True

    def test_improvement_resets_patience(self):
        tracker = ConvergenceTracker(relative_tolerance=0.01, patience=2)
        tracker.record(1.0)
        tracker.record(0.999)      # stall 1
        assert tracker.record(0.5) is False  # big improvement resets
        assert tracker.record(0.499) is False

    def test_nan_raises(self):
        tracker = ConvergenceTracker()
        with pytest.raises(ConvergenceError):
            tracker.record(float("nan"))

    def test_inf_raises(self):
        with pytest.raises(ConvergenceError):
            ConvergenceTracker().record(float("inf"))

    def test_max_epochs_caps(self):
        tracker = ConvergenceTracker(relative_tolerance=0.0,
                                     max_epochs=3)
        assert tracker.record(3.0) is False
        assert tracker.record(2.0) is False
        assert tracker.record(1.0) is True

    def test_best_tracks_minimum(self):
        tracker = ConvergenceTracker()
        tracker.record(2.0)
        tracker.record(1.0)
        tracker.record(1.5)
        assert tracker.best == 1.0

    def test_best_requires_history(self):
        with pytest.raises(ConvergenceError):
            ConvergenceTracker().best
