"""Tests for the observability layer (repro.trace) and its wiring."""

import json
import time

import pytest

from repro.config import SimConfig
from repro.core.runtime import HarmonyRuntime
from repro.core.subtask import SubTaskKind
from repro.core.synchronizer import SubTaskSynchronizer
from repro.errors import TraceError
from repro.experiments.common import run_single_group, scaled_workload
from repro.sim import Simulator
from repro.trace import (
    NULL_TRACER,
    TraceConfig,
    Tracer,
    build_tracer,
    chrome_trace_events,
    counter_rows,
    write_chrome_trace,
)
from repro.workloads.generator import WorkloadGenerator


def _manual_clock(start: float = 0.0):
    state = {"now": start}

    def clock() -> float:
        return state["now"]

    def advance(dt: float) -> None:
        state["now"] += dt

    return clock, advance


class TestTracer:
    def test_begin_end_records_span(self):
        clock, advance = _manual_clock()
        tracer = Tracer(clock)
        track = tracer.track("p", "t")
        handle = tracer.begin(track, "work", cat="comp")
        assert tracer.open_spans == 1
        advance(2.5)
        span = tracer.end(handle)
        assert tracer.open_spans == 0
        assert span.duration == pytest.approx(2.5)
        assert tracer.spans == [span]

    def test_double_close_raises(self):
        tracer = Tracer(lambda: 0.0)
        handle = tracer.begin(tracer.track("p", "t"), "work")
        tracer.end(handle)
        with pytest.raises(TraceError):
            tracer.end(handle)

    def test_backwards_span_raises(self):
        tracer = Tracer(lambda: 0.0)
        with pytest.raises(TraceError):
            tracer.complete(tracer.track("p", "t"), "w", start=5.0,
                            end=1.0)

    def test_event_cap_counts_drops(self):
        tracer = Tracer(lambda: 0.0,
                        TraceConfig(enabled=True, max_events=2))
        track = tracer.track("p", "t")
        for _ in range(5):
            tracer.complete(track, "w", start=0.0, end=0.0)
        assert len(tracer.spans) == 2
        assert tracer.dropped_events == 3

    def test_track_interning_is_stable(self):
        tracer = Tracer(lambda: 0.0)
        a = tracer.track("machines 0-3", "cpu · j1")
        b = tracer.track("machines 0-3", "cpu · j1")
        c = tracer.track("machines 0-3", "net · j1")
        assert a == b
        assert a.pid == c.pid and a.tid != c.tid

    def test_registry_total_sums_suffix(self):
        tracer = Tracer(lambda: 0.0)
        tracer.counter("job.a.steps").add(3)
        tracer.counter("job.b.steps").add(4)
        tracer.counter("job.a.bytes").add(100)
        assert tracer.registry.total(".steps") == pytest.approx(7)

    def test_build_tracer_disabled_is_null(self):
        assert build_tracer(lambda: 0.0, TraceConfig()) is NULL_TRACER
        live = build_tracer(lambda: 0.0, TraceConfig(enabled=True))
        assert live.enabled

    def test_null_tracer_is_inert(self):
        handle = NULL_TRACER.begin(NULL_TRACER.track("p", "t"), "w")
        NULL_TRACER.end(handle)
        NULL_TRACER.instant("x")
        NULL_TRACER.counter("c").add(5)
        NULL_TRACER.gauge("g").set(5)
        assert NULL_TRACER.n_events == 0
        assert NULL_TRACER.registry.snapshot() == {}


class TestDisabledTracingCostsNothing:
    def test_simulator_defaults_to_null_tracer(self):
        assert Simulator().tracer is NULL_TRACER

    def test_single_group_run_records_no_events(self):
        jobs = WorkloadGenerator(7).base_workload(
            hyper_params_per_pair=1)[:2]
        result = run_single_group(jobs, 8, max_iterations=3)
        assert result.trace is None
        assert NULL_TRACER.n_events == 0
        assert not NULL_TRACER.registry.counters

    def test_cluster_run_has_no_trace(self):
        specs, machines = scaled_workload(scale=0.1, seed=5)
        runtime = HarmonyRuntime(machines, specs[:3])
        assert runtime.sim.tracer is NULL_TRACER
        result = runtime.run()
        assert result.trace is None


class TestBarrierSpans:
    def test_waiting_worker_records_barrier_span(self):
        tracer = Tracer(time.perf_counter)
        synchronizer = SubTaskSynchronizer(timeout=10.0, tracer=tracer)
        synchronizer.register_job("j", 2)

        import threading
        passed = []

        def late_arrival():
            time.sleep(0.05)
            passed.append(synchronizer.arrive("j", 0, SubTaskKind.PULL))

        thread = threading.Thread(target=late_arrival)
        thread.start()
        # This (early) worker blocks at the barrier until the late one
        # arrives — exactly the wait the span must capture.
        passed.append(synchronizer.arrive("j", 0, SubTaskKind.PULL))
        thread.join()

        assert passed == [True, True]
        assert tracer.open_spans == 0  # every begun span was closed
        barrier_spans = [s for s in tracer.spans if s.cat == "barrier"]
        assert len(barrier_spans) == 1  # only the blocked worker waited
        assert barrier_spans[0].name == "barrier·pull"
        assert barrier_spans[0].duration > 0.0
        wait = tracer.registry.counters["job.j.barrier_wait_seconds"]
        assert wait.value == pytest.approx(barrier_spans[0].duration)

    def test_untraced_synchronizer_still_works(self):
        synchronizer = SubTaskSynchronizer(timeout=5.0)
        synchronizer.register_job("j", 1)
        assert synchronizer.arrive("j", 0, SubTaskKind.PUSH)


class TestTracedRuns:
    @pytest.fixture(scope="class")
    def traced_result(self):
        config = SimConfig().with_tracing()
        specs, machines = scaled_workload(scale=0.1, seed=3)
        runtime = HarmonyRuntime(machines, specs[:5], config=config)
        return runtime.run()

    def test_spans_all_closed(self, traced_result):
        tracer = traced_result.trace
        assert tracer is not None
        assert tracer.open_spans == 0
        assert len(tracer.spans) > 0

    def test_subtask_pipeline_spans_present(self, traced_result):
        names = {span.name for span in traced_result.trace.spans}
        assert {"PULL", "COMP", "PUSH"} <= names

    def test_scheduler_instants_present(self, traced_result):
        names = {i.name for i in traced_result.trace.instants}
        assert "placement" in names
        assert "group-start" in names

    def test_counters_survive_regroup(self, traced_result):
        """Per-job counters accumulate across migrations/regroupings:
        total steps equals the workload's total iterations no matter
        how many times jobs moved between groups."""
        migrations = sum(o.migrations
                        for o in traced_result.outcomes.values())
        assert migrations > 0  # the run actually regrouped
        registry = traced_result.trace.registry
        for outcome in traced_result.outcomes.values():
            steps = registry.counters[f"job.{outcome.job_id}.steps"]
            assert steps.value > 0
        # Every executed cycle incremented exactly one steps counter.
        assert registry.total(".steps") == len(
            traced_result._all_cycles)

    def test_chrome_export_valid_and_monotone(self, traced_result,
                                              tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json",
                                  traced_result.trace)
        with path.open() as handle:
            document = json.load(handle)  # raises if not valid JSON
        events = document["traceEvents"]
        payload = [e for e in events if e["ph"] != "M"]
        assert payload, "trace must contain payload events"
        timestamps = [e["ts"] for e in payload]
        assert timestamps == sorted(timestamps)
        assert {e["ph"] for e in payload} <= {"X", "i", "C"}
        for event in payload:
            if event["ph"] == "X":
                assert event["dur"] >= 0.0

    def test_metadata_names_every_track(self, traced_result):
        events = chrome_trace_events(traced_result.trace)
        named_pids = {e["pid"] for e in events
                      if e["ph"] == "M" and e["name"] == "process_name"}
        payload_pids = {e["pid"] for e in events if e["ph"] != "M"}
        assert payload_pids - {0} <= named_pids

    def test_counter_rows_sorted(self, traced_result):
        rows = counter_rows(traced_result.trace)
        assert rows == sorted(rows)
        names = [name for _kind, name, _value in rows]
        assert any(name == "scheduler.migrations" for name in names)

    # -- event-ordering guarantees (what repro.check relies on) --------

    def test_instants_recorded_in_time_order(self, traced_result):
        times = [i.time for i in traced_result.trace.instants]
        assert times == sorted(times)
        assert times[0] >= 0.0

    def test_spans_have_sane_bounds(self, traced_result):
        for span in traced_result.trace.spans:
            assert span.start >= 0.0
            assert span.end >= span.start

    def test_service_lanes_never_overlap(self, traced_result):
        """Per-machine lane monotonicity: each (process, thread) lane
        serves one subtask at a time, so its service spans — sorted by
        start — form a chain of disjoint intervals."""
        service = {"comp", "comm", "load", "reload", "checkpoint",
                   "stall", "wait"}
        lanes = {}
        for span in traced_result.trace.spans:
            if span.cat in service:
                key = (span.track.pid, span.track.tid)
                lanes.setdefault(key, []).append(span)
        assert lanes
        for spans in lanes.values():
            spans.sort(key=lambda s: (s.start, s.end))
            for prev, cur in zip(spans, spans[1:], strict=False):
                assert cur.start >= prev.end - 1e-9, \
                    f"{cur.name} overlaps {prev.name}"

    def test_group_start_instants_join_pid_to_mode(self, traced_result):
        """The checker maps trace lanes to execution modes through the
        group-start instants; pin the args they must carry."""
        starts = [i for i in traced_result.trace.instants
                  if i.name == "group-start"]
        assert starts
        for instant in starts:
            assert instant.args is not None
            assert {"group", "machines", "mode"} <= instant.args.keys()
        # Every group process name ends with the group id announced in
        # a group-start instant, so the join is total.
        announced = {str(i.args["group"]) for i in starts}
        tracer = traced_result.trace
        group_pids = {pid for pid, name in tracer.process_names.items()
                      if name.rsplit(" · ", 1)[-1] in announced}
        span_pids = {s.track.pid for s in tracer.spans
                     if s.cat in {"comp", "comm"}}
        assert span_pids <= group_pids

    def test_checker_accepts_a_real_traced_run(self, traced_result):
        from repro.check import InvariantChecker

        tracer = traced_result.trace
        horizon = max(
            [s.end for s in tracer.spans]
            + [i.time for i in tracer.instants])
        out = []
        InvariantChecker().check_trace(tracer, horizon, out)
        assert out == []
