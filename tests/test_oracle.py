"""Tests for the exhaustive-search Oracle scheduler."""


import pytest

from repro.baselines.oracle import OracleScheduler, set_partitions
from repro.core.profiler import JobMetrics
from repro.core.scheduler import HarmonyScheduler
from repro.errors import SchedulingError


def metrics(job_id, cpu_work, t_net):
    return JobMetrics(job_id, cpu_work=cpu_work, t_net=t_net,
                      m_observed=1)


#: Bell numbers B(1)..B(5): the count of set partitions of n items.
_BELL = {1: 1, 2: 2, 3: 5, 4: 15, 5: 52}


def bell(n: int) -> int:
    return _BELL[n]


class TestSetPartitions:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_counts_match_bell_numbers(self, n):
        items = list(range(n))
        assert sum(1 for _ in set_partitions(items)) == bell(n)

    def test_partitions_are_distinct(self):
        seen = set()
        for partition in set_partitions(list(range(4))):
            key = frozenset(frozenset(group) for group in partition)
            assert key not in seen
            seen.add(key)

    def test_every_partition_covers_items(self):
        items = list(range(4))
        for partition in set_partitions(items):
            flat = sorted(x for group in partition for x in group)
            assert flat == items

    def test_max_group_size_respected(self):
        for partition in set_partitions(list(range(5)),
                                        max_group_size=2):
            assert all(len(group) <= 2 for group in partition)

    def test_empty_items(self):
        assert list(set_partitions([])) == [[]]


class TestOracleScheduler:
    def _pool(self, n=5):
        return [metrics(f"j{i}", 50.0 + 30.0 * i, 10.0 + 5.0 * i)
                for i in range(n)]

    def test_oracle_never_worse_than_greedy(self):
        pool = self._pool(6)
        oracle_plan = OracleScheduler().schedule(pool, 24)
        greedy_plan = HarmonyScheduler().schedule(pool, 24)
        assert oracle_plan.score >= greedy_plan.score - 1e-9

    def test_gap_is_small(self):
        """Fig. 14: the greedy decision lands within a few percent."""
        pool = self._pool(6)
        oracle_plan = OracleScheduler().schedule(pool, 24)
        greedy_plan = HarmonyScheduler().schedule(pool, 24)
        assert greedy_plan.score >= 0.85 * oracle_plan.score

    def test_search_size_reported(self):
        oracle = OracleScheduler()
        oracle.schedule(self._pool(4), 16)
        assert oracle.last_search_size > bell(4)  # prefixes add up

    def test_too_many_jobs_rejected(self):
        oracle = OracleScheduler(max_jobs=4)
        with pytest.raises(SchedulingError):
            oracle.schedule(self._pool(5), 16)

    def test_empty_pool(self):
        assert OracleScheduler().schedule([], 4) is None

    def test_plan_within_budget(self):
        plan = OracleScheduler().schedule(self._pool(5), 12)
        assert plan.machines_used <= 12

    def test_respects_memory_floor(self):
        oracle = OracleScheduler(memory_floor=lambda ids: 5)
        plan = oracle.schedule(self._pool(3), 30)
        assert all(group.n_machines >= 5 for group in plan.groups)
