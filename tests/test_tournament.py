"""The tournament driver (repro.experiments.tournament)."""

from __future__ import annotations

import json

import pytest

from repro.experiments.tournament import (
    CellResult,
    TournamentParams,
    _check_expect,
    _leaderboard,
    _sanity_problems,
    main,
    one_line,
    run,
    to_json,
    write_csv,
)

MINI = TournamentParams(
    seed=0, scale=0.2,
    policies=("harmony", "naive", "isolated", "fcfs"),
    arrivals=("batch",), cluster_scales=(1.0,),
    engines=("fast", "reference"))


@pytest.fixture(scope="module")
def mini_result():
    return run(MINI)


def _cell(policy, jct, makespan=1000.0, arrival="batch", machines=20,
          engine="fast", failed=0):
    return CellResult(
        policy=policy, arrival=arrival, n_machines=machines,
        engine=engine, mean_jct=jct, makespan=makespan,
        cpu_utilization=0.5, net_utilization=0.3, n_finished=4,
        n_failed=failed, wall_seconds=0.0)


class TestLeaderboard:
    def test_normalizes_per_scenario_and_ranks(self):
        cells = (_cell("a", 100.0), _cell("b", 200.0),
                 _cell("a", 300.0, engine="reference"),
                 _cell("b", 150.0, engine="reference"))
        rows = _leaderboard(cells, ("a", "b"))
        by_name = {row.policy: row for row in rows}
        # a: 1.0 and 2.0 -> 1.5; b: 2.0 and 1.0 -> 1.5 — exact tie,
        # broken alphabetically.
        assert by_name["a"].jct_score == pytest.approx(1.5)
        assert by_name["b"].jct_score == pytest.approx(1.5)
        assert [row.policy for row in rows] == ["a", "b"]
        assert [row.rank for row in rows] == [1, 2]

    def test_winner_scores_one(self):
        cells = (_cell("fast", 10.0), _cell("slow", 30.0))
        rows = _leaderboard(cells, ("fast", "slow"))
        assert rows[0].policy == "fast"
        assert rows[0].jct_score == pytest.approx(1.0)
        assert rows[1].jct_score == pytest.approx(3.0)


class TestRun:
    def test_cell_grid_shape(self, mini_result):
        assert len(mini_result.cells) == 4 * 1 * 1 * 2
        assert len(mini_result.leaderboard) == 4
        assert set(mini_result.ordering()) == set(MINI.policies)

    def test_clean_under_invariants_and_engines_agree(self, mini_result):
        assert mini_result.n_violations == 0
        assert mini_result.engine_disagreements == ()

    def test_harmony_beats_the_uncoordinated_field(self, mini_result):
        scores = {row.policy: row.jct_score
                  for row in mini_result.leaderboard}
        assert scores["harmony"] < scores["naive"]
        assert scores["harmony"] < scores["fcfs"]
        assert _sanity_problems(mini_result) == []

    def test_deterministic_across_repeat_runs(self, mini_result):
        again = run(MINI)

        def simulated(result):  # drop the only real-time field
            return [{k: v for k, v in cell.items()
                     if k != "wall_seconds"}
                    for cell in to_json(result)["cells"]]

        # harmony: allow[DET006] exact reproducibility is the property under test
        assert simulated(again) == simulated(mini_result)

    def test_unknown_arrival_rejected(self):
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            run(TournamentParams(policies=("fcfs",),
                                 arrivals=("lognormal",)))


class TestPersistence:
    def test_json_round_trip_and_expect(self, mini_result, tmp_path):
        payload = to_json(mini_result)
        expect = tmp_path / "expect.json"
        expect.write_text(json.dumps(payload))
        assert _check_expect(mini_result, str(expect)) == []
        payload["ordering"] = list(reversed(payload["ordering"]))
        expect.write_text(json.dumps(payload))
        problems = _check_expect(mini_result, str(expect))
        assert len(problems) == 1
        assert "ordering changed" in problems[0]

    def test_csv_writer(self, mini_result, tmp_path):
        path = tmp_path / "tournament.csv"
        write_csv(mini_result, str(path))
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("rank,policy,jct_score")
        # leaderboard rows + blank + cell header + cell rows
        assert len(lines) >= 1 + 4 + 1 + 8

    def test_one_line_summary(self, mini_result):
        line = one_line(mini_result)
        assert "tournament[seed=0]" in line
        assert "violations=0" in line


class TestCli:
    def test_list_policies(self, capsys):
        assert main(["--list-policies"]) == 0
        out = capsys.readouterr().out
        assert "harmony" in out and "cassini" in out

    def test_expect_replay_through_cli(self, tmp_path, capsys):
        expect = tmp_path / "expect.json"
        expect.write_text(json.dumps(to_json(run(TournamentParams(
            seed=0, scale=0.2, policies=("fcfs", "easy"),
            arrivals=("batch",), cluster_scales=(1.0,),
            engines=("fast",))))))
        output = tmp_path / "out.json"
        code = main(["--seed", "0", "--expect", str(expect),
                     "--assert-sanity", "--output", str(output)])
        assert code == 0
        written = json.loads(output.read_text())
        # The replay adopted the expect file's parameters.
        assert written["params"]["policies"] == ["fcfs", "easy"]
        assert written["ordering"] == json.loads(
            expect.read_text())["ordering"]
