"""Tests for the §VI extensions: failures, all-reduce, interference."""

import numpy as np
import pytest

from repro.cluster.allreduce import AllReduceModel
from repro.config import ExecutionConfig, SimConfig
from repro.config import GB, MachineSpec
from repro.core.runtime import HarmonyRuntime
from repro.errors import WorkloadError
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator


def small_workload(seed=3):
    return WorkloadGenerator(seed).base_workload(hyper_params_per_pair=1)


class TestMachineFailures:
    def test_all_jobs_still_finish(self):
        runtime = HarmonyRuntime(24, small_workload(),
                                 failure_times=[3600.0, 10800.0])
        result = runtime.run()
        assert len(result.finished) == 8
        assert runtime.master.failures_injected >= 1

    def test_failure_loses_checkpointed_progress_only(self):
        """Victims restart with at most checkpoint_interval extra
        iterations, never more than the job's total."""
        runtime = HarmonyRuntime(24, small_workload(),
                                 failure_times=[3600.0])
        result = runtime.run()
        for outcome in result.finished:
            assert outcome.finish_time is not None

    def test_failure_on_free_machine_is_harmless(self):
        runtime = HarmonyRuntime(24, small_workload())
        # Directly poke the master with a machine that is never used.
        affected = runtime.master.inject_machine_failure(23)
        assert affected == []

    def test_crashed_group_releases_machines(self):
        """After a mid-run failure the cluster ledger stays
        consistent (everything released at the end)."""
        runtime = HarmonyRuntime(24, small_workload(),
                                 failure_times=[3600.0, 7200.0])
        runtime.run()
        assert runtime.cluster.n_free == runtime.cluster.size

    def test_failures_inflate_makespan_when_frequent(self):
        baseline = HarmonyRuntime(24, small_workload()).run()
        hammered = HarmonyRuntime(
            24, small_workload(),
            failure_times=list(np.arange(1, 20) * 1800.0)).run()
        assert hammered.makespan > baseline.makespan * 0.9
        assert len(hammered.finished) == 8


class TestAllReduce:
    def test_pull_is_free_under_allreduce(self):
        model = CostModel(comm_architecture="allreduce")
        job = small_workload()[4]
        assert model.pull_seconds(job, 8) == 0.0
        assert model.push_seconds(job, 8) > 0.0

    def test_sync_grows_with_workers_then_saturates(self):
        ring = AllReduceModel(MachineSpec())
        times = [ring.sync_seconds(GB, m) for m in (2, 4, 8, 64)]
        assert times == sorted(times)
        # Volume factor 2(m-1)/m saturates at 2x model size.
        assert times[-1] < 2.5 * times[0]

    def test_single_worker_sync_is_local(self):
        ring = AllReduceModel(MachineSpec())
        assert ring.sync_seconds(GB, 1) == 0.0

    def test_invalid_inputs_raise(self):
        ring = AllReduceModel(MachineSpec())
        with pytest.raises(ValueError):
            ring.sync_seconds(GB, 0)
        with pytest.raises(ValueError):
            ring.sync_seconds(-1.0, 2)

    def test_replica_memory_cost(self):
        """All-reduce replicates the model on every machine."""
        ps = CostModel()
        ring = CostModel(comm_architecture="allreduce")
        job = small_workload()[4]
        assert ring.model_resident_bytes(job, 16) > \
            ps.model_resident_bytes(job, 16)

    def test_unknown_architecture_rejected(self):
        with pytest.raises(WorkloadError):
            CostModel(comm_architecture="carrier-pigeon")

    def test_end_to_end_run_with_allreduce(self):
        runtime = HarmonyRuntime(
            24, small_workload(),
            cost_model=CostModel(comm_architecture="allreduce"),
            scheduler_name="harmony-allreduce")
        result = runtime.run()
        assert len(result.finished) == 8
        assert result.scheduler_name == "harmony-allreduce"


class TestInterference:
    def _noisy_config(self, probability):
        return SimConfig(execution=ExecutionConfig(
            comm_interference_probability=probability,
            comm_interference_max=3.0))

    def test_interference_slows_the_run(self):
        quiet = HarmonyRuntime(24, small_workload()).run()
        noisy = HarmonyRuntime(24, small_workload(),
                               config=self._noisy_config(0.3)).run()
        assert noisy.makespan > quiet.makespan

    def test_all_jobs_survive_interference(self):
        noisy = HarmonyRuntime(24, small_workload(),
                               config=self._noisy_config(0.2)).run()
        assert len(noisy.finished) == 8

    def test_zero_probability_is_noise_free(self):
        default = HarmonyRuntime(24, small_workload()).run()
        explicit = HarmonyRuntime(24, small_workload(),
                                  config=self._noisy_config(0.0)).run()
        assert default.makespan == explicit.makespan


class TestExtensionsDriver:
    def test_driver_runs_and_reports(self):
        from repro.experiments import extensions
        result = extensions.run(scale=0.2, n_failures=2)
        text = extensions.report(result)
        assert "fault tolerance" in text
        assert result.failure_slowdown > 0.5
        assert len(result.allreduce.finished) == \
            len(result.baseline.finished)


class TestDesignAblationsDriver:
    def test_driver_covers_all_variants(self):
        from repro.experiments import design_ablations
        result = design_ablations.run(scale=0.2)
        labels = [row.label for row in result.rows]
        assert "default" in labels
        assert "no secondary COMM" in labels
        assert "no periodic check" in labels
        assert "no swap fine-tuning" in labels
        assert any(label.startswith("admission=") for label in labels)
        assert "ablations" in design_ablations.report(result).lower()
