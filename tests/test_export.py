"""Tests for the CSV export helpers."""

import csv

import numpy as np
import pytest

from repro.metrics.export import (
    export_cdf,
    export_run_result,
    export_timeline,
    write_csv,
)
from repro.metrics.timeline import Timeline


def read_back(path):
    with open(path, newline="") as handle:
        return list(csv.reader(handle))


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        target = write_csv(tmp_path / "t.csv", ["a", "b"],
                           [(1, 2), (3, 4)])
        rows = read_back(target)
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_creates_parent_directories(self, tmp_path):
        target = write_csv(tmp_path / "deep/nested/t.csv", ["x"], [(1,)])
        assert target.exists()

    def test_width_mismatch_raises(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "t.csv", ["a"], [(1, 2)])


class TestExports:
    def test_timeline_export(self, tmp_path):
        timeline = Timeline(bin_seconds=60.0,
                            values=np.array([0.5, 1.0]))
        target = export_timeline(tmp_path / "tl.csv", timeline)
        rows = read_back(target)
        assert rows[0] == ["minute", "utilization"]
        assert rows[1] == ["0.0", "0.5000"]
        assert rows[2] == ["1.0", "1.0000"]

    def test_cdf_export(self, tmp_path):
        target = export_cdf(tmp_path / "cdf.csv", [3.0, 1.0, 2.0])
        rows = read_back(target)
        assert rows[0] == ["value", "cumulative_fraction"]
        assert [r[0] for r in rows[1:]] == ["1", "2", "3"]
        assert rows[-1][1] == "1.000000"

    def test_run_result_export(self, tmp_path):
        from repro.core import HarmonyRuntime
        from repro.workloads import WorkloadGenerator
        jobs = WorkloadGenerator(3).base_workload(
            hyper_params_per_pair=1)
        result = HarmonyRuntime(24, jobs).run()
        written = export_run_result(tmp_path, result)
        assert len(written) == 3
        job_rows = read_back(tmp_path / "harmony_jobs.csv")
        assert len(job_rows) == 1 + len(jobs)
        assert job_rows[0][0] == "job_id"
        timeline_rows = read_back(
            tmp_path / "harmony_cpu_timeline.csv")
        assert len(timeline_rows) > 10

    def test_run_result_export_includes_fault_log(self, tmp_path):
        from repro.core import HarmonyRuntime
        from repro.faults import FaultEvent, FaultKind, FaultPlan
        from repro.workloads import WorkloadGenerator
        jobs = WorkloadGenerator(3).base_workload(
            hyper_params_per_pair=1)
        plan = FaultPlan.build([FaultEvent(
            3600.0, FaultKind.MACHINE_CRASH, 5, duration=1800.0)],
            seed=1)
        result = HarmonyRuntime(24, jobs, fault_plan=plan).run()
        written = export_run_result(tmp_path, result)
        assert len(written) == 4
        fault_rows = read_back(tmp_path / "harmony_faults.csv")
        assert fault_rows[0][0] == "time_s"
        assert len(fault_rows) == 2
        assert fault_rows[1][1] == "machine_crash"
