"""Tests for measurement: timelines, recorder, stats, reporting."""

import numpy as np
import pytest

from repro.metrics import (
    ClusterUsageRecorder,
    DecisionRecord,
    Timeline,
    bin_segments,
    cdf_points,
    format_table,
    mean,
    percentile,
    speedup,
)
from repro.metrics.reporting import format_comparison
from repro.metrics.timeline import downsample
from repro.sim import RateResource, Simulator, serial
from repro.sim.resources import BusySegment


class TestStats:
    def test_mean_of_empty_is_zero(self):
        assert mean([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0

    def test_percentile(self):
        assert percentile(list(range(101)), 50) == 50.0
        assert percentile([], 50) == 0.0

    def test_speedup(self):
        assert speedup(10.0, 5.0) == 2.0
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_cdf_points_monotone(self):
        values, fractions = cdf_points([3.0, 1.0, 2.0])
        assert list(values) == [1.0, 2.0, 3.0]
        assert list(fractions) == pytest.approx([1 / 3, 2 / 3, 1.0])

    def test_cdf_points_empty(self):
        values, fractions = cdf_points([])
        assert len(values) == 0 and len(fractions) == 0


class TestBinSegments:
    def test_full_busy_bin(self):
        segments = [BusySegment(0.0, 60.0, 1.0)]
        bins = bin_segments(segments, t_end=60.0, bin_seconds=60.0)
        assert bins == pytest.approx([1.0])

    def test_partial_overlap_prorated(self):
        segments = [BusySegment(30.0, 90.0, 1.0)]
        bins = bin_segments(segments, t_end=120.0, bin_seconds=60.0)
        assert bins == pytest.approx([0.5, 0.5])

    def test_weight_scales_contribution(self):
        segments = [BusySegment(0.0, 60.0, 0.5)]
        bins = bin_segments(segments, t_end=60.0, bin_seconds=60.0,
                            weight=4.0)
        assert bins == pytest.approx([2.0])

    def test_segments_beyond_end_clipped(self):
        segments = [BusySegment(0.0, 1000.0, 1.0)]
        bins = bin_segments(segments, t_end=120.0, bin_seconds=60.0)
        assert len(bins) == 2

    def test_bad_bin_width_raises(self):
        with pytest.raises(ValueError):
            bin_segments([], t_end=10.0, bin_seconds=0.0)

    def test_matches_scalar_reference(self):
        """The vectorized inner accumulation must agree bin-for-bin
        with the straightforward per-bin loop."""
        def reference(segments, t_end, bin_seconds, t_start, weight):
            n_bins = max(1, int(np.ceil(
                max(0.0, t_end - t_start) / bin_seconds)))
            acc = np.zeros(n_bins)
            for segment in segments:
                lo = max(segment.start, t_start)
                hi = min(segment.end, t_end)
                if hi <= lo or segment.level <= 0:
                    continue
                first = int((lo - t_start) // bin_seconds)
                last = int(np.ceil((hi - t_start) / bin_seconds))
                for index in range(first, min(last, n_bins)):
                    bin_lo = t_start + index * bin_seconds
                    overlap = (min(hi, bin_lo + bin_seconds)
                               - max(lo, bin_lo))
                    if overlap > 0:
                        acc[index] += overlap * segment.level * weight
            return acc / bin_seconds

        rng = np.random.default_rng(42)
        for _ in range(50):
            t = 0.0
            segments = []
            for _ in range(int(rng.integers(1, 20))):
                t += rng.uniform(0.0, 30.0)
                end = t + rng.uniform(0.01, 300.0)
                segments.append(BusySegment(t, end, rng.uniform(0, 1)))
                t = end
            t_start = rng.uniform(0.0, 5.0)
            t_end = rng.uniform(10.0, t + 50.0)
            bin_seconds = rng.uniform(0.5, 90.0)
            weight = rng.uniform(0.5, 4.0)
            got = bin_segments(segments, t_end, bin_seconds,
                               t_start, weight)
            want = reference(segments, t_end, bin_seconds,
                             t_start, weight)
            assert got == pytest.approx(want, abs=1e-9)


class TestTimeline:
    def test_average_until_ignores_tail(self):
        timeline = Timeline(bin_seconds=60.0,
                            values=np.array([1.0, 1.0, 0.0, 0.0]))
        assert timeline.average_until(120.0) == pytest.approx(1.0)
        assert timeline.average() == pytest.approx(0.5)

    def test_times_minutes(self):
        timeline = Timeline(bin_seconds=120.0, values=np.zeros(3))
        assert list(timeline.times_minutes) == [0.0, 2.0, 4.0]

    def test_downsample_averages(self):
        assert list(downsample([1.0, 3.0, 5.0, 7.0], 2)) == [2.0, 6.0]

    def test_downsample_factor_one_identity(self):
        assert list(downsample([1.0, 2.0], 1)) == [1.0, 2.0]

    def test_downsample_bad_factor(self):
        with pytest.raises(ValueError):
            downsample([1.0], 0)


class TestRecorder:
    def _run_group(self, recorder, group_id, n_machines, busy, start=0.0):
        sim = Simulator(start_time=start)
        cpu = RateResource(sim, serial(), "cpu")
        net = RateResource(sim, serial(), "net")
        recorder.group_started(group_id, n_machines, sim.now, cpu, net)
        cpu.submit(busy)
        sim.run()
        recorder.group_stopped(group_id, sim.now)

    def test_busy_fraction_per_group(self):
        recorder = ClusterUsageRecorder(total_machines=10)
        self._run_group(recorder, "g0", 5, busy=30.0)
        usage = recorder.finished_groups[0]
        assert usage.busy_fraction("cpu") == pytest.approx(1.0)
        assert usage.busy_fraction("net") == 0.0

    def test_cluster_timeline_weights_by_machines(self):
        recorder = ClusterUsageRecorder(total_machines=10,
                                        bin_seconds=10.0)
        self._run_group(recorder, "g0", 5, busy=10.0)
        timeline = recorder.utilization_timeline("cpu", t_end=10.0)
        assert timeline.values[0] == pytest.approx(0.5)

    def test_double_start_raises(self):
        recorder = ClusterUsageRecorder(total_machines=4)
        sim = Simulator()
        cpu = RateResource(sim, serial(), "cpu")
        net = RateResource(sim, serial(), "net")
        recorder.group_started("g", 2, 0.0, cpu, net)
        with pytest.raises(ValueError):
            recorder.group_started("g", 2, 0.0, cpu, net)

    def test_finish_closes_live_groups(self):
        recorder = ClusterUsageRecorder(total_machines=4)
        sim = Simulator()
        cpu = RateResource(sim, serial(), "cpu")
        net = RateResource(sim, serial(), "net")
        recorder.group_started("g", 2, 0.0, cpu, net)
        recorder.finish(100.0)
        assert len(recorder.finished_groups) == 1


class TestDecisionRecord:
    def _record(self, **kwargs):
        defaults = dict(time=0.0, group_id="g", n_machines=4,
                        job_ids=("a",), predicted_t_group=100.0,
                        predicted_u_cpu=0.8, predicted_u_net=0.6)
        defaults.update(kwargs)
        return DecisionRecord(**defaults)

    def test_t_group_error(self):
        record = self._record(measured_t_group=110.0)
        assert record.t_group_error() == pytest.approx(10.0 / 110.0)

    def test_unmeasured_is_none(self):
        assert self._record().t_group_error() is None
        assert self._record().u_error() is None

    def test_u_error_skips_idle_epochs(self):
        record = self._record(measured_u_cpu=0.05, measured_u_net=0.05)
        assert record.u_error() is None

    def test_u_error_relative(self):
        record = self._record(measured_u_cpu=0.7, measured_u_net=0.7)
        assert record.u_error() == pytest.approx(0.0 / 1.4)


class TestReporting:
    def test_table_alignment_and_rows(self):
        text = format_table(["name", "value"],
                            [("a", 1.0), ("bbbb", 2.5)], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "bbbb" in text and "2.50" in text

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            format_table(["a"], [("x", "y")])

    def test_format_comparison(self):
        line = format_comparison("JCT", 2.11, 1.20)
        assert "paper=2.11x" in line and "measured=1.20x" in line
