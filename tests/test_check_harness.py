"""Tests for the run-level correctness harness (repro.check)."""

from dataclasses import replace

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import (
    InvariantChecker,
    OracleCase,
    PerfModelCase,
    ScenarioGenerator,
    Violation,
    exact_metrics,
    run_checked,
    run_differential,
)
from repro.check.cli import DEFAULT_SEEDS, _rotating_seed
from repro.check.cli import main as check_main
from repro.check.differential import (
    ORACLE_CASE_GAP,
    ORACLE_MEAN_GAP,
    PERFMODEL_CASE_TOL,
    PERFMODEL_MEAN_TOL,
)
from repro.check.scenarios import CheckedRun
from repro.config import SimConfig
from repro.core.group_runtime import GroupAudit
from repro.core.runtime import HarmonyRuntime
from repro.errors import InvariantViolationError
from repro.sim.resources import ResourceAudit
from repro.trace import Tracer
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator


def _manual_clock(start: float = 0.0):
    state = {"now": start}

    def clock() -> float:
        return state["now"]

    def advance(dt: float) -> None:
        state["now"] += dt

    return clock, advance


def _resource(name="cpu", at=100.0, busy=50.0, submitted=50.0,
              served=50.0, discarded=0.0, queued=0.0, queue_length=0):
    return ResourceAudit(name=name, at=at, busy_seconds=busy,
                         work_submitted=submitted, work_served=served,
                         work_discarded=discarded, queued_work=queued,
                         queue_length=queue_length)


def _group_audit(cpu=None, net=None, disk=None, stopped_at=100.0,
                 crashed=False, net_rate_cap=1.4):
    return GroupAudit(
        group_id="g1", mode="harmony", n_machines=4, started_at=0.0,
        stopped_at=stopped_at, crashed=crashed,
        cpu=cpu if cpu is not None else _resource("cpu"),
        net=net if net is not None else _resource("net"),
        disk=disk if disk is not None else _resource("disk"),
        cpu_serial=True, net_rate_cap=net_rate_cap)


def _invariants(violations):
    return {violation.invariant for violation in violations}


# ------------------------------------------------- audit invariants


class TestAuditInvariants:
    def check(self, audit):
        out = []
        InvariantChecker().check_audit(audit, out)
        return out

    def test_balanced_audit_is_clean(self):
        assert self.check(_group_audit()) == []

    def test_lost_work_breaks_conservation(self):
        bad = _resource(submitted=50.0, served=40.0, busy=40.0)
        violations = self.check(_group_audit(cpu=bad))
        assert "work-conservation" in _invariants(violations)

    def test_phantom_service_detected(self):
        # Served more than was ever submitted: the balance is negative
        # *and* the explicit served-vs-submitted guard fires.
        bad = _resource(submitted=50.0, served=60.0, busy=60.0)
        violations = self.check(_group_audit(cpu=bad))
        assert "work-conservation" in _invariants(violations)

    def test_busy_beyond_group_lifetime_detected(self):
        bad = _resource(at=100.0, busy=120.0, submitted=120.0,
                        served=120.0)
        violations = self.check(_group_audit(cpu=bad))
        assert "capacity" in _invariants(violations)

    def test_queued_tasks_after_stop_detected(self):
        bad = _resource(submitted=60.0, served=50.0, queued=10.0,
                        queue_length=2)
        violations = self.check(_group_audit(cpu=bad))
        assert "teardown" in _invariants(violations)

    def test_serial_cpu_busy_must_equal_served(self):
        # Conservation holds (all submitted work was served) but busy
        # time disagrees with served work — a unit-capacity resource
        # cannot do that.
        bad = _resource(busy=45.0, submitted=50.0, served=50.0)
        violations = self.check(_group_audit(cpu=bad))
        assert "busy-vs-served" in _invariants(violations)

    def test_nic_may_overdeliver_up_to_secondary_share(self):
        nic = _resource("net", busy=50.0, submitted=65.0, served=65.0)
        assert self.check(_group_audit(net=nic)) == []

    def test_nic_beyond_occupancy_cap_detected(self):
        nic = _resource("net", busy=50.0, submitted=80.0, served=80.0)
        violations = self.check(_group_audit(net=nic,
                                             net_rate_cap=1.4))
        assert "busy-vs-served" in _invariants(violations)

    def test_violations_render_with_context(self):
        bad = _resource(submitted=50.0, served=40.0, busy=40.0)
        violation = self.check(_group_audit(cpu=bad))[0]
        assert isinstance(violation, Violation)
        text = str(violation)
        assert "[work-conservation]" in text
        assert "g1" in text


# ------------------------------------------------- trace invariants


class TestTraceInvariants:
    def check(self, tracer, now):
        out = []
        InvariantChecker().check_trace(tracer, now, out)
        return out

    def test_sequential_lane_is_clean(self):
        clock, advance = _manual_clock()
        tracer = Tracer(clock)
        track = tracer.track("machines 0-3 · g1", "m0 cpu")
        tracer.complete(track, "COMP", 0.0, 2.0, cat="comp")
        tracer.complete(track, "COMP", 2.0, 4.0, cat="comp")
        advance(4.0)
        assert self.check(tracer, 4.0) == []

    def test_open_span_detected(self):
        tracer = Tracer(lambda: 0.0)
        tracer.begin(tracer.track("p", "t"), "work", cat="comp")
        violations = self.check(tracer, 1.0)
        assert "open-spans" in _invariants(violations)

    def test_instants_out_of_order_detected(self):
        clock, advance = _manual_clock(5.0)
        tracer = Tracer(clock)
        tracer.instant("late")
        advance(-2.0)
        tracer.instant("early")
        violations = self.check(tracer, 10.0)
        assert "instant-order" in _invariants(violations)

    def test_span_outside_run_bounds_detected(self):
        tracer = Tracer(lambda: 0.0)
        track = tracer.track("p", "t")
        tracer.complete(track, "COMP", 1.0, 9.0, cat="comp")
        violations = self.check(tracer, 4.0)  # run only lasted to t=4
        assert "span-bounds" in _invariants(violations)

    def test_overlapping_spans_in_one_lane_detected(self):
        tracer = Tracer(lambda: 10.0)
        track = tracer.track("machines 0-3 · g1", "m0 cpu")
        tracer.complete(track, "COMP", 0.0, 5.0, cat="comp")
        tracer.complete(track, "COMP", 3.0, 8.0, cat="comp")
        violations = self.check(tracer, 10.0)
        assert "lane-overlap" in _invariants(violations)

    def _group_tracer(self, mode):
        """A tracer whose group-start instant joins pid -> mode."""
        tracer = Tracer(lambda: 10.0)
        tracer.instant("group-start", cat="lifecycle",
                       args={"group": "g1", "machines": "0-3",
                             "mode": mode})
        return tracer

    def test_concurrent_comp_on_coordinated_group_detected(self):
        tracer = self._group_tracer("harmony")
        # Distinct lanes (no lane-overlap), same group process: two
        # COMP subtasks in service at once violates §IV-A exclusivity.
        a = tracer.track("machines 0-3 · g1", "m0 cpu")
        b = tracer.track("machines 0-3 · g1", "m1 cpu")
        tracer.complete(a, "COMP", 0.0, 5.0, cat="comp")
        tracer.complete(b, "COMP", 1.0, 6.0, cat="comp")
        violations = self.check(tracer, 10.0)
        assert "comp-exclusive" in _invariants(violations)
        assert "lane-overlap" not in _invariants(violations)

    def test_naive_group_is_exempt_from_occupancy_limits(self):
        tracer = self._group_tracer("naive")
        a = tracer.track("machines 0-3 · g1", "m0 cpu")
        b = tracer.track("machines 0-3 · g1", "m1 cpu")
        tracer.complete(a, "COMP", 0.0, 5.0, cat="comp")
        tracer.complete(b, "COMP", 1.0, 6.0, cat="comp")
        assert self.check(tracer, 10.0) == []

    def test_primary_plus_secondary_comm_is_allowed(self):
        tracer = self._group_tracer("harmony")
        a = tracer.track("machines 0-3 · g1", "m0 net")
        b = tracer.track("machines 0-3 · g1", "m1 net")
        tracer.complete(a, "PUSH", 0.0, 5.0, cat="comm")
        tracer.complete(b, "PULL", 1.0, 6.0, cat="comm")
        assert self.check(tracer, 10.0) == []

    def test_third_concurrent_comm_subtask_detected(self):
        tracer = self._group_tracer("harmony")
        for index in range(3):
            track = tracer.track("machines 0-3 · g1",
                                 f"m{index} net")
            tracer.complete(track, "PUSH", float(index),
                            float(index) + 3.0, cat="comm")
        violations = self.check(tracer, 10.0)
        assert "comm-occupancy" in _invariants(violations)

    def test_back_to_back_handoffs_do_not_count_as_overlap(self):
        tracer = self._group_tracer("harmony")
        a = tracer.track("machines 0-3 · g1", "m0 cpu")
        b = tracer.track("machines 0-3 · g1", "m1 cpu")
        tracer.complete(a, "COMP", 0.0, 5.0, cat="comp")
        tracer.complete(b, "COMP", 5.0, 9.0, cat="comp")
        assert self.check(tracer, 10.0) == []


# ------------------------------------------------- whole-run checks


class TestCheckedRuns:
    @pytest.fixture(scope="class")
    def runtime(self):
        specs = [replace(spec, iterations=3) for spec in
                 WorkloadGenerator(3).base_workload(
                     hyper_params_per_pair=1)[:5]]
        runtime = HarmonyRuntime(24, specs,
                                 config=SimConfig().with_tracing())
        runtime.run()
        return runtime

    def test_clean_run_has_no_violations(self, runtime):
        assert InvariantChecker().check_runtime(runtime) == []

    def test_assert_clean_passes_on_clean_run(self, runtime):
        InvariantChecker().assert_clean(runtime)

    def test_duplicated_cycle_is_caught(self, runtime):
        # A cycle recorded twice means an iteration executed twice
        # without a crash rollback justifying it.
        cycles = runtime.master.finished_cycles
        cycles.append(cycles[0])
        try:
            violations = InvariantChecker().check_runtime(runtime)
        finally:
            cycles.pop()
        assert "no-lost-iterations" in _invariants(violations)

    def test_assert_clean_raises_and_carries_violations(self, runtime):
        cycles = runtime.master.finished_cycles
        cycles.append(cycles[0])
        try:
            with pytest.raises(InvariantViolationError) as excinfo:
                InvariantChecker().assert_clean(runtime)
        finally:
            cycles.pop()
        assert excinfo.value.violations
        assert all(isinstance(v, Violation)
                   for v in excinfo.value.violations)

    def test_unpurged_crash_queue_is_caught(self, monkeypatch):
        """Regression oracle: killed processes leave in-flight subtasks
        queued; without the purge the checker flags them at teardown."""
        from repro.sim.resources import RateResource
        monkeypatch.setattr(RateResource, "purge",
                            lambda self: 0.0)
        jobs = WorkloadGenerator(3).base_workload(
            hyper_params_per_pair=1)
        runtime = HarmonyRuntime(24, jobs)
        master = runtime.master
        for spec in runtime.workload:
            master.sim.call_at(spec.submit_time,
                               lambda s=spec: master.submit(s))
        master.sim.run(until=1800.0)
        victim = next(m.machine_id for m in runtime.cluster.machines
                      if runtime.cluster.owner_of(m.machine_id))
        master.inject_machine_failure(victim)
        violations = InvariantChecker().check_runtime(runtime)
        assert "teardown" in _invariants(violations)


# ------------------------------------------------ scenario generator


class TestScenarioGenerator:
    def test_same_seed_reproduces_the_scenario(self):
        first = ScenarioGenerator(11).generate()
        second = ScenarioGenerator(11).generate()
        assert first.describe() == second.describe()
        assert first.specs == second.specs
        assert first.n_machines == second.n_machines
        assert (first.fault_plan is None) == (second.fault_plan is None)
        if first.fault_plan is not None:
            assert first.fault_plan.events == second.fault_plan.events

    def test_replay_command_names_the_seed(self):
        scenario = ScenarioGenerator(123).generate()
        assert scenario.replay_command.endswith("--seed 123")
        assert "python -m repro check" in scenario.replay_command

    def test_seeds_explore_the_knob_space(self):
        scenarios = [ScenarioGenerator(seed).generate()
                     for seed in range(30)]
        orders = {s.config.scheduler.admission_order for s in scenarios}
        assert len(orders) >= 2
        assert any(s.fault_plan is not None for s in scenarios)
        assert any(s.fault_plan is None for s in scenarios)
        assert any(s.config.memory.fixed_alpha is not None
                   for s in scenarios)
        assert any(s.config.memory.fixed_alpha is None
                   for s in scenarios)
        assert any(s.specs[-1].submit_time > 0 for s in scenarios)

    @given(seed=st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_every_seed_yields_a_well_formed_scenario(self, seed):
        scenario = ScenarioGenerator(seed).generate()
        assert 20 <= scenario.n_machines <= 32
        assert 3 <= len(scenario.specs) <= 8
        submit_times = [spec.submit_time for spec in scenario.specs]
        assert submit_times == sorted(submit_times)
        for spec in scenario.specs:
            assert 3 <= spec.iterations <= 8
        assert scenario.config.trace.enabled
        assert scenario.config.seed == seed


class TestFuzzedScenarios:
    @given(seed=st.integers(min_value=0, max_value=99_999))
    @settings(max_examples=25, deadline=None)
    def test_generated_scenarios_hold_all_invariants(self, seed):
        """The tentpole end-to-end property: any seeded scenario —
        faults, regroups, staggered arrivals, fixed alpha — runs the
        full simulator without violating a single run-level
        invariant."""
        checked = run_checked(ScenarioGenerator(seed).generate())
        assert checked.ok, checked.report()
        assert checked.finished_jobs > 0

    def test_failing_run_reports_the_replay_command(self):
        scenario = ScenarioGenerator(99).generate()
        checked = CheckedRun(
            scenario=scenario,
            violations=[Violation("teardown", "group g7",
                                  "2 task(s) still queued")])
        assert not checked.ok
        report = checked.report()
        assert "FAIL" in report
        assert scenario.replay_command in report


# ------------------------------------------------- differential suite


class TestDifferential:
    @pytest.fixture(scope="class")
    def report(self):
        return run_differential(n_cases=20, seed=2021)

    def test_simulator_matches_eq1_within_tolerance(self, report):
        assert len(report.perfmodel) >= 20
        assert report.perfmodel_max_error <= PERFMODEL_CASE_TOL, \
            report.summary()
        assert report.perfmodel_mean_error <= PERFMODEL_MEAN_TOL, \
            report.summary()

    def test_harmony_within_bounded_gap_of_oracle(self, report):
        assert len(report.oracle) >= 20
        assert report.oracle_max_gap <= ORACLE_CASE_GAP, \
            report.summary()
        assert report.oracle_mean_gap <= ORACLE_MEAN_GAP, \
            report.summary()

    def test_report_verdict_and_summary(self, report):
        assert report.ok
        assert report.failures() == []
        summary = report.summary()
        assert "Eq.1" in summary and "oracle" in summary

    def test_exact_metrics_mirror_the_cost_model(self):
        cost_model = CostModel()
        spec = WorkloadGenerator(3).base_workload(
            hyper_params_per_pair=1)[0]
        metrics = exact_metrics(cost_model, spec, m=8)
        profile = cost_model.profile(spec, 8)
        assert metrics.cpu_work == pytest.approx(profile.t_comp * 8)
        assert metrics.t_net == pytest.approx(
            profile.t_pull + profile.t_push)
        assert metrics.m_observed == 8

    def test_oracle_gap_is_one_sided(self):
        # Harmony beating the oracle's prefix-restricted search is not
        # an error: the gap clamps at zero.
        better = OracleCase(n_jobs=4, n_machines=8,
                            harmony_score=1.2, oracle_score=1.0)
        assert better.gap == 0.0
        worse = OracleCase(n_jobs=4, n_machines=8,
                           harmony_score=0.8, oracle_score=1.0)
        assert worse.gap == pytest.approx(0.2)

    def test_perfmodel_case_error_is_relative(self):
        case = PerfModelCase(job_ids=("j",), m=4, predicted=10.0,
                             measured=11.0)
        assert case.rel_error == pytest.approx(0.1)
        degenerate = PerfModelCase(job_ids=("j",), m=4, predicted=0.0,
                                   measured=1.0)
        assert degenerate.rel_error == 0.0


# --------------------------------------------------------- CLI entry


class TestCheckCli:
    def test_rotating_seed_is_deterministic_and_fresh(self):
        assert _rotating_seed(417) == _rotating_seed(417)
        seen = {_rotating_seed(token) for token in range(50)}
        assert len(seen) == 50  # distinct runs explore distinct seeds
        assert seen.isdisjoint(DEFAULT_SEEDS)

    def test_passing_seed_exits_zero(self, capsys):
        assert check_main(["--seed", "2021"]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "seed 2021" in out

    def test_failure_exits_nonzero_with_replay_command(self, capsys,
                                                       monkeypatch):
        import repro.check.cli as cli

        def failing_run(scenario, checker):
            return CheckedRun(
                scenario=scenario,
                violations=[Violation("barrier-safety", "job j",
                                      "iterations overlap")])

        monkeypatch.setattr(cli, "run_checked", failing_run)
        assert check_main(["--seed", "5"]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.out
        assert "replay: PYTHONPATH=src python -m repro check --seed 5" \
            in captured.out

    def test_differential_flag_runs_the_suites(self, capsys,
                                               monkeypatch):
        import repro.check.cli as cli

        class _Report:
            def summary(self):
                return "differential: stubbed"

            def failures(self):
                return []

        calls = {}

        def fake_differential(n_cases, seed):
            calls["n_cases"], calls["seed"] = n_cases, seed
            return _Report()

        def passing_run(scenario, checker):
            return CheckedRun(scenario=scenario, violations=[],
                              finished_jobs=len(scenario.specs))

        monkeypatch.setattr(cli, "run_differential", fake_differential)
        monkeypatch.setattr(cli, "run_checked", passing_run)
        assert check_main(["--seed", "3", "--differential",
                           "--cases", "7"]) == 0
        assert calls == {"n_cases": 7, "seed": 3}
        assert "differential: stubbed" in capsys.readouterr().out
