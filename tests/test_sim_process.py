"""Tests for generator-based simulated processes."""

import pytest

from repro.errors import ProcessKilled, SimulationError


class TestProcessBasics:
    def test_runs_to_completion(self, sim):
        def proc():
            yield sim.timeout(1.0)
            yield sim.timeout(2.0)
            return "done"
        process = sim.spawn(proc())
        sim.run()
        assert not process.alive
        assert process.ok
        assert process.value == "done"
        assert sim.now == 3.0

    def test_receives_event_values(self, sim):
        def proc():
            value = yield sim.timeout(1.0, value=41)
            return value + 1
        process = sim.spawn(proc())
        sim.run()
        assert process.value == 42

    def test_non_generator_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.spawn(lambda: None)

    def test_yielding_non_event_fails_loudly(self, sim):
        def proc():
            yield 5
        sim.spawn(proc())
        with pytest.raises(SimulationError):
            sim.run()

    def test_processes_interleave(self, sim):
        trace = []

        def proc(name, delay):
            yield sim.timeout(delay)
            trace.append((name, sim.now))
        sim.spawn(proc("slow", 3.0))
        sim.spawn(proc("fast", 1.0))
        sim.run()
        assert trace == [("fast", 1.0), ("slow", 3.0)]

    def test_process_can_wait_on_process(self, sim):
        def inner():
            yield sim.timeout(2.0)
            return "inner-result"

        def outer():
            result = yield sim.spawn(inner())
            return f"got {result}"
        process = sim.spawn(outer())
        sim.run()
        assert process.value == "got inner-result"


class TestKill:
    def test_kill_ends_process_normally(self, sim):
        def proc():
            yield sim.timeout(100.0)
        process = sim.spawn(proc())
        sim.call_at(1.0, process.kill)
        sim.run()
        assert not process.alive
        assert process.ok
        assert process.value is None

    def test_killed_generator_can_clean_up(self, sim):
        cleaned = []

        def proc():
            try:
                yield sim.timeout(100.0)
            except ProcessKilled:
                cleaned.append(True)
        process = sim.spawn(proc())
        sim.call_at(1.0, process.kill)
        sim.run()
        assert cleaned == [True]
        assert process.ok

    def test_kill_dead_process_is_noop(self, sim):
        def proc():
            return "x"
            yield  # pragma: no cover - makes this a generator
        process = sim.spawn(proc())
        sim.run()
        process.kill()
        assert process.value == "x"

    def test_stale_wakeup_after_kill_is_ignored(self, sim):
        """A timeout that fires after the process was killed must not
        resurrect it."""
        def proc():
            yield sim.timeout(10.0)
            raise AssertionError("should never resume")
        process = sim.spawn(proc())
        sim.call_at(1.0, process.kill)
        sim.run()
        assert sim.now == 10.0  # the stale timeout still fired
        assert process.ok


class TestFailures:
    def test_unobserved_exception_propagates(self, sim):
        def proc():
            yield sim.timeout(1.0)
            raise RuntimeError("kaboom")
        sim.spawn(proc())
        with pytest.raises(RuntimeError, match="kaboom"):
            sim.run()

    def test_observed_exception_delivered_to_waiter(self, sim):
        def failing():
            yield sim.timeout(1.0)
            raise RuntimeError("inner error")

        def waiter():
            try:
                yield sim.spawn(failing())
            except RuntimeError as error:
                return f"caught {error}"
        process = sim.spawn(waiter())
        sim.run()
        assert process.value == "caught inner error"

    def test_failed_event_raises_at_yield_point(self, sim):
        event = sim.event()

        def proc():
            try:
                yield event
            except ValueError:
                return "handled"
        process = sim.spawn(proc())
        sim.call_at(1.0, lambda: event.fail(ValueError("x")))
        sim.run()
        assert process.value == "handled"
