"""The policy protocol and the competitor zoo (repro.policies).

Covers the decision-level edge cases (empty queues, jobs larger than
the cluster, reservation-delay vetoes), the bitwise differential pins
(legacy constructor args vs explicit policy objects; registry entries
vs direct runtimes), hash-seed independence of the tie-breaks, and
harmonylint cleanliness of the package.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import pytest

from repro.baselines.base import BaselineRuntime
from repro.baselines.isolated import IsolatedRuntime
from repro.baselines.naive import NaiveRuntime
from repro.config import SimConfig
from repro.core.group_runtime import ExecutionMode
from repro.errors import SchedulingError, SimulationError
from repro.policies.base import (
    GroupStart,
    PolicyObservation,
    RunningGroupView,
    SchedulingPolicy,
)
from repro.policies.queueing import (
    conservative,
    easy,
    easy_backfill,
    fcfs,
    packed_fifo,
)
from repro.policies.registry import available, build_runtime
from repro.workloads.generator import WorkloadGenerator

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def make_obs(queue=(), free=8, cluster=16, demands=None, solo=None,
             running=(), now=0.0):
    """A synthetic observation over per-job demand/runtime tables."""
    demands = demands or {}
    solo = solo or {}

    def batch_demand(job_ids):
        return sum(demands.get(job_id, 1) for job_id in job_ids)

    return PolicyObservation(
        now=now, cluster_size=cluster, n_free=free, queue=tuple(queue),
        batch_demand=batch_demand,
        memory_floor=lambda job_ids: 1,
        memory_dominated=lambda job_ids, wanted: False,
        metrics_at=lambda job_id, m: None,
        remaining_iterations=lambda job_id: 10,
        solo_seconds=lambda job_id, m: solo.get(job_id, 100.0),
        running=lambda: tuple(running))


class TestDecisionEdgeCases:
    @pytest.mark.parametrize("policy", [fcfs(), easy(), conservative(),
                                        packed_fifo(group_size=2)])
    def test_empty_queue_yields_no_starts(self, policy):
        decision = policy.decide(make_obs(queue=(), free=8))
        assert decision.starts == ()
        assert decision.machines_requested == 0

    def test_backfill_with_empty_queue_and_running_groups(self):
        # Reservation bookkeeping must not blow up when there is
        # nothing to reserve *for* but machines are still busy.
        running = (RunningGroupView("b0", ("j9",), 8,
                                    predicted_release=500.0),)
        decision = easy().decide(make_obs(queue=(), free=0,
                                          running=running))
        assert decision.starts == ()

    @pytest.mark.parametrize("policy", [easy(), conservative()])
    def test_job_larger_than_cluster_never_wedges(self, policy):
        # "huge" cannot run on any cluster state; the jobs behind it
        # must still be admitted, and no infinite reservation forms.
        obs = make_obs(queue=("huge", "small"), free=8, cluster=16,
                       demands={"huge": 99, "small": 2})
        decision = policy.decide(obs)
        assert [s.job_ids for s in decision.starts] == [("small",)]

    def test_fcfs_head_of_line_blocks(self):
        obs = make_obs(queue=("wide", "narrow"), free=4, cluster=16,
                       demands={"wide": 8, "narrow": 1})
        assert fcfs().decide(obs).starts == ()

    def test_packed_fifo_backfills_past_blocked_head(self):
        obs = make_obs(queue=("wide", "narrow"), free=4, cluster=16,
                       demands={"wide": 8, "narrow": 1})
        decision = packed_fifo(group_size=1).decide(obs)
        assert [s.job_ids for s in decision.starts] == [("narrow",)]

    def test_backfill_vetoed_when_it_delays_reservation(self):
        # Head "blocked" (demand 8) reserves t=100, when the running
        # group's 6 machines join the 2 free ones.  A 500s backfill
        # candidate holding those 2 machines would push the reservation
        # to t=500 — vetoed.
        running = (RunningGroupView("b0", ("r",), 6,
                                    predicted_release=100.0),)
        obs = make_obs(queue=("blocked", "cand"), free=2, cluster=16,
                       demands={"blocked": 8, "cand": 2},
                       solo={"cand": 500.0}, running=running)
        assert easy_backfill(obs).starts == ()

    def test_backfill_allowed_when_it_finishes_in_time(self):
        # Same scenario, but the candidate releases its machines at
        # t=50 — before the reservation needs them.
        running = (RunningGroupView("b0", ("r",), 6,
                                    predicted_release=100.0),)
        obs = make_obs(queue=("blocked", "cand"), free=2, cluster=16,
                       demands={"blocked": 8, "cand": 2},
                       solo={"cand": 50.0}, running=running)
        decision = easy_backfill(obs)
        assert [s.job_ids for s in decision.starts] == [("cand",)]

    def test_group_start_validation(self):
        with pytest.raises(SchedulingError):
            GroupStart((), 1)
        with pytest.raises(SchedulingError):
            GroupStart(("a",), 0)
        with pytest.raises(SchedulingError):
            GroupStart(("a", "b"), 2, start_offsets=(0.0,))

    def test_policies_satisfy_the_protocol(self):
        for policy in (fcfs(), easy(), conservative(),
                       packed_fifo(group_size=3)):
            assert isinstance(policy, SchedulingPolicy)
            assert policy.name


class TestDifferentialPins:
    """The refactor must not move a single float."""

    @pytest.fixture
    def jobs(self):
        return WorkloadGenerator(3).base_workload(
            hyper_params_per_pair=1)

    def _finish_times(self, result):
        return {job_id: outcome.finish_time
                for job_id, outcome in result.outcomes.items()}

    def test_legacy_args_equal_explicit_policy(self, jobs):
        legacy = BaselineRuntime(
            20, jobs, mode=ExecutionMode.NAIVE, name="legacy",
            group_size=2, shuffle_seed=0, dop_scale=0.4).run()
        explicit = BaselineRuntime(
            20, jobs, mode=ExecutionMode.NAIVE, name="explicit",
            group_size=2, shuffle_seed=0, dop_scale=0.4,
            policy=packed_fifo(group_size=2)).run()
        # harmony: allow[DET006] bitwise equality is the property under test
        assert self._finish_times(legacy) == self._finish_times(explicit)

    def test_registry_naive_equals_direct_runtime(self, jobs):
        registry = build_runtime("naive", 20, jobs).run()
        direct = NaiveRuntime(20, jobs).run()
        # harmony: allow[DET006] bitwise equality is the property under test
        assert self._finish_times(registry) == self._finish_times(direct)

    def test_registry_isolated_equals_direct_runtime(self, jobs):
        registry = build_runtime("isolated", 20, jobs).run()
        direct = IsolatedRuntime(20, jobs).run()
        # harmony: allow[DET006] bitwise equality is the property under test
        assert self._finish_times(registry) == self._finish_times(direct)

    def test_registry_lists_all_policies_in_fixed_order(self):
        names = [name for name, _ in available()]
        assert names[:3] == ["harmony", "naive", "isolated"]
        assert set(names) >= {"fcfs", "easy", "conservative",
                              "synergy", "cassini", "harmony-static"}
        with pytest.raises(SchedulingError):
            build_runtime("nope", 20, [])


class TestCompetitorRuntimes:
    """End-to-end smoke + invariants for the new policy runtimes."""

    @pytest.fixture
    def jobs(self):
        return WorkloadGenerator(5).base_workload(
            hyper_params_per_pair=1)

    @pytest.mark.parametrize("name", ["fcfs", "easy", "conservative",
                                      "synergy", "cassini",
                                      "harmony-static"])
    def test_runs_clean_under_invariants(self, name, jobs):
        from repro.check import InvariantChecker
        runtime = build_runtime(name, 20, jobs,
                                config=SimConfig(seed=11))
        result = runtime.run()
        assert len(result.finished) == len(jobs)
        assert not result.failed
        violations = InvariantChecker().check_runtime(runtime)
        assert violations == []

    def test_negative_start_delay_rejected(self, jobs, sim_config):
        from repro.cluster.cluster import Cluster
        from repro.core.group_runtime import GroupRuntime
        from repro.core.job import Job
        from repro.sim import RandomStreams, Simulator
        from repro.workloads.costmodel import CostModel

        sim = Simulator()
        cluster = Cluster(8, sim_config.machine)
        group = GroupRuntime(
            sim, "g0", cluster.allocate(4, "g0"), ExecutionMode.HARMONY,
            CostModel(sim_config.machine), sim_config,
            RandomStreams(7), hooks=_InertHooks())
        with pytest.raises(SimulationError):
            group.add_job(Job(jobs[0]), start_delay=-1.0)


class _InertHooks:
    iteration_hooks_inert = True

    def on_iteration(self, job, group):
        pass

    def on_job_finished(self, job, group):
        pass

    def on_job_paused(self, job, group):
        pass

    def on_job_failed(self, job, group, error):
        pass


class TestHashSeedIndependence:
    """Policy tie-breaks must follow queue order, never hash order."""

    _SCRIPT = """
import json, sys
sys.path.insert(0, {src!r})
from repro.experiments.tournament import TournamentParams, run
result = run(TournamentParams(
    seed=3, scale=0.2,
    policies=("synergy", "cassini", "easy", "fcfs"),
    arrivals=("batch",), cluster_scales=(1.0,), engines=("fast",)))
print(json.dumps({{
    "ordering": list(result.ordering()),
    "jcts": [(c.policy, c.mean_jct, c.makespan) for c in result.cells],
}}, sort_keys=True))
"""

    def test_leaderboard_stable_across_hash_seeds(self):
        outputs = []
        script = self._SCRIPT.format(
            src=os.path.join(REPO_ROOT, "src"))
        for hash_seed in ("0", "1", "4242"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            proc = subprocess.run(
                [sys.executable, "-c", script], env=env,
                capture_output=True, text=True, check=True)
            outputs.append(json.loads(proc.stdout.strip().splitlines()[-1]))
        assert outputs[0] == outputs[1] == outputs[2]


class TestHarmonylintClean:
    def test_policies_package_passes_det_and_sim_rules(self):
        from repro.analysis.engine import AnalysisConfig, Analyzer
        report = Analyzer(AnalysisConfig(
            paths=["src/repro/policies"], root=REPO_ROOT,
            baseline_path=None)).run()
        assert [str(f) for f in report.findings] == []
        assert report.n_files >= 6
