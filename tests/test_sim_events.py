"""Tests for the simulation kernel's event primitives."""

import pytest

from repro.errors import SimulationError
from repro.sim import AllOf, AnyOf


class TestEvent:
    def test_starts_untriggered(self, sim):
        event = sim.event("e")
        assert not event.triggered
        assert not event.ok

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(42)
        assert event.triggered
        assert event.ok
        assert event.value == 42

    def test_value_before_trigger_raises(self, sim):
        with pytest.raises(SimulationError):
            sim.event("e").value

    def test_double_trigger_raises(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(SimulationError):
            event.succeed()

    def test_fail_carries_exception(self, sim):
        event = sim.event()
        error = ValueError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_fail_requires_exception_instance(self, sim):
        with pytest.raises(TypeError):
            sim.event().fail("not an exception")

    def test_callback_after_trigger_runs_immediately(self, sim):
        event = sim.event()
        event.succeed(1)
        seen = []
        event.add_callback(lambda e: seen.append(e.value))
        assert seen == [1]

    def test_callbacks_run_in_registration_order(self, sim):
        event = sim.event()
        order = []
        event.add_callback(lambda e: order.append("a"))
        event.add_callback(lambda e: order.append("b"))
        event.succeed()
        assert order == ["a", "b"]

    def test_timeout_triggers_at_deadline(self, sim):
        event = sim.timeout(5.0, value="done")
        sim.run()
        assert sim.now == 5.0
        assert event.value == "done"


class TestAllOf:
    def test_waits_for_every_child(self, sim):
        children = [sim.event() for _ in range(3)]
        barrier = AllOf(sim, children)
        children[0].succeed(0)
        children[1].succeed(1)
        assert not barrier.triggered
        children[2].succeed(2)
        assert barrier.ok
        assert barrier.value == [0, 1, 2]

    def test_empty_succeeds_immediately(self, sim):
        assert AllOf(sim, []).ok

    def test_preserves_child_order_not_completion_order(self, sim):
        first, second = sim.event(), sim.event()
        barrier = AllOf(sim, [first, second])
        second.succeed("b")
        first.succeed("a")
        assert barrier.value == ["a", "b"]

    def test_fails_fast_on_child_failure(self, sim):
        children = [sim.event() for _ in range(2)]
        barrier = AllOf(sim, children)
        error = RuntimeError("nope")
        children[0].fail(error)
        assert barrier.triggered
        assert not barrier.ok
        assert barrier.value is error

    def test_already_triggered_children(self, sim):
        child = sim.event()
        child.succeed(9)
        barrier = AllOf(sim, [child])
        assert barrier.ok
        assert barrier.value == [9]


class TestAnyOf:
    def test_first_completion_wins(self, sim):
        children = [sim.event() for _ in range(3)]
        race = AnyOf(sim, children)
        children[1].succeed("middle")
        assert race.ok
        assert race.value == (1, "middle")

    def test_later_completions_ignored(self, sim):
        children = [sim.event() for _ in range(2)]
        race = AnyOf(sim, children)
        children[0].succeed("first")
        children[1].succeed("second")
        assert race.value == (0, "first")

    def test_empty_raises(self, sim):
        with pytest.raises(SimulationError):
            AnyOf(sim, [])

    def test_failure_propagates(self, sim):
        children = [sim.event() for _ in range(2)]
        race = AnyOf(sim, children)
        error = RuntimeError("bad")
        children[0].fail(error)
        assert not race.ok
        assert race.value is error
