"""Tests for dynamic data reloading (§IV-C)."""

import pytest

from repro.cluster.memory import MemoryLedger
from repro.config import MemoryConfig
from repro.core.job import Job
from repro.core.memory_manager import GroupMemoryManager
from repro.workloads.apps import DATASETS, JobSpec, LDA, MLR
from repro.workloads.costmodel import CostModel


def _manager(n_machines=8, spill=True, config=None, machine_spec=None):
    cost_model = CostModel(machine_spec)
    ledger = MemoryLedger(cost_model.spec)
    manager = GroupMemoryManager(
        ledger, cost_model,
        config if config is not None else MemoryConfig(),
        n_machines=n_machines, spill_enabled=spill)
    return manager, ledger


def _job(job_id="j", dataset_index=0, app=MLR, iterations=5):
    return Job(JobSpec(job_id, app, DATASETS[app.name][dataset_index],
                       iterations=iterations))


class TestAdmission:
    def test_small_job_keeps_everything_in_memory(self):
        manager, ledger = _manager(n_machines=8)
        job = _job("lda", app=LDA, dataset_index=1)
        assert manager.admit(job)
        assert job.alpha == 0.0
        assert ledger.pressure < manager.config.target_pressure + 1e-9

    def test_big_jobs_get_spilled_to_target_pressure(self):
        manager, ledger = _manager(n_machines=4)
        first = _job("mlr1", dataset_index=1)
        second = _job("mlr2", dataset_index=1)
        assert manager.admit(first)
        assert manager.admit(second)
        assert ledger.pressure <= manager.config.target_pressure + 1e-6
        assert first.alpha > 0.0

    def test_rebalance_shares_one_ratio(self):
        manager, _ = _manager(n_machines=4)
        first = _job("a", dataset_index=1)
        second = _job("b", dataset_index=1)
        manager.admit(first)
        manager.admit(second)
        assert first.alpha == pytest.approx(second.alpha)

    def test_admit_without_spill_keeps_alpha_zero(self):
        manager, _ = _manager(n_machines=8, spill=False)
        job = _job()
        assert manager.admit(job)
        assert job.alpha == 0.0

    def test_fixed_alpha_is_respected(self):
        config = MemoryConfig(fixed_alpha=0.4)
        manager, _ = _manager(n_machines=8, config=config)
        job = _job()
        assert manager.admit(job)
        assert job.alpha == 0.4

    def test_evict_frees_memory_and_relaxes_others(self):
        manager, ledger = _manager(n_machines=4)
        first = _job("a", dataset_index=1)
        second = _job("b", dataset_index=1)
        manager.admit(first)
        manager.admit(second)
        alpha_crowded = first.alpha
        manager.evict(second)
        assert ledger.job_resident_bytes("b") == 0
        assert first.alpha <= alpha_crowded

    def test_alphas_snapshot(self):
        manager, _ = _manager()
        job = _job("x")
        manager.admit(job)
        assert manager.alphas() == {"x": job.alpha}


class TestHillClimbing:
    def _admitted(self, config=None):
        manager, ledger = _manager(n_machines=4, config=config)
        job = _job("m", dataset_index=1)
        manager.admit(job)
        return manager, ledger, job

    def test_gc_pressure_raises_alpha(self):
        manager, _, job = self._admitted()
        before = job.alpha
        for _ in range(manager.config.adjust_every):
            manager.record_iteration(job, gc_overhead_seconds=10.0,
                                     stall_seconds=0.0,
                                     busy_seconds=100.0)
        assert job.alpha > before

    def test_stall_pressure_lowers_alpha(self):
        manager, ledger, job = self._admitted()
        job.alpha = 0.9
        manager._apply_components(job)
        for _ in range(manager.config.adjust_every):
            manager.record_iteration(job, gc_overhead_seconds=0.0,
                                     stall_seconds=10.0,
                                     busy_seconds=100.0)
        assert job.alpha < 0.9

    def test_alpha_never_lowered_into_pressure(self):
        """The climber refuses steps that would recreate GC pressure."""
        manager, ledger, job = self._admitted()
        start = job.alpha
        for _ in range(manager.config.adjust_every):
            manager.record_iteration(job, gc_overhead_seconds=0.0,
                                     stall_seconds=10.0,
                                     busy_seconds=100.0)
        assert ledger.pressure <= manager.config.target_pressure + 1e-6
        assert job.alpha <= start  # moved down or stayed

    def test_balanced_overheads_leave_alpha_alone(self):
        manager, _, job = self._admitted()
        before = job.alpha
        for _ in range(4 * manager.config.adjust_every):
            manager.record_iteration(job, gc_overhead_seconds=1.0,
                                     stall_seconds=1.0,
                                     busy_seconds=100.0)
        assert job.alpha == pytest.approx(before)

    def test_model_spill_fallback_at_alpha_one(self):
        """Persistent GC at alpha=1 activates model-data spill."""
        manager, _, job = self._admitted()
        job.alpha = 1.0
        manager._apply_components(job)
        assert not job.model_spilled
        for _ in range(2 * manager.config.adjust_every):
            manager.record_iteration(job, gc_overhead_seconds=50.0,
                                     stall_seconds=0.0,
                                     busy_seconds=100.0)
        assert job.model_spilled

    def test_fixed_alpha_disables_adaptation(self):
        config = MemoryConfig(fixed_alpha=0.5)
        manager, _, job = self._admitted(config=config)
        for _ in range(4 * manager.config.adjust_every):
            manager.record_iteration(job, gc_overhead_seconds=50.0,
                                     stall_seconds=0.0,
                                     busy_seconds=100.0)
        assert job.alpha == 0.5


class TestReloadSeconds:
    def test_zero_alpha_means_no_reload(self):
        manager, _ = _manager()
        job = _job()
        job.alpha = 0.0
        assert manager.reload_seconds(job) == 0.0

    def test_reload_grows_with_alpha(self):
        manager, _ = _manager()
        job = _job()
        job.alpha = 0.2
        low = manager.reload_seconds(job)
        job.alpha = 0.8
        assert manager.reload_seconds(job) == pytest.approx(4 * low)

    def test_model_spill_adds_restore_traffic(self):
        manager, _ = _manager()
        job = _job()
        job.alpha = 0.5
        plain = manager.reload_seconds(job)
        job.model_spilled = True
        assert manager.reload_seconds(job) > plain
