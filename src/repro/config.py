"""Configuration dataclasses shared across the package.

The defaults mirror the paper's evaluation setup (§V-B): m4.2xlarge
instances (8 vCPUs, 32 GB memory, 1.1 Gbps network), synchronous PS
training, and the scheduler constants quoted in §IV-B (5% thresholds).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from repro.trace.tracer import TraceConfig


def _default_engine() -> str:
    """Default simulation engine, overridable via the environment.

    ``HARMONY_SIM_ENGINE=reference`` forces the frozen per-event path
    for every ``SimConfig()`` that does not pass ``engine=`` explicitly
    — the CI matrix runs the whole tier-1 suite once per engine this
    way, so a fast-path regression can never hide behind the reference
    engine.  Invalid values are rejected by ``SimConfig.__post_init__``.
    """
    return os.environ.get("HARMONY_SIM_ENGINE", "fast")

GB = 1024.0 ** 3
MB = 1024.0 ** 2

#: Network bandwidth of an m4.2xlarge in bytes/second (1.1 Gbps).
M4_2XLARGE_NET_BPS = 1.1e9 / 8.0


@dataclass(frozen=True)
class MachineSpec:
    """Hardware description of one cluster machine.

    Defaults describe the paper's m4.2xlarge EC2 instance.
    """

    cores: int = 8
    memory_gb: float = 32.0
    #: Fraction of physical memory usable by job data before the managed
    #: runtime (JVM in the paper) hits GC trouble / OOM.
    usable_memory_fraction: float = 0.80
    network_bps: float = M4_2XLARGE_NET_BPS
    disk_read_bps: float = 180.0 * MB
    disk_write_bps: float = 150.0 * MB

    @property
    def usable_memory_gb(self) -> float:
        return self.memory_gb * self.usable_memory_fraction

    @property
    def usable_memory_bytes(self) -> float:
        return self.usable_memory_gb * GB


@dataclass(frozen=True)
class GCModel:
    """Analytic garbage-collection overhead model.

    COMP subtasks are inflated by ``1 + strength * ((rho - onset) /
    (1 - onset))**2`` once the memory-pressure ratio ``rho`` (resident
    bytes / usable bytes) exceeds ``onset``.  ``rho >= oom_ratio`` is an
    out-of-memory failure.  This reproduces the qualitative behaviour the
    paper attributes to the JVM: mild pressure is free, high pressure
    melts throughput, and exceeding capacity kills the job (Fig. 4, §V-G).
    """

    onset: float = 0.72
    strength: float = 2.0
    oom_ratio: float = 1.0

    def inflation(self, rho: float) -> float:
        """Multiplicative COMP slowdown at memory-pressure ratio ``rho``."""
        if rho <= self.onset:
            return 1.0
        over = (rho - self.onset) / max(1e-9, 1.0 - self.onset)
        return 1.0 + self.strength * over * over

    def is_oom(self, rho: float) -> bool:
        return rho >= self.oom_ratio


@dataclass(frozen=True)
class SchedulerConfig:
    """Constants of Harmony's scheduling algorithm (§IV-B)."""

    #: Minimum relative improvement in cluster utilization before a
    #: regrouping is applied ("Harmony does not perform regrouping when
    #: the expected benefit is less than 5% of U").
    regroup_benefit_threshold: float = 0.05
    #: Two jobs are "similar" when iteration time and comp/comm ratio
    #: differ by less than this fraction (§IV-B4).
    similarity_threshold: float = 0.05
    #: Prefer a decision with fewer regrouped jobs unless the larger
    #: decision is better by more than this fraction.
    fewer_jobs_preference: float = 0.05
    #: Moving-average factor for profiled metrics (§IV-B1).
    ema_alpha: float = 0.30
    #: Iterations a new job runs in the profiling state before its
    #: metrics are trusted.
    profiling_iterations: int = 3
    #: CPU utilization is weighted more than network utilization when
    #: comparing candidate schedules ("CPU utilization rates are treated
    #: more importantly", §IV-B2).
    cpu_weight: float = 0.75
    #: Hard cap on jobs per group (memory pressure / JCT preference).
    max_jobs_per_group: int = 5
    #: Maximum swap fine-tuning passes in the grouping algorithm.
    max_swap_passes: int = 50
    #: Consecutive non-improving prefix sizes tolerated before Algorithm
    #: 1's L10-13 loop stops growing the job set.  The paper breaks on
    #: the first non-improvement; a small patience makes the greedy loop
    #: robust to bumps introduced by the discrete n_G* re-choice.
    schedule_patience: int = 6
    #: Order in which Algorithm 1's L4 loop grows the candidate job set
    #: (the paper leaves J_to_sched's order unspecified):
    #: "sjf" = shortest iteration first (front-loads completions),
    #: "ljf" = longest first (starts the critical path early),
    #: "interleave" = alternate longest/shortest,
    #: "critical" = the top-decile longest jobs first (they set the
    #: makespan's critical path), then shortest-first for the rest.
    admission_order: str = "critical"
    #: Capacity of the scheduler's prefix-plan memo (see
    #: ``repro.core.scheduler.PlanCache``); 0 disables caching.
    plan_cache_entries: int = 256
    #: How often the master re-evaluates the whole grouping ("Harmony
    #: constantly seeks for higher resource utilization U, and when it
    #: detects a potential improvement, it dynamically updates the jobs,
    #: job groups, and the allocated machines", §IV-B2).  A regrouping is
    #: only applied when the predicted gain clears the 5% threshold.
    reschedule_check_seconds: float = 1200.0


@dataclass(frozen=True)
class MemoryConfig:
    """Constants of the dynamic data reloading mechanism (§IV-C)."""

    #: Master switch: disabling turns Harmony's data spill/reload off
    #: entirely (the §V-C ablation's "without dynamic reloading" stage).
    spill_enabled: bool = True
    #: When set, every job keeps this fixed disk-block ratio instead of
    #: hill-climbing (the §V-G fixed-alpha baseline).
    fixed_alpha: "float | None" = None
    #: Hill-climbing step applied to a job's disk-block ratio alpha.
    alpha_step: float = 0.05
    #: Iterations between two alpha adjustments of the same job.
    adjust_every: int = 2
    #: Target memory-pressure ratio used to pick the initial alpha.
    target_pressure: float = 0.75
    #: Dead-band: overheads within this fraction of each other are
    #: considered balanced and alpha is left alone.
    tolerance: float = 0.02
    #: Fraction of an epoch's disk traffic that overlaps with other
    #: jobs' subtasks for free (background reloading, §IV-C).
    gc_model: GCModel = field(default_factory=GCModel)


@dataclass(frozen=True)
class ExecutionConfig:
    """Constants of the subtask execution engine (§IV-A)."""

    #: Effective rate of a secondary COMM subtask relative to a primary
    #: one (it only uses the primary's idle gaps).
    secondary_comm_rate: float = 0.40
    #: Coefficient of variation of subtask durations (measurement noise /
    #: machine jitter); drives the profiler's moving averages and the
    #: nonzero-but-small prediction error of Fig. 13b.
    duration_jitter_cv: float = 0.02
    #: Extra per-iteration synchronizer overhead as a fraction of the
    #: iteration (cross-worker barrier latency + straggler effect).
    barrier_overhead: float = 0.01
    #: Multi-tenant interference (§VI future work): probability that a
    #: COMM subtask is hit by a bursty-traffic spike from other
    #: tenants, and the worst-case slowdown of such a spike.
    comm_interference_probability: float = 0.0
    comm_interference_max: float = 3.0
    #: Iterations of progress lost when a machine failure forces a
    #: restart from the last checkpoint ("checkpointing (per epoch) and
    #: restart", §VI).
    checkpoint_interval_iterations: int = 1


@dataclass(frozen=True)
class ShardConfig:
    """Constants of the cluster-of-cells sharding layer (:mod:`repro.shard`).

    With ``n_cells = 1`` (the default) sharding is inert: the sharded
    scheduler delegates every call to a single plain
    :class:`~repro.core.scheduler.HarmonyScheduler` and is pinned
    bitwise-equal to it by ``tests/test_shard.py``.
    """

    #: Number of scheduling cells the machine pool is partitioned into.
    #: Each cell owns an independent Harmony master/scheduler instance
    #: (with its own plan cache); a thin global placer routes jobs to
    #: cells with O(#cells) load vectors instead of O(#machines) scans.
    n_cells: int = 1
    #: Worker threads for fanning cold per-cell ``schedule()`` calls
    #: out over a ``concurrent.futures`` pool.  1 = serial; the serial
    #: and parallel modes are pinned bitwise-equal (cells are
    #: independent and results merge in deterministic cell order).
    max_workers: int = 1
    #: Schedule calls between two cross-cell rebalance checks; 0
    #: disables periodic rebalancing entirely.
    rebalance_every: int = 32
    #: A cell is "hot" when its normalized load exceeds the mean cell
    #: load by more than this fraction; the rebalancer drains hot cells
    #: into the coldest ones through the §IV-B4 plan-splice path.
    rebalance_threshold: float = 0.25
    #: Most jobs one rebalance pass may migrate between cells.
    max_rebalance_moves: int = 64


@dataclass(frozen=True)
class PolicyConfig:
    """Constants of the competitor policy zoo (:mod:`repro.policies`).

    These parameterize the *non-Harmony* schedulers of the tournament;
    Harmony's own constants stay in :class:`SchedulerConfig`.
    """

    #: DoP scale of the queueing family's dedicated allocations
    #: (fcfs/easy/conservative); mirrors the isolated baseline so the
    #: backfill disciplines are compared apples-to-apples.
    queue_dop_scale: float = 0.50
    #: Co-location cap of the packing/interleaving policies.
    max_group_jobs: int = 4
    #: Synergy: minimum weighted-utilization gain (Eq. 3 score) before
    #: a candidate is packed into the group.
    pack_gain_threshold: float = 0.02
    #: CASSINI: minimum phase compatibility (``t_itr_max / T_g_itr``,
    #: 1.0 = perfectly job-bound interleave) to accept a partner.
    interleave_compat_threshold: float = 0.85


@dataclass(frozen=True)
class SimConfig:
    """Top-level simulation configuration."""

    seed: int = 2021
    machine: MachineSpec = field(default_factory=MachineSpec)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    #: Competitor-policy constants (:mod:`repro.policies`).
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    #: Cluster-of-cells sharding (:mod:`repro.shard`); inert at the
    #: default ``n_cells = 1``.
    shard: ShardConfig = field(default_factory=ShardConfig)
    #: Width of utilization-timeline bins, in seconds (the paper measures
    #: with a 1-minute interval, §V-B).
    utilization_bin_seconds: float = 60.0
    #: Structured tracing / metrics registry (:mod:`repro.trace`);
    #: disabled by default so the hot simulation paths pay nothing.
    trace: TraceConfig = field(default_factory=TraceConfig)
    #: Simulation engine: ``"fast"`` batch-advances eligible groups in
    #: closed form (:mod:`repro.sim.fastpath`); ``"reference"`` forces
    #: the frozen per-event path everywhere.  The two are pinned
    #: bitwise-equal by the differential suite (tests/test_sim_fastpath).
    #: The default honours the ``HARMONY_SIM_ENGINE`` environment knob
    #: (read at construction time) so CI can force the reference engine
    #: across the whole suite.
    engine: str = field(default_factory=_default_engine)

    def __post_init__(self):
        if self.engine not in ("fast", "reference"):
            raise ValueError(
                f"engine must be 'fast' or 'reference', got "
                f"{self.engine!r}")

    def with_seed(self, seed: int) -> "SimConfig":
        return replace(self, seed=seed)

    def with_engine(self, engine: str) -> "SimConfig":
        return replace(self, engine=engine)

    def with_sharding(self, n_cells: int, **kwargs) -> "SimConfig":
        return replace(self, shard=ShardConfig(n_cells=n_cells, **kwargs))

    def with_tracing(self, enabled: bool = True, **kwargs) -> "SimConfig":
        return replace(self, trace=TraceConfig(enabled=enabled, **kwargs))


DEFAULT_SIM_CONFIG = SimConfig()
