"""Binned time-series built from resource busy segments."""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np

from repro.sim.resources import BusySegment


def bin_segments(segments: Iterable[BusySegment], t_end: float,
                 bin_seconds: float, t_start: float = 0.0,
                 weight: float = 1.0) -> np.ndarray:
    """Integrate utilization segments into fixed-width bins.

    Returns, per bin, the average level times ``weight`` (e.g. the
    machine count the segments represent).  Bins cover
    ``[t_start, t_end)``.
    """
    if bin_seconds <= 0:
        raise ValueError(f"bin width must be positive, got {bin_seconds}")
    span = max(0.0, t_end - t_start)
    n_bins = max(1, int(np.ceil(span / bin_seconds)))
    acc = np.zeros(n_bins)
    for segment in segments:
        lo = max(segment.start, t_start)
        hi = min(segment.end, t_end)
        if hi <= lo or segment.level <= 0:
            continue
        first = int((lo - t_start) // bin_seconds)
        last = min(int(np.ceil((hi - t_start) / bin_seconds)), n_bins)
        if last <= first:
            continue
        # Each touched bin contributes its overlap with [lo, hi): the
        # vectorized form clips the segment against every bin edge at
        # once (a long segment over fine bins was O(bins) in Python).
        edges = t_start + bin_seconds * np.arange(first, last + 1)
        overlap = (np.minimum(hi, edges[1:])
                   - np.maximum(lo, edges[:-1])).clip(min=0.0)
        acc[first:last] += overlap * (segment.level * weight)
    return acc / bin_seconds


@dataclass
class Timeline:
    """A binned utilization time series (Fig. 11-style)."""

    bin_seconds: float
    values: np.ndarray
    label: str = ""

    @property
    def times_minutes(self) -> np.ndarray:
        """Bin start times in minutes (the paper's Fig. 11 x-axis)."""
        return np.arange(len(self.values)) * self.bin_seconds / 60.0

    def average(self) -> float:
        return float(np.mean(self.values)) if len(self.values) else 0.0

    def average_until(self, t_seconds: float) -> float:
        """Average over bins that start before ``t_seconds`` (e.g. the
        makespan, so the post-completion tail does not dilute)."""
        n = max(1, int(np.ceil(t_seconds / self.bin_seconds)))
        head = self.values[:n]
        return float(np.mean(head)) if len(head) else 0.0


def downsample(values: Sequence[float], factor: int) -> np.ndarray:
    """Average consecutive groups of ``factor`` values (plot helper)."""
    if factor < 1:
        raise ValueError(f"factor must be >= 1, got {factor}")
    array = np.asarray(values, dtype=float)
    if factor == 1 or array.size == 0:
        return array
    pad = (-array.size) % factor
    padded = np.concatenate([array, np.full(pad, np.nan)])
    return np.nanmean(padded.reshape(-1, factor), axis=1)
