"""Cluster-wide usage recording.

Each job group's CPU and network resources record busy segments while
the group lives; :class:`ClusterUsageRecorder` keeps those segments
(weighted by the group's machine count) after teardown and renders
cluster utilization timelines and averages — the measurements behind
Figs. 10–14.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.metrics.timeline import Timeline, bin_segments
from repro.sim.resources import BusySegment, RateResource


def busy_fraction(resource: RateResource, t_start: float,
                  t_end: float) -> float:
    """Average busy level of a live resource over a window.

    Flushes the resource's in-progress segment up to ``sim.now`` first
    (``close_segments``), then clips each constant-level segment to the
    window.  This is the measurement half of Fig. 13b's utilization
    comparison; the master calls it when a decision epoch closes.
    """
    span = t_end - t_start
    if span <= 0:
        return 0.0
    resource.close_segments()
    busy = 0.0
    for segment in resource.segments:
        lo = max(segment.start, t_start)
        hi = min(segment.end, t_end)
        if hi > lo:
            busy += (hi - lo) * segment.level
    return busy / span


@dataclass
class GroupUsage:
    """Frozen usage of one group over one placement interval."""

    group_id: str
    n_machines: int
    t_start: float
    t_end: float
    cpu_segments: list[BusySegment]
    net_segments: list[BusySegment]

    def busy_fraction(self, which: str) -> float:
        """Average busy level over the placement interval."""
        segments = self.cpu_segments if which == "cpu" else self.net_segments
        span = self.t_end - self.t_start
        if span <= 0:
            return 0.0
        busy = sum(s.duration * s.level for s in segments
                   if s.end > self.t_start and s.start < self.t_end)
        return busy / span


@dataclass
class DecisionRecord:
    """One scheduling decision: predictions vs. eventual measurements.

    Filled in by the runtime to evaluate the performance model's
    accuracy (Fig. 13b): prediction error of the group iteration time
    ``T_g_itr`` and of the cluster utilization ``U``.
    """

    time: float
    group_id: str
    n_machines: int
    job_ids: tuple[str, ...]
    predicted_t_group: float
    predicted_u_cpu: float
    predicted_u_net: float
    measured_t_group: float | None = None
    measured_u_cpu: float | None = None
    measured_u_net: float | None = None

    def t_group_error(self) -> float | None:
        if not self.measured_t_group or self.predicted_t_group <= 0:
            return None
        return abs(self.predicted_t_group - self.measured_t_group) \
            / self.measured_t_group

    def u_error(self) -> float | None:
        if self.measured_u_cpu is None or self.measured_u_net is None:
            return None
        measured = self.measured_u_cpu + self.measured_u_net
        if measured < 0.2:
            return None  # epoch too idle/short to be a meaningful sample
        predicted = self.predicted_u_cpu + self.predicted_u_net
        return abs(predicted - measured) / measured


class ClusterUsageRecorder:
    """Accumulates group usage and job events for a whole run."""

    def __init__(self, total_machines: int, bin_seconds: float = 60.0):
        self.total_machines = total_machines
        self.bin_seconds = bin_seconds
        self.finished_groups: list[GroupUsage] = []
        self._live: dict[str, tuple[int, float, RateResource,
                                    RateResource]] = {}
        self.decisions: list[DecisionRecord] = []

    # -- group lifecycle -----------------------------------------------------

    def group_started(self, group_id: str, n_machines: int, t_start: float,
                      cpu: RateResource, net: RateResource) -> None:
        if group_id in self._live:
            raise ValueError(f"group {group_id} already live")
        self._live[group_id] = (n_machines, t_start, cpu, net)

    def group_stopped(self, group_id: str, t_end: float) -> GroupUsage:
        n_machines, t_start, cpu, net = self._live.pop(group_id)
        cpu.close_segments()
        net.close_segments()
        usage = GroupUsage(group_id=group_id, n_machines=n_machines,
                           t_start=t_start, t_end=t_end,
                           cpu_segments=list(cpu.segments),
                           net_segments=list(net.segments))
        self.finished_groups.append(usage)
        return usage

    def finish(self, t_end: float) -> None:
        """Close any still-live groups at the end of a run."""
        for group_id in list(self._live):
            self.group_stopped(group_id, t_end)

    # -- aggregation -----------------------------------------------------------

    def utilization_timeline(self, which: str, t_end: float) -> Timeline:
        """Cluster utilization over time: busy machine-fraction per bin.

        ``which`` is ``"cpu"`` or ``"net"``.  The denominator is the
        full cluster, so unallocated machines count as idle.
        """
        total = np.zeros(max(1, int(np.ceil(t_end / self.bin_seconds))))
        for usage in self.finished_groups:
            segments = usage.cpu_segments if which == "cpu" \
                else usage.net_segments
            contribution = bin_segments(segments, t_end, self.bin_seconds,
                                        weight=usage.n_machines)
            total[:len(contribution)] += contribution[:len(total)]
        return Timeline(bin_seconds=self.bin_seconds,
                        values=total / self.total_machines,
                        label=which)

    def average_utilization(self, which: str, t_end: float) -> float:
        """Machine-weighted average utilization over [0, t_end)."""
        return self.utilization_timeline(which, t_end).average_until(t_end)
