"""Recovery accounting under injected faults (§VI fault tolerance).

The fault-injection subsystem (:mod:`repro.faults`) reports every
injected event and every recovery milestone here, so experiments can
quantify degradation under failures: how long detection took, how long
each affected job stayed off the cluster, how many iterations of
progress were lost, and how much work had to be re-run.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FaultRecord:
    """One injected fault event and its measured consequences."""

    time: float
    kind: str
    machine_id: int
    #: Group that was running on the machine (None: machine was free).
    group_id: str | None = None
    #: Jobs that were running in the group when the fault hit.
    job_ids: tuple[str, ...] = ()
    #: Window length of a transient fault (slowdown / network drop), or
    #: machine downtime for a crash.
    duration: float = 0.0
    #: Slowdown / retransmit multiplier of a transient fault.
    severity: float = 1.0
    #: When the health monitor noticed the crash (crashes only).
    detected_at: float | None = None
    #: Iterations of progress rolled back to the last checkpoint,
    #: summed over the affected jobs.
    lost_iterations: int = 0
    #: Predicted seconds of work that must be re-run for the rollback.
    rerun_work_seconds: float = 0.0
    #: Per-job time the master needed to get the victim running again,
    #: measured from the crash: job_id -> seconds.
    recovery_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def detection_seconds(self) -> float | None:
        if self.detected_at is None:
            return None
        return self.detected_at - self.time


@dataclass
class FaultSummary:
    """Aggregate recovery statistics of one run."""

    n_crashes: int
    n_slowdowns: int
    n_drops: int
    lost_iterations: int
    rerun_work_seconds: float
    mean_detection_seconds: float
    mean_recovery_seconds: float
    max_recovery_seconds: float
    #: Jobs that were hit by a crash but never came back (still down
    #: when the run ended — should be 0 in a healthy run).
    unrecovered_jobs: int


class FaultLog:
    """Accumulates fault events and recovery milestones for a run."""

    def __init__(self):
        self.records: list[FaultRecord] = []
        #: job_id -> (record, crash detection time) awaiting recovery.
        self._open: dict[str, tuple[FaultRecord, float]] = {}

    # -- recording (called by the injector / master) -------------------

    def fault_injected(self, record: FaultRecord) -> FaultRecord:
        self.records.append(record)
        return record

    def crash_detected(self, record: FaultRecord, at: float) -> None:
        record.detected_at = at

    def jobs_displaced(self, record: FaultRecord, at: float,
                       job_ids: tuple[str, ...],
                       lost_iterations: int,
                       rerun_work_seconds: float) -> None:
        """The master crashed the group: victims start their recovery
        clock (at the *fault* time — detection latency is part of the
        recovery the user experiences)."""
        record.job_ids = job_ids
        record.lost_iterations += lost_iterations
        record.rerun_work_seconds += rerun_work_seconds
        for job_id in job_ids:
            self._open[job_id] = (record, at)

    def job_recovered(self, job_id: str, at: float) -> None:
        """A displaced job is running (or finished) again."""
        entry = self._open.pop(job_id, None)
        if entry is None:
            return
        record, _detected = entry
        record.recovery_seconds[job_id] = at - record.time

    # -- queries -------------------------------------------------------

    @property
    def pending_recoveries(self) -> tuple[str, ...]:
        return tuple(sorted(self._open))

    def is_recovering(self, job_id: str) -> bool:
        return job_id in self._open

    def summary(self) -> FaultSummary:
        crashes = [r for r in self.records if r.kind == "machine_crash"]
        detections = [r.detection_seconds for r in crashes
                      if r.detection_seconds is not None]
        recoveries = [seconds for r in crashes
                      for seconds in r.recovery_seconds.values()]
        return FaultSummary(
            n_crashes=len(crashes),
            n_slowdowns=sum(1 for r in self.records
                            if r.kind == "machine_slowdown"),
            n_drops=sum(1 for r in self.records
                        if r.kind == "network_drop"),
            lost_iterations=sum(r.lost_iterations for r in self.records),
            rerun_work_seconds=sum(r.rerun_work_seconds
                                   for r in self.records),
            mean_detection_seconds=(sum(detections) / len(detections)
                                    if detections else 0.0),
            mean_recovery_seconds=(sum(recoveries) / len(recoveries)
                                   if recoveries else 0.0),
            max_recovery_seconds=max(recoveries, default=0.0),
            unrecovered_jobs=len(self._open))

    def rows(self) -> list[tuple]:
        """Flat per-event rows for CSV export (one row per fault)."""
        rows = []
        for record in self.records:
            recoveries = record.recovery_seconds.values()
            rows.append((
                f"{record.time:.1f}", record.kind, record.machine_id,
                record.group_id or "", len(record.job_ids),
                f"{record.duration:.1f}", f"{record.severity:.2f}",
                "" if record.detection_seconds is None
                else f"{record.detection_seconds:.1f}",
                record.lost_iterations,
                f"{record.rerun_work_seconds:.1f}",
                f"{max(recoveries):.1f}" if recoveries else ""))
        return rows

    #: Column headers matching :meth:`rows`.
    CSV_HEADERS = ("time_s", "kind", "machine_id", "group_id",
                   "n_jobs_affected", "duration_s", "severity",
                   "detection_s", "lost_iterations", "rerun_work_s",
                   "max_recovery_s")
