"""Plain-text report rendering for the experiment drivers.

Every experiment prints the rows/series the paper reports; this module
keeps the formatting consistent (and testable) across them.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: str = "") -> str:
    """Render an aligned ASCII table."""
    columns = len(headers)
    for row in rows:
        if len(row) != columns:
            raise ValueError(
                f"row has {len(row)} cells, expected {columns}: {row}")
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [max(len(headers[i]), *(len(r[i]) for r in cells))
              if cells else len(headers[i]) for i in range(columns)]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i])
                           for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(row[i].ljust(widths[i])
                               for i in range(columns)))
    return "\n".join(lines)


def format_comparison(name: str, paper_value: float, measured: float,
                      unit: str = "x") -> str:
    """One paper-vs-measured line for EXPERIMENTS.md-style reporting."""
    return (f"{name}: paper={paper_value:.2f}{unit} "
            f"measured={measured:.2f}{unit}")


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.2f}"
    return str(value)
