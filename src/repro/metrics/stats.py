"""Small statistics helpers used by experiments and reports."""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (reports stay total)."""
    return float(np.mean(values)) if len(values) else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100)."""
    if not len(values):
        return 0.0
    return float(np.percentile(values, q))


def speedup(baseline: float, measured: float) -> float:
    """Speedup of ``measured`` relative to ``baseline`` (>1 is faster)."""
    if measured <= 0:
        raise ValueError(f"non-positive measurement {measured}")
    return baseline / measured


def cdf_points(values: Sequence[float]) -> tuple[np.ndarray, np.ndarray]:
    """Empirical CDF as (sorted values, cumulative fractions).

    The y-values step from 1/n to 1.0, matching the "cumulative
    distribution" axes of Figs. 9 and 12.
    """
    array = np.sort(np.asarray(values, dtype=float))
    if array.size == 0:
        return array, array
    fractions = np.arange(1, array.size + 1, dtype=float) / array.size
    return array, fractions
