"""Measurement: utilization timelines, run statistics, paper-style reports."""

from repro.metrics.faults import FaultLog, FaultRecord, FaultSummary
from repro.metrics.reporting import format_table
from repro.metrics.stats import cdf_points, mean, percentile, speedup
from repro.metrics.timeline import Timeline, bin_segments
from repro.metrics.utilization import (
    ClusterUsageRecorder,
    DecisionRecord,
    GroupUsage,
)

__all__ = [
    "ClusterUsageRecorder",
    "DecisionRecord",
    "FaultLog",
    "FaultRecord",
    "FaultSummary",
    "GroupUsage",
    "Timeline",
    "bin_segments",
    "cdf_points",
    "format_table",
    "mean",
    "percentile",
    "speedup",
]
