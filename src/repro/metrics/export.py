"""CSV export of experiment results.

Every experiment driver's structured result can be flattened to CSV so
downstream users can plot the figures with their own tooling.  Kept
dependency-free (``csv`` from the standard library).
"""

from __future__ import annotations

import csv
from collections.abc import Sequence
from pathlib import Path
from typing import Any


def write_csv(path: "str | Path", headers: Sequence[str],
              rows: Sequence[Sequence[Any]]) -> Path:
    """Write one table; returns the resolved path."""
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row with {len(row)} cells under {len(headers)} headers")
    with target.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)
    return target


def export_timeline(path: "str | Path", timeline) -> Path:
    """One utilization timeline (Fig. 11-style) to CSV."""
    rows = [(f"{minute:.1f}", f"{value:.4f}")
            for minute, value in zip(timeline.times_minutes,
                                     timeline.values, strict=True)]
    return write_csv(path, ["minute", "utilization"], rows)


def export_cdf(path: "str | Path", values: Sequence[float]) -> Path:
    """An empirical CDF (Figs. 9/12-style) to CSV."""
    from repro.metrics.stats import cdf_points
    xs, ys = cdf_points(values)
    rows = [(f"{x:.6g}", f"{y:.6f}") for x, y in zip(xs, ys, strict=True)]
    return write_csv(path, ["value", "cumulative_fraction"], rows)


def export_fault_log(path: "str | Path", log) -> Path:
    """One row per injected fault: detection latency, lost iterations,
    re-run work, and worst per-job recovery time."""
    return write_csv(path, list(log.CSV_HEADERS), log.rows())


def export_counters(path: "str | Path", tracer) -> Path:
    """The trace layer's metrics registry (final values) to CSV."""
    from repro.trace.export import counter_rows
    return write_csv(path, ["kind", "name", "value"], counter_rows(tracer))


def export_run_result(directory: "str | Path", result) -> list[Path]:
    """Everything plottable from one RunResult: per-job outcomes plus
    CPU/network timelines (and the fault log when faults were
    injected, and the trace counters when tracing was on)."""
    base = Path(directory)
    written = []
    outcome_rows = []
    for outcome in result.outcomes.values():
        outcome_rows.append((
            outcome.job_id, outcome.state.value,
            f"{outcome.submit_time:.1f}",
            "" if outcome.finish_time is None
            else f"{outcome.finish_time:.1f}",
            outcome.migrations))
    written.append(write_csv(
        base / f"{result.scheduler_name}_jobs.csv",
        ["job_id", "state", "submit_s", "finish_s", "migrations"],
        outcome_rows))
    for resource in ("cpu", "net"):
        written.append(export_timeline(
            base / f"{result.scheduler_name}_{resource}_timeline.csv",
            result.utilization_timeline(resource)))
    fault_log = getattr(result, "fault_log", None)
    if fault_log is not None and fault_log.records:
        written.append(export_fault_log(
            base / f"{result.scheduler_name}_faults.csv", fault_log))
    trace = getattr(result, "trace", None)
    if trace is not None and trace.enabled:
        written.append(export_counters(
            base / f"{result.scheduler_name}_counters.csv", trace))
    return written
