"""Worker-side PS client: the pull/push API of Fig. 1.

A :class:`PSClient` belongs to one worker of one job.  ``pull`` gathers
the model from every shard, ``push`` scatters gradient deltas; both are
exactly the COMM subtasks Harmony schedules (§IV-A treats "PS push/pull
methods as COMM subtasks" with serialization hoisted out).
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np

from repro.errors import PSError
from repro.ps.partition import RangePartitioner
from repro.ps.serialization import decode, encode
from repro.ps.transport import InProcessTransport


class PSClient:
    """One worker's handle on the parameter servers."""

    def __init__(self, worker_id: int, transport: InProcessTransport,
                 partitioner: RangePartitioner):
        self.worker_id = worker_id
        self.transport = transport
        self.partitioner = partitioner
        self.clock = 0

    # -- the PS API --------------------------------------------------------

    def pull(self, keys: list[str] | None = None) -> \
            dict[str, np.ndarray]:
        """Gather parameters for the current clock from all shards."""
        wanted = self.partitioner.keys if keys is None else list(keys)
        gathered: dict[str, np.ndarray] = {}
        for shard, shard_keys in sorted(
                self.partitioner.group_by_shard(wanted).items()):
            gathered.update(self.transport.pull(shard, shard_keys,
                                                self.clock))
        missing = set(wanted) - set(gathered)
        if missing:
            raise PSError(f"pull failed to gather {sorted(missing)}")
        return gathered

    def push(self, deltas: Mapping[str, np.ndarray]) -> None:
        """Scatter deltas to their shards and advance the clock."""
        grouped = self.partitioner.group_by_shard(list(deltas))
        for shard in range(self.partitioner.n_shards):
            shard_deltas = {k: deltas[k] for k in grouped.get(shard, [])}
            # Every shard hears from every worker each clock, even with
            # an empty delta, so the synchronous barrier can complete.
            self.transport.push(shard, self.worker_id, shard_deltas,
                                self.clock)
        self.clock += 1

    # -- serialization helpers (COMP-side work, §IV-A) ------------------------

    @staticmethod
    def serialize(deltas: Mapping[str, np.ndarray]) -> bytes:
        """Encode deltas on the COMP side, before the COMM subtask."""
        return encode(deltas)

    @staticmethod
    def deserialize(frame: bytes) -> dict[str, np.ndarray]:
        return decode(frame)
