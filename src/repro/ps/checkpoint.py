"""Model checkpointing to disk (§IV-B4's pause path, §VI's fault
tolerance — on the real runtime).

"When temporarily pausing a running job during runtime, Harmony waits
until [the] ongoing iteration ends, stops the subtasks of the job, and
checkpoints the model parameters on disk.  Whenever it decides to
resume the job, Harmony ... restores the model parameters from the
checkpoint data."

Checkpoints use the PS wire format (:mod:`repro.ps.serialization`) with
a small header recording the clock, so a resumed job continues from the
exact synchronous step it paused at.
"""

from __future__ import annotations

import struct
from collections.abc import Mapping
from pathlib import Path

import numpy as np

from repro.errors import PSError
from repro.ps.serialization import decode, encode

_MAGIC = b"HCKP"
_VERSION = 1


def save_checkpoint(path: "str | Path",
                    params: Mapping[str, np.ndarray],
                    clock: int = 0) -> Path:
    """Write a model checkpoint; returns the resolved path."""
    if clock < 0:
        raise PSError(f"negative clock {clock}")
    target = Path(path)
    if target.parent and not target.parent.exists():
        target.parent.mkdir(parents=True, exist_ok=True)
    frame = encode(dict(params))
    header = _MAGIC + struct.pack("<IQ", _VERSION, clock)
    target.write_bytes(header + frame)
    return target


def load_checkpoint(path: "str | Path") -> \
        tuple[dict[str, np.ndarray], int]:
    """Read a checkpoint back; returns ``(params, clock)``."""
    blob = Path(path).read_bytes()
    if blob[:4] != _MAGIC:
        raise PSError(f"{path}: not a Harmony checkpoint")
    version, clock = struct.unpack_from("<IQ", blob, 4)
    if version != _VERSION:
        raise PSError(f"{path}: unsupported checkpoint version {version}")
    params = decode(blob[4 + 12:])
    return params, int(clock)


def checkpoint_servers(path: "str | Path", servers,
                       clock: int = 0) -> Path:
    """Snapshot every shard of a job's servers into one file."""
    merged: dict[str, np.ndarray] = {}
    for server in servers:
        merged.update(server.checkpoint())
    return save_checkpoint(path, merged, clock=clock)


def restore_servers(path: "str | Path", servers, partitioner) -> int:
    """Load a checkpoint back into its shards; returns the clock."""
    params, clock = load_checkpoint(path)
    for server in servers:
        shard_keys = partitioner.keys_of_shard(server.shard_id)
        missing = [key for key in shard_keys if key not in params]
        if missing:
            raise PSError(
                f"checkpoint misses keys for shard {server.shard_id}: "
                f"{missing[:3]}")
        server.restore({key: params[key] for key in shard_keys})
    return clock
