"""A real, in-process Parameter-Server (§II-A substrate).

Servers each hold a partition of the model parameters; workers iterate
PULL -> COMP -> PUSH through :class:`PSClient`, synchronizing at clock
barriers (synchronous training — the paper sets Bösen's staleness to 0).
Everything runs in one process with genuine threads, locks, and byte
accounting, so the subtask decomposition of §IV-A can be exercised for
real in :mod:`repro.core.local_runtime` and the examples.
"""

from repro.ps.client import PSClient
from repro.ps.kvstore import KVStore
from repro.ps.partition import RangePartitioner
from repro.ps.serialization import payload_bytes
from repro.ps.server import PSServer
from repro.ps.transport import InProcessTransport

__all__ = [
    "InProcessTransport",
    "KVStore",
    "PSClient",
    "PSServer",
    "RangePartitioner",
    "payload_bytes",
]
