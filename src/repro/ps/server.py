"""A PS server shard with synchronous (staleness-0) clock semantics.

The paper validates its substrate against Bösen "with its staleness
parameter set to 0 for synchronous training" (§V-B): a worker may pull
the model for clock ``c`` only after every worker's clock ``c - 1``
push has been applied.  :meth:`handle_pull` blocks on that barrier.
"""

from __future__ import annotations

import threading
from collections.abc import Mapping

import numpy as np

from repro.errors import PSError
from repro.ps.kvstore import KVStore


class PSServer:
    """One model shard plus the synchronization barrier state."""

    def __init__(self, shard_id: int, n_workers: int,
                 store: KVStore | None = None,
                 barrier_timeout: float = 60.0):
        if n_workers < 1:
            raise PSError(f"need >= 1 worker, got {n_workers}")
        self.shard_id = shard_id
        self.n_workers = n_workers
        self.store = store if store is not None else KVStore()
        self._condition = threading.Condition()
        self._pushed_at: dict[int, int] = {w: -1 for w in range(n_workers)}
        self._completed_clock = -1
        self._barrier_timeout = barrier_timeout

    # -- setup ------------------------------------------------------------

    def init_params(self, values: Mapping[str, np.ndarray]) -> None:
        for key, value in values.items():
            self.store.init(key, value)

    @property
    def completed_clock(self) -> int:
        with self._condition:
            return self._completed_clock

    # -- the PS protocol -----------------------------------------------------

    def handle_pull(self, keys: list[str],
                    clock: int) -> dict[str, np.ndarray]:
        """Return parameters for iteration ``clock``.

        Blocks until clock ``clock - 1`` is complete on this shard
        (synchronous barrier).  Raises on timeout — a deadlocked barrier
        is a bug, not something to hang a test suite on.
        """
        with self._condition:
            done = self._condition.wait_for(
                lambda: self._completed_clock >= clock - 1,
                timeout=self._barrier_timeout)
            if not done:
                raise PSError(
                    f"shard {self.shard_id}: barrier timeout waiting for "
                    f"clock {clock - 1} (completed={self._completed_clock})")
        return self.store.snapshot(keys)

    def handle_push(self, worker_id: int,
                    deltas: Mapping[str, np.ndarray], clock: int) -> None:
        """Apply a worker's deltas for iteration ``clock``."""
        with self._condition:
            if worker_id not in self._pushed_at:
                raise PSError(f"unknown worker {worker_id}")
        self.store.update(dict(deltas))
        with self._condition:
            if clock <= self._pushed_at[worker_id]:
                raise PSError(
                    f"worker {worker_id} pushed clock {clock} twice")
            self._pushed_at[worker_id] = clock
            if all(c >= clock for c in self._pushed_at.values()):
                self._completed_clock = max(self._completed_clock, clock)
                self._condition.notify_all()

    # -- checkpointing (the §IV-B4 pause path) -----------------------------------

    def checkpoint(self) -> dict[str, np.ndarray]:
        """Snapshot the full shard (model migration / fault tolerance)."""
        return self.store.snapshot()

    def restore(self, values: Mapping[str, np.ndarray]) -> None:
        self.store.assign(dict(values))
