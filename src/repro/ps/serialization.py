"""Payload byte accounting and (de)serialization.

Harmony moves "data (de)serialization outside of COMM subtask" to keep
COMM subtasks purely network-bound (§IV-A).  The local runtime mirrors
that: :func:`encode`/:func:`decode` are the CPU-side serialization work
and :func:`payload_bytes` is what the transport charges to the wire.
"""

from __future__ import annotations

import struct
from collections.abc import Mapping

import numpy as np

from repro.errors import PSError

_MAGIC = b"HPSM"  # Harmony PS message


def payload_bytes(arrays: Mapping[str, np.ndarray]) -> int:
    """Wire size of a key->array mapping (headers + raw data)."""
    total = len(_MAGIC) + 4
    for key, value in arrays.items():
        array = np.asarray(value, dtype=np.float64)
        total += 4 + len(key.encode())
        total += 4  # ndim
        total += 8 * array.ndim  # shape
        total += array.nbytes
    return total


def encode(arrays: Mapping[str, np.ndarray]) -> bytes:
    """Serialize a key->array mapping to a compact binary frame."""
    parts = [_MAGIC, struct.pack("<I", len(arrays))]
    for key in sorted(arrays):
        # note: np.ascontiguousarray would promote 0-d arrays to 1-d.
        value = np.asarray(arrays[key], dtype=np.float64, order="C")
        name = key.encode()
        parts.append(struct.pack("<I", len(name)))
        parts.append(name)
        parts.append(struct.pack("<I", value.ndim))
        parts.append(struct.pack(f"<{value.ndim}q", *value.shape))
        parts.append(value.tobytes())
    return b"".join(parts)


def decode(frame: bytes) -> dict[str, np.ndarray]:
    """Inverse of :func:`encode`."""
    if frame[:4] != _MAGIC:
        raise PSError("bad frame magic")
    offset = 4
    (count,) = struct.unpack_from("<I", frame, offset)
    offset += 4
    result: dict[str, np.ndarray] = {}
    for _ in range(count):
        (name_len,) = struct.unpack_from("<I", frame, offset)
        offset += 4
        key = frame[offset:offset + name_len].decode("utf-8")
        offset += name_len
        (ndim,) = struct.unpack_from("<I", frame, offset)
        offset += 4
        shape = struct.unpack_from(f"<{ndim}q", frame, offset)
        offset += 8 * ndim
        size = int(np.prod(shape)) if ndim else 1
        nbytes = size * 8
        array = np.frombuffer(frame, dtype=np.float64, count=size,
                              offset=offset).reshape(shape).copy()
        offset += nbytes
        result[key] = array
    if offset != len(frame):
        raise PSError(f"trailing bytes in frame ({len(frame) - offset})")
    return result
