"""Model partitioning across PS servers.

The paper co-locates one server per machine and partitions the model
evenly (§II-A); :class:`RangePartitioner` assigns parameter keys to
shards round-robin over the sorted key set, which balances shard sizes
for same-shaped keys.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from repro.errors import PSError


class RangePartitioner:
    """Deterministic key -> shard assignment."""

    def __init__(self, keys: Iterable[str], n_shards: int):
        key_list = sorted(set(keys))
        if n_shards < 1:
            raise PSError(f"need >= 1 shard, got {n_shards}")
        if not key_list:
            raise PSError("cannot partition an empty key set")
        self.n_shards = min(n_shards, len(key_list))
        self._shard_of: dict[str, int] = {
            key: index % self.n_shards
            for index, key in enumerate(key_list)}

    @property
    def keys(self) -> list[str]:
        return sorted(self._shard_of)

    def shard_of(self, key: str) -> int:
        shard = self._shard_of.get(key)
        if shard is None:
            raise PSError(f"unknown key {key!r}")
        return shard

    def keys_of_shard(self, shard: int) -> list[str]:
        if not 0 <= shard < self.n_shards:
            raise PSError(f"shard {shard} out of range")
        return sorted(k for k, s in self._shard_of.items() if s == shard)

    def group_by_shard(self, keys: Sequence[str]) -> dict[int, list[str]]:
        """Split a key list by owning shard (the scatter step)."""
        grouped: dict[int, list[str]] = {}
        for key in keys:
            grouped.setdefault(self.shard_of(key), []).append(key)
        return grouped
