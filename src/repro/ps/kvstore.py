"""Thread-safe versioned key -> ndarray store backing a PS shard."""

from __future__ import annotations

import threading
from collections.abc import Iterable

import numpy as np

from repro.errors import PSError


class KVStore:
    """Parameter storage for one server shard.

    Values are float64 ndarrays.  ``update`` applies additive deltas
    (the PS "push" semantics); ``snapshot`` returns copies so callers
    can never alias server memory.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._data: dict[str, np.ndarray] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotone update counter (bumped once per ``update`` call)."""
        with self._lock:
            return self._version

    def keys(self) -> list[str]:
        with self._lock:
            return sorted(self._data)

    def init(self, key: str, value: np.ndarray) -> None:
        """Install an initial parameter value; key must be new."""
        array = np.asarray(value, dtype=np.float64)
        with self._lock:
            if key in self._data:
                raise PSError(f"key {key!r} already initialized")
            self._data[key] = array.copy()

    def get(self, key: str) -> np.ndarray:
        with self._lock:
            value = self._data.get(key)
            if value is None:
                raise PSError(f"unknown key {key!r}")
            return value.copy()

    def snapshot(self, keys: Iterable[str] | None = None) -> \
            dict[str, np.ndarray]:
        """Copies of the requested (default: all) entries."""
        with self._lock:
            wanted = self.keys() if keys is None else list(keys)
            missing = [k for k in wanted if k not in self._data]
            if missing:
                raise PSError(f"unknown keys {missing}")
            return {k: self._data[k].copy() for k in wanted}

    def update(self, deltas: dict[str, np.ndarray],
               scale: float = 1.0) -> int:
        """Apply additive deltas (``value += scale * delta``) atomically.

        Returns the new version.
        """
        with self._lock:
            for key, delta in deltas.items():
                current = self._data.get(key)
                if current is None:
                    raise PSError(f"unknown key {key!r}")
                delta = np.asarray(delta, dtype=np.float64)
                if delta.shape != current.shape:
                    raise PSError(
                        f"shape mismatch for {key!r}: "
                        f"{delta.shape} vs {current.shape}")
                current += scale * delta
            self._version += 1
            return self._version

    def assign(self, values: dict[str, np.ndarray]) -> int:
        """Overwrite entries (checkpoint restore path)."""
        with self._lock:
            for key, value in values.items():
                if key not in self._data:
                    raise PSError(f"unknown key {key!r}")
                self._data[key] = np.asarray(value,
                                             dtype=np.float64).copy()
            self._version += 1
            return self._version

    def total_bytes(self) -> int:
        with self._lock:
            return sum(v.nbytes for v in self._data.values())
