"""In-process transport between PS clients and servers.

Every message crosses the transport, which meters bytes per direction
and, optionally, injects a bandwidth delay so that the local runtime's
COMM subtasks take time proportional to the bytes moved — the same
shape as the cluster network model.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Mapping
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import PSError
from repro.ps.serialization import payload_bytes

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.ps.server import PSServer


class InProcessTransport:
    """Routes pull/push requests to registered server shards."""

    def __init__(self, simulated_bandwidth_bps: float | None = None):
        self._servers: dict[int, "PSServer"] = {}
        self._lock = threading.Lock()
        self.simulated_bandwidth_bps = simulated_bandwidth_bps
        self.bytes_pulled = 0
        self.bytes_pushed = 0
        self.requests = 0

    # -- wiring ---------------------------------------------------------

    def register(self, server: "PSServer") -> None:
        with self._lock:
            if server.shard_id in self._servers:
                raise PSError(f"shard {server.shard_id} already registered")
            self._servers[server.shard_id] = server

    def server(self, shard_id: int) -> "PSServer":
        with self._lock:
            server = self._servers.get(shard_id)
        if server is None:
            raise PSError(f"no server for shard {shard_id}")
        return server

    @property
    def n_shards(self) -> int:
        with self._lock:
            return len(self._servers)

    # -- request routing --------------------------------------------------

    def pull(self, shard_id: int, keys: list[str],
             clock: int) -> dict[str, np.ndarray]:
        """Fetch parameters from a shard (counts response bytes)."""
        server = self.server(shard_id)
        values = server.handle_pull(keys, clock)
        self._account(pulled=payload_bytes(values))
        return values

    def push(self, shard_id: int, worker_id: int,
             deltas: Mapping[str, np.ndarray], clock: int) -> None:
        """Send gradient deltas to a shard (counts request bytes)."""
        size = payload_bytes(deltas)
        self._account(pushed=size)
        self.server(shard_id).handle_push(worker_id, deltas, clock)

    # -- metering -----------------------------------------------------------

    def _account(self, pulled: int = 0, pushed: int = 0) -> None:
        with self._lock:
            self.bytes_pulled += pulled
            self.bytes_pushed += pushed
            self.requests += 1
        n_bytes = pulled + pushed
        if self.simulated_bandwidth_bps and n_bytes:
            time.sleep(n_bytes / self.simulated_bandwidth_bps)

    @property
    def total_bytes(self) -> int:
        with self._lock:
            return self.bytes_pulled + self.bytes_pushed
