"""Machine allocation to job groups (§IV-B3, L8 of Algorithm 1).

"First, the algorithm allocates one machine for every job group.  The
algorithm then repeats a step of allocating one machine to a group that
needs additional machines the most.  Those groups that need machines
are the most computation-intensive ones, as having more machines would
reduce the computation cost in an iteration (Eq. 2), reducing the
CPU-bound cases (Eq. 1)."

Memory feasibility is honoured: a group's floor is the smallest machine
count at which its jobs fit even with maximal input spill (the paper's
model-spill fallback covers the rest, but a group that cannot hold its
models has no valid placement).

The allocator is the hottest loop of the planning stack (one grant per
machine, hundreds of machines per ``_plan_for``), so the production
implementation solves the greedy process in closed form: the grant
taking group ``i`` from ``a`` to ``a+1`` machines has priority
``p_i(a) = W_i/a - T_i`` (its CPU pressure *before* the grant), the
per-group priority sequences are strictly decreasing, and the greedy
loop executes exactly the ``spare`` highest-priority positive grants
(ties across groups broken by group index).  Computing that set
directly — with the very same float divisions and comparisons the
one-at-a-time loop would perform — produces bitwise-identical
allocations (pinned against
:func:`repro.core.reference.reference_allocate_machines` by the
differential suite) in a handful of vectorized passes.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence

import numpy as np

from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError

#: Returns the minimum machine count for a set of co-located jobs.
MemoryFloorFn = Callable[[Sequence[str]], int]

#: Above this many candidate grants the vectorized top-``spare``
#: selection would allocate too much memory; fall back to the heap.
_MAX_CANDIDATES = 4_000_000


def allocate_machines(groups: Sequence[Sequence[JobMetrics]],
                      total_machines: int,
                      memory_floor: MemoryFloorFn | None = None) -> \
        list[int] | None:
    """Machine counts per group, or None when memory-infeasible.

    Always hands a machine to the group whose CPU-side bottleneck
    exceeds its network-side bottleneck by the most (the most
    computation-intensive group); stops early when no group is
    CPU-bound any more, leaving the remainder free for future arrivals.
    """
    if total_machines < 1:
        raise SchedulingError(
            f"total_machines must be >= 1, got {total_machines}")
    if not groups:
        return []

    floors = []
    for group in groups:
        if not group:
            raise SchedulingError("cannot allocate to an empty group")
        job_ids = [job.job_id for job in group]
        floors.append(memory_floor(job_ids) if memory_floor else 1)
    if sum(floors) > total_machines:
        return None  # not placeable even at the memory floors

    spare = total_machines - sum(floors)
    # Group sums stay Python-sequential on purpose: they feed the same
    # pressure arithmetic as the reference loop, term for term.
    cpu_work = [sum(job.cpu_work for job in group) for group in groups]
    t_net = [sum(job.t_net for job in group) for group in groups]
    if spare == 0:
        return list(floors)

    # Last machine count whose grant still has positive priority:
    # largest a with work/a > net, decided by exactly the loop's stop
    # comparison.  The float estimate work/net lands within a couple of
    # the true boundary; direct-comparison nudges make it exact.
    demand = []
    total_demand = 0
    for index in range(len(floors)):
        work = cpu_work[index]
        net = t_net[index]
        lowest = floors[index]
        cap = lowest + spare  # can absorb at most every spare grant
        if net > 0.0:
            estimate = work / net
            bound = int(estimate) if estimate < cap else cap
            if bound < lowest - 1:
                bound = lowest - 1
        else:
            bound = cap
        while bound < cap and work / (bound + 1) > net:
            bound += 1
        while bound >= lowest and work / bound <= net:
            bound -= 1
        wanted = bound - lowest + 1
        if wanted > 0:
            demand.append(wanted)
            total_demand += wanted
        else:
            demand.append(0)

    if total_demand <= spare:
        # Saturated: every positive-priority grant executes and the
        # loop breaks with machines left over — order never matters.
        return [floors[i] + demand[i] for i in range(len(floors))]

    counts = np.minimum(np.array(demand, dtype=np.int64), spare)
    n_candidates = int(counts.sum())
    if n_candidates > _MAX_CANDIDATES:
        return _allocate_by_heap(list(floors), spare, cpu_work, t_net)
    base = np.array(floors, dtype=np.int64)
    work = np.array(cpu_work, dtype=np.float64)
    net = np.array(t_net, dtype=np.float64)

    # Demand-limited: exactly the `spare` highest-priority grants
    # execute.  Materialize every candidate grant's priority with the
    # same division the loop would use, select the spare-th largest as
    # the threshold, and hand the leftover threshold-tied grants to the
    # smallest group indexes first (the heap's tuple tie-break).
    group_index = np.repeat(np.arange(len(floors)), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(n_candidates) - np.repeat(ends - counts, counts)
    a_values = np.repeat(base, counts) + offsets
    priorities = (np.repeat(work, counts) / a_values
                  - np.repeat(net, counts))
    threshold = np.partition(priorities, n_candidates - spare)[
        n_candidates - spare]
    above = priorities > threshold
    granted = np.bincount(group_index[above], minlength=len(floors))
    remaining = spare - int(above.sum())
    if remaining > 0:
        tied = np.nonzero(np.bincount(group_index[
            priorities == threshold], minlength=len(floors)))[0]
        granted[tied[:remaining]] += 1
    return [int(n) for n in base + granted]


def _allocate_by_heap(allocation: list[int], spare: int,
                      cpu_work: list[float],
                      t_net: list[float]) -> list[int]:
    """Grant-by-grant max-heap loop (the reference process), with
    consecutive grants to the same group batched via exact tuple
    comparisons against the heap top."""
    heap = [(t_net[i] - cpu_work[i] / allocation[i], i)
            for i in range(len(allocation))]
    heapq.heapify(heap)
    saturated = False
    while spare > 0 and heap:
        negative_pressure, index = heapq.heappop(heap)
        work = cpu_work[index]
        net = t_net[index]
        granted = allocation[index]
        current = -negative_pressure
        while True:
            if current <= 0:
                # Every other group's pressure is at most this one's:
                # extra machines would not shorten any group iteration
                # (Eq. 1); leave the remainder free for future arrivals.
                saturated = True
                break
            granted += 1
            spare -= 1
            current = work / granted - net
            if spare <= 0:
                break
            if heap and not ((-current, index) < heap[0]):
                break  # another group pops first now
        allocation[index] = granted
        if saturated:
            break
        if spare > 0:
            heapq.heappush(heap, (-current, index))

    return allocation
