"""Machine allocation to job groups (§IV-B3, L8 of Algorithm 1).

"First, the algorithm allocates one machine for every job group.  The
algorithm then repeats a step of allocating one machine to a group that
needs additional machines the most.  Those groups that need machines
are the most computation-intensive ones, as having more machines would
reduce the computation cost in an iteration (Eq. 2), reducing the
CPU-bound cases (Eq. 1)."

Memory feasibility is honoured: a group's floor is the smallest machine
count at which its jobs fit even with maximal input spill (the paper's
model-spill fallback covers the rest, but a group that cannot hold its
models has no valid placement).
"""

from __future__ import annotations

import heapq
from typing import Callable, Optional, Sequence

from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError

#: Returns the minimum machine count for a set of co-located jobs.
MemoryFloorFn = Callable[[Sequence[str]], int]


def allocate_machines(groups: Sequence[Sequence[JobMetrics]],
                      total_machines: int,
                      memory_floor: Optional[MemoryFloorFn] = None) -> \
        Optional[list[int]]:
    """Machine counts per group, or None when memory-infeasible.

    Always hands a machine to the group whose CPU-side bottleneck
    exceeds its network-side bottleneck by the most (the most
    computation-intensive group); stops early when no group is
    CPU-bound any more, leaving the remainder free for future arrivals.
    """
    if total_machines < 1:
        raise SchedulingError(
            f"total_machines must be >= 1, got {total_machines}")
    if not groups:
        return []

    floors = []
    for group in groups:
        if not group:
            raise SchedulingError("cannot allocate to an empty group")
        job_ids = [job.job_id for job in group]
        floors.append(memory_floor(job_ids) if memory_floor else 1)
    if sum(floors) > total_machines:
        return None  # not placeable even at the memory floors

    allocation = list(floors)
    spare = total_machines - sum(allocation)

    cpu_work = [sum(job.cpu_work for job in group) for group in groups]
    t_net = [sum(job.t_net for job in group) for group in groups]

    def cpu_pressure(index: int) -> float:
        """How CPU-bound group ``index`` is at its current allocation."""
        return cpu_work[index] / allocation[index] - t_net[index]

    # Lazy max-heap: pressures only change for the group that just
    # received a machine, so stale entries are re-pushed rather than the
    # whole heap rebuilt (keeps §V-F-scale allocation near-linear).
    heap = [(-cpu_pressure(i), i) for i in range(len(groups))]
    heapq.heapify(heap)
    while spare > 0 and heap:
        negative_pressure, index = heapq.heappop(heap)
        current = cpu_pressure(index)
        if current < -negative_pressure - 1e-12:
            heapq.heappush(heap, (-current, index))  # stale, retry
            continue
        if current <= 0:
            break  # every group is network- or job-bound: extra machines
            # would not shorten any group iteration (Eq. 1)
        allocation[index] += 1
        spare -= 1
        heapq.heappush(heap, (-cpu_pressure(index), index))

    return allocation
