"""Job lifecycle: the state machine of §III.

A submitted job moves through ``WAITING -> PROFILING -> PROFILED ->
RUNNING`` and may bounce between ``RUNNING`` and ``PAUSED`` as the
scheduler regroups, until it reaches ``FINISHED`` (model convergence)
or ``FAILED`` (e.g. an OOM under a baseline scheduler).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import JobStateError
from repro.workloads.apps import JobSpec


class JobState(enum.Enum):
    """States of Fig. 6 / §III."""

    WAITING = "waiting"
    PROFILING = "profiling"
    PROFILED = "profiled"
    RUNNING = "running"
    PAUSED = "paused"
    FINISHED = "finished"
    FAILED = "failed"


#: Legal transitions of the job state machine.
_TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.WAITING: frozenset({JobState.PROFILING}),
    # A very short job can converge, be paused by a rebuild, or fail
    # while still being profiled.
    JobState.PROFILING: frozenset({JobState.PROFILED, JobState.RUNNING,
                                   JobState.PAUSED, JobState.FINISHED,
                                   JobState.FAILED}),
    JobState.PROFILED: frozenset({JobState.RUNNING, JobState.PAUSED,
                                  JobState.FINISHED, JobState.FAILED}),
    JobState.RUNNING: frozenset({JobState.PAUSED, JobState.FINISHED,
                                 JobState.FAILED}),
    # PAUSED -> PROFILING covers jobs whose profiling was interrupted by
    # a regrouping before enough iterations were measured.
    JobState.PAUSED: frozenset({JobState.RUNNING, JobState.PROFILING,
                                JobState.FAILED}),
    JobState.FINISHED: frozenset(),
    JobState.FAILED: frozenset(),
}


@dataclass
class Job:
    """Mutable runtime record of one submitted job."""

    spec: JobSpec
    state: JobState = JobState.WAITING
    #: Iterations still needed for convergence.
    remaining_iterations: int = field(default=0)
    #: Current disk-block ratio (alpha_j of §IV-C).
    alpha: float = 0.0
    #: Whether the model-data spill fallback is active (§IV-C, §V-G).
    model_spilled: bool = False
    #: Id of the group the job currently belongs to (None when queued).
    group_id: str | None = None
    submit_time: float = 0.0
    finish_time: float | None = None
    #: Count of pause/migrate events the job went through.
    migrations: int = 0

    def __post_init__(self) -> None:
        if self.remaining_iterations == 0:
            self.remaining_iterations = self.spec.iterations
        self.submit_time = self.spec.submit_time

    # -- identity --------------------------------------------------------

    @property
    def job_id(self) -> str:
        return self.spec.job_id

    # -- state machine -----------------------------------------------------

    def transition(self, new_state: JobState) -> None:
        """Move to ``new_state``; illegal transitions raise."""
        if new_state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id}: illegal transition "
                f"{self.state.value} -> {new_state.value}")
        self.state = new_state

    @property
    def is_done(self) -> bool:
        return self.state in (JobState.FINISHED, JobState.FAILED)

    @property
    def is_schedulable(self) -> bool:
        """Whether Algorithm 1 may consider this job (L2: profiled,
        paused, or running jobs)."""
        return self.state in (JobState.PROFILED, JobState.PAUSED,
                              JobState.RUNNING)

    def complete_iteration(self) -> bool:
        """Record one finished iteration; True if the job converged."""
        if self.remaining_iterations <= 0:
            raise JobStateError(
                f"job {self.job_id} iterated past convergence")
        self.remaining_iterations -= 1
        return self.remaining_iterations == 0

    def completion_time(self) -> float:
        """Job completion time (JCT): submission to termination (§V-C)."""
        if self.finish_time is None:
            raise JobStateError(f"job {self.job_id} has not finished")
        return self.finish_time - self.submit_time

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"<Job {self.job_id} {self.state.value} "
                f"left={self.remaining_iterations}>")
