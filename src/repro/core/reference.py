"""Reference (pre-optimization) implementations of the planning stack.

The scheduler's production path (:mod:`repro.core.grouping`,
:mod:`repro.core.scheduler`) is incremental: it shares a struct-of-
arrays :class:`~repro.core.profiler.MetricsView` across Algorithm 1's
sub-steps, maintains group imbalances as O(1) running sums, reuses the
sorted job order across prefixes, and memoizes whole prefix plans.
Every one of those shortcuts is an *optimization*, not a semantic
change — this module keeps the original recompute-everything
implementations, verbatim, as the ground truth the differential tests
(``tests/test_sched_fastpath.py``) and the churn benchmark
(``benchmarks/bench_sched_churn.py``) compare against.

Plan assembly and scoring (:class:`~repro.core.perfmodel.PerfModel`)
are shared with the production path on purpose: the fast path must
produce bitwise-equal plans, so both paths must score candidate plans
with the exact same floating-point arithmetic.  Machine allocation is
frozen here too (:func:`reference_allocate_machines`, the original
one-machine-per-heap-round-trip loop); the production allocator batches
grants but performs the identical divisions and comparisons, so the
allocations — and therefore the plans — stay bitwise equal.
"""

from __future__ import annotations

import bisect
import heapq
from collections.abc import Sequence

from repro.core.allocation import MemoryFloorFn
from repro.core.profiler import JobMetrics
from repro.core.scheduler import HarmonyScheduler, SchedulePlan
from repro.errors import SchedulingError

#: Head-window width of the greedy fill (must match the production
#: path's ``grouping._FILL_WINDOW``).
_FILL_WINDOW = 4


def reference_imbalance(group: Sequence[JobMetrics], m: int) -> float:
    """Signed resource imbalance, recomputed from scratch."""
    return (sum(job.t_cpu_at(m) for job in group)
            - sum(job.t_net for job in group))


def reference_assign_jobs(jobs: Sequence[JobMetrics], n_groups: int,
                          m_ref: int,
                          max_swap_passes: int = 50) -> \
        list[list[JobMetrics]]:
    """The original (non-incremental) grouping algorithm (§IV-B3)."""
    if n_groups < 1:
        raise SchedulingError(f"need >= 1 group, got {n_groups}")
    if n_groups > len(jobs):
        raise SchedulingError(
            f"{n_groups} groups for only {len(jobs)} jobs")
    if m_ref < 1:
        raise SchedulingError(f"m_ref must be >= 1, got {m_ref}")

    remaining = sorted(jobs, key=lambda j: j.t_iteration_at(m_ref),
                       reverse=True)

    base, extra = divmod(len(remaining), n_groups)
    groups: list[list[JobMetrics]] = []
    for index in range(n_groups):
        quota = base + (1 if index < extra else 0)
        group: list[JobMetrics] = []
        for _ in range(quota):
            group.append(_pick_balancing(remaining, group, m_ref))
        groups.append(group)

    _fine_tune_swaps(groups, m_ref, max_swap_passes)
    return groups


def _pick_balancing(remaining: list[JobMetrics], group: list[JobMetrics],
                    m_ref: int) -> JobMetrics:
    window = min(_FILL_WINDOW, len(remaining))
    current = reference_imbalance(group, m_ref)
    best_index = 0
    best_cost = None
    for index in range(window):
        candidate = remaining[index]
        cost = abs(current + candidate.t_cpu_at(m_ref) - candidate.t_net)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
    return remaining.pop(best_index)


def _fine_tune_swaps(groups: list[list[JobMetrics]], m_ref: int,
                     max_passes: int) -> None:
    """Pairwise swap refinement that re-derives every group's imbalance
    on every pass (the production path carries them across passes)."""
    if len(groups) < 2:
        return
    for _ in range(max_passes):
        imbalances = [reference_imbalance(g, m_ref) for g in groups]
        order = sorted(range(len(groups)),
                       key=lambda i: -abs(imbalances[i]))
        g1 = order[0]
        g2 = min((i for i in range(len(groups)) if i != g1),
                 key=lambda i: imbalances[i] * (1 if imbalances[g1] > 0
                                                else -1))
        if not _best_swap(groups[g1], groups[g2], m_ref):
            return


def _best_swap(group_a: list[JobMetrics], group_b: list[JobMetrics],
               m_ref: int) -> bool:
    imbalance_a = reference_imbalance(group_a, m_ref)
    imbalance_b = reference_imbalance(group_b, m_ref)
    current_cost = abs(imbalance_a) + abs(imbalance_b)
    best = None
    best_cost = current_cost - 1e-9
    deltas_a = [job.t_cpu_at(m_ref) - job.t_net for job in group_a]
    deltas_b = [job.t_cpu_at(m_ref) - job.t_net for job in group_b]

    if len(group_a) * len(group_b) <= 4096:
        pairs = ((ia, ib) for ia in range(len(group_a))
                 for ib in range(len(group_b)))
    else:
        order_b = sorted(range(len(group_b)), key=deltas_b.__getitem__)
        sorted_deltas = [deltas_b[i] for i in order_b]

        def candidate_pairs():
            for ia in range(len(group_a)):
                target = deltas_a[ia] - (imbalance_a - imbalance_b) / 2.0
                position = bisect.bisect_left(sorted_deltas, target)
                for offset in (-1, 0, 1):
                    probe = position + offset
                    if 0 <= probe < len(order_b):
                        yield ia, order_b[probe]
        pairs = candidate_pairs()

    for ia, ib in pairs:
        delta_a = deltas_a[ia]
        delta_b = deltas_b[ib]
        new_cost = (abs(imbalance_a - delta_a + delta_b)
                    + abs(imbalance_b - delta_b + delta_a))
        if new_cost < best_cost:
            best_cost = new_cost
            best = (ia, ib)
    if best is None:
        return False
    ia, ib = best
    group_a[ia], group_b[ib] = group_b[ib], group_a[ia]
    return True


def reference_allocate_machines(
        groups: Sequence[Sequence[JobMetrics]], total_machines: int,
        memory_floor: MemoryFloorFn | None = None) -> \
        list[int] | None:
    """The original L8 allocator: one heap round-trip per machine.

    The production allocator batches consecutive grants to the same
    group; this one hands out machines strictly one heappop/heappush at
    a time.  Both must produce identical allocations — every grant uses
    the same divisions and the same tuple comparisons.
    """
    if total_machines < 1:
        raise SchedulingError(
            f"total_machines must be >= 1, got {total_machines}")
    if not groups:
        return []

    floors = []
    for group in groups:
        if not group:
            raise SchedulingError("cannot allocate to an empty group")
        job_ids = [job.job_id for job in group]
        floors.append(memory_floor(job_ids) if memory_floor else 1)
    if sum(floors) > total_machines:
        return None  # not placeable even at the memory floors

    allocation = list(floors)
    spare = total_machines - sum(allocation)

    cpu_work = [sum(job.cpu_work for job in group) for group in groups]
    t_net = [sum(job.t_net for job in group) for group in groups]

    def cpu_pressure(index: int) -> float:
        return cpu_work[index] / allocation[index] - t_net[index]

    heap = [(-cpu_pressure(i), i) for i in range(len(groups))]
    heapq.heapify(heap)
    while spare > 0 and heap:
        negative_pressure, index = heapq.heappop(heap)
        current = cpu_pressure(index)
        if current < -negative_pressure - 1e-12:
            heapq.heappush(heap, (-current, index))  # stale, retry
            continue
        if current <= 0:
            break  # every group is network- or job-bound
        allocation[index] += 1
        spare -= 1
        heapq.heappush(heap, (-cpu_pressure(index), index))

    return allocation


class ReferenceScheduler(HarmonyScheduler):
    """Algorithm 1 with every incremental shortcut disabled.

    Inherits the outer prefix loop and the shared plan assembly from
    :class:`HarmonyScheduler`, but re-derives each prefix's grouping
    from scratch through the module-level reference functions, never
    caches plans, and evaluates the L6 cost with the original Python
    summation.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.plan_cache = None  # never serve a memoized plan
        self._estimate_memo = None  # re-estimate every group

    def _plan_for(self, jobs: Sequence[JobMetrics],
                  total_machines: int) -> SchedulePlan | None:
        n_groups = self._pick_group_count(jobs, total_machines)
        groups = reference_assign_jobs(
            jobs, n_groups,
            m_ref=max(1, total_machines // n_groups),
            max_swap_passes=self.config.max_swap_passes)
        allocation = reference_allocate_machines(groups, total_machines,
                                                 self.memory_floor)
        if allocation is None:
            return None
        return self.build_plan(groups, allocation, total_machines)

    def _pick_group_count(self, jobs: Sequence[JobMetrics],
                          total_machines: int) -> int:
        from repro.core.scheduler import argmin_convex

        min_groups = max(
            1, -(-len(jobs) // self.config.max_jobs_per_group))
        max_groups = min(len(jobs), total_machines)
        if min_groups > max_groups:
            min_groups = max_groups

        def cost(n_g: int) -> float:
            scale = n_g / total_machines
            return sum(abs(job.cpu_work * scale - job.t_net)
                       for job in jobs)

        return argmin_convex(cost, min_groups, max_groups)
