"""Threaded execution of *real* PS training jobs with Harmony's subtask
discipline.

This is the demonstration-scale counterpart of the cluster simulator:
actual models (:mod:`repro.ml`) train through the actual PS
(:mod:`repro.ps`) on real threads, while COMP subtasks of co-located
jobs serialize on a CPU token and COMM subtasks share a
primary+secondary network token — §IV-A's execution model, for real.

Scope note: this runtime demonstrates and tests the mechanism at
laptop scale (a few jobs, a few workers); cluster-scale behaviour is
the simulator's job.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.core.profiler import Profiler
from repro.core.subtask import SubTaskKind
from repro.core.synchronizer import SubTaskSynchronizer
from repro.errors import SimulationError, WorkloadError
from repro.ml.base import PSTrainable, TrainState
from repro.ml.convergence import ConvergenceTracker
from repro.ps.client import PSClient
from repro.ps.partition import RangePartitioner
from repro.ps.server import PSServer
from repro.ps.transport import InProcessTransport


@dataclass
class LocalJob:
    """One runnable training job for the local runtime."""

    job_id: str
    model: PSTrainable
    #: One data-partition dict per worker (model-specific contents).
    partitions: list[dict]
    max_epochs: int = 20
    learning_rate: float = 0.1
    threshold: float | None = None
    seed: int = 0
    #: Resume support: when set (e.g. from a checkpoint written by
    #: :func:`repro.ps.checkpoint.save_checkpoint`), these values seed
    #: the servers instead of ``model.init_params``.
    initial_params: dict | None = None

    def __post_init__(self) -> None:
        if not self.partitions:
            raise WorkloadError(f"job {self.job_id}: no partitions")
        if self.max_epochs < 1:
            raise WorkloadError(f"job {self.job_id}: max_epochs >= 1")

    @property
    def n_workers(self) -> int:
        return len(self.partitions)


@dataclass
class LocalJobResult:
    """Outcome of one job under the local runtime."""

    job_id: str
    losses: list[float]
    epochs: int
    duration_seconds: float
    final_params: dict[str, np.ndarray]
    bytes_moved: int

    @property
    def converged_loss(self) -> float:
        return self.losses[-1]


class _LossBoard:
    """Synchronous per-epoch loss aggregation + convergence decision.

    Every worker reports its local loss, waits for the epoch's mean,
    and receives the *same* stop decision — so all workers leave the
    synchronous PS barrier together (no dangling pushes).
    """

    def __init__(self, n_workers: int, tracker: ConvergenceTracker):
        self._condition = threading.Condition()
        self._n_workers = n_workers
        self._tracker = tracker
        self._losses: dict[int, list[float]] = {}
        self._decisions: dict[int, bool] = {}

    def report(self, epoch: int, loss: float, timeout: float = 60.0) -> bool:
        """Report a worker's loss; returns True when the job must stop."""
        with self._condition:
            bucket = self._losses.setdefault(epoch, [])
            bucket.append(loss)
            if len(bucket) == self._n_workers:
                stop = self._tracker.record(float(np.mean(bucket)))
                self._decisions[epoch] = stop
                self._condition.notify_all()
            done = self._condition.wait_for(
                lambda: epoch in self._decisions, timeout=timeout)
            if not done:
                raise SimulationError(
                    f"loss aggregation stalled at epoch {epoch}")
            return self._decisions[epoch]


class LocalHarmonyRuntime:
    """Runs co-located real jobs with coordinated subtasks."""

    def __init__(self, jobs: list[LocalJob], coordinate: bool = True,
                 secondary_comm_slots: int = 1,
                 barrier_timeout: float = 60.0,
                 tracer=None,
                 clock: "Callable[[], float]" = time.perf_counter):
        if not jobs:
            raise WorkloadError("no jobs to run")
        ids = [job.job_id for job in jobs]
        if len(set(ids)) != len(ids):
            raise WorkloadError(f"duplicate job ids: {ids}")
        self.jobs = jobs
        self.coordinate = coordinate
        # §IV-A: one COMP at a time; one primary + N secondary COMMs.
        self._cpu_token = threading.Semaphore(1)
        self._net_token = threading.Semaphore(1 + secondary_comm_slots)
        # Barrier waits are traced against the tracer's own clock
        # (wall clock here — this runtime runs on real threads).
        self._synchronizer = SubTaskSynchronizer(timeout=barrier_timeout,
                                                 tracer=tracer)
        self.profiler = Profiler()
        self._barrier_timeout = barrier_timeout
        # Subtask timing reads go through an injectable clock (real
        # wall time by default) so tests can pin profiled durations
        # and the only wall-clock read is this default.
        self._clock = clock

    # -- execution -----------------------------------------------------------

    def run(self) -> dict[str, LocalJobResult]:
        results: dict[str, LocalJobResult] = {}
        errors: list[BaseException] = []
        threads: list[threading.Thread] = []
        lock = threading.Lock()

        for job in self.jobs:
            threads.extend(self._launch_job(job, results, errors, lock))
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if errors:
            raise errors[0]
        return results

    def _launch_job(self, job: LocalJob, results: dict,
                    errors: list, lock: threading.Lock) -> \
            list[threading.Thread]:
        rng = np.random.default_rng(job.seed)
        initial = job.initial_params if job.initial_params is not None \
            else job.model.init_params(rng)
        partitioner = RangePartitioner(initial.keys(),
                                       n_shards=job.n_workers)
        transport = InProcessTransport()
        servers = []
        for shard in range(partitioner.n_shards):
            server = PSServer(shard, n_workers=job.n_workers,
                              barrier_timeout=self._barrier_timeout)
            server.init_params({k: initial[k]
                                for k in partitioner.keys_of_shard(shard)})
            transport.register(server)
            servers.append(server)
        tracker = ConvergenceTracker(threshold=job.threshold,
                                     max_epochs=job.max_epochs)
        board = _LossBoard(job.n_workers, tracker)
        self._synchronizer.register_job(job.job_id, job.n_workers)

        # LDA-style models need their random token assignments folded
        # into the global counts before the first epoch.
        seeder = getattr(job.model, "seed_partition", None)
        if seeder is not None:
            seed_deltas = [seeder(partition, np.random.default_rng(
                job.seed + 1000 + index))
                for index, partition in enumerate(job.partitions)]
            for deltas in seed_deltas:
                for shard, keys in partitioner.group_by_shard(
                        list(deltas)).items():
                    servers[shard].store.update(
                        {k: deltas[k] for k in keys})

        started = self._clock()
        stop_event = threading.Event()

        def worker(worker_id: int) -> None:
            try:
                client = PSClient(worker_id, transport, partitioner)
                state = TrainState(learning_rate=job.learning_rate
                                   / job.n_workers)
                partition = job.partitions[worker_id]
                for epoch in range(job.max_epochs):
                    # PULL subtask (network-dominant).
                    pull_started = self._clock()
                    with self._acquire(self._net_token):
                        params = client.pull()
                    pull_seconds = self._clock() - pull_started
                    if not self._synchronizer.arrive(job.job_id, epoch,
                                                     SubTaskKind.PULL):
                        break  # barrier force-released (worker loss)
                    # COMP subtask (CPU-dominant, one at a time).
                    compute_started = self._clock()
                    with self._acquire(self._cpu_token):
                        state.iteration = epoch
                        deltas, loss = job.model.compute(params,
                                                         partition, state)
                    compute_seconds = self._clock() - compute_started
                    # PUSH subtask (network-dominant).
                    push_started = self._clock()
                    with self._acquire(self._net_token):
                        client.push(deltas)
                    push_seconds = self._clock() - push_started
                    self.profiler.record_iteration(
                        job.job_id, t_cpu=compute_seconds,
                        t_net=pull_seconds + push_seconds,
                        m=job.n_workers)
                    stop = board.report(epoch, loss,
                                        timeout=self._barrier_timeout)
                    if stop:
                        break
            except BaseException as error:  # noqa: BLE001 - joined later
                with lock:
                    errors.append(error)
                stop_event.set()

        def finalize() -> None:
            duration = self._clock() - started
            final = {}
            for server in servers:
                final.update(server.checkpoint())
            with lock:
                results[job.job_id] = LocalJobResult(
                    job_id=job.job_id,
                    losses=list(tracker.history),
                    epochs=tracker.epochs,
                    duration_seconds=duration,
                    final_params=final,
                    bytes_moved=transport.total_bytes)
            self._synchronizer.unregister_job(job.job_id)

        workers = [threading.Thread(
            target=worker, args=(index,), daemon=True,
            name=f"{job.job_id}-w{index}")
            for index in range(job.n_workers)]

        closer = threading.Thread(
            target=lambda: ([t.join() for t in workers], finalize()),
            daemon=True, name=f"{job.job_id}-closer")
        # The closer starts the workers' join loop only once started.
        return workers + [closer]

    def _acquire(self, token: threading.Semaphore):
        """Token acquisition honouring the coordinate switch."""
        if self.coordinate:
            return token
        return _NullContext()

    def _profile(self, job: LocalJob, worker_id: int, epoch: int) -> None:
        """Hook point for subclasses (kept trivial here)."""


class _NullContext:
    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False
