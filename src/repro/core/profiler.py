"""Runtime profiling (§IV-B1).

"Harmony monitors each job j in each group g and collects runtime
metrics which consists of the average execution times of CPU and
Network subtasks and the number of machines allocated to the group
(T_cpu_j, T_net_j, m_g) ... the profiled metrics of subtasks can be
meaningfully reused, while being updated using moving averages."

CPU measurements taken at different DoPs are made comparable by
normalizing to *CPU work* ``W = T_cpu * m`` (Eq. 2), so the moving
average remains meaningful across regroupings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SchedulingError


@dataclass(frozen=True)
class JobMetrics:
    """The scheduler's view of one job: profiled averages.

    ``cpu_work`` is machine-seconds per iteration; ``t_net`` is the sum
    of PULL and PUSH subtask seconds (DoP-independent, §IV-B2).
    """

    job_id: str
    cpu_work: float
    t_net: float
    #: DoP at which the job was last observed.
    m_observed: int
    samples: int = 1

    def t_cpu_at(self, m: int) -> float:
        """Predicted COMP time on ``m`` machines (Eq. 2)."""
        if m < 1:
            raise SchedulingError(f"DoP must be >= 1, got {m}")
        return self.cpu_work / m

    def t_iteration_at(self, m: int) -> float:
        """Predicted solo iteration time on ``m`` machines."""
        return self.t_cpu_at(m) + self.t_net

    def comp_comm_ratio_at(self, m: int) -> float:
        """Computation / communication ratio used by the similar-job
        search of §IV-B4."""
        if self.t_net <= 0:
            return float("inf")
        return self.t_cpu_at(m) / self.t_net


class Profiler:
    """Moving-average store of per-job metrics."""

    def __init__(self, ema_alpha: float = 0.3):
        if not 0.0 < ema_alpha <= 1.0:
            raise SchedulingError(f"ema_alpha {ema_alpha} not in (0, 1]")
        self.ema_alpha = ema_alpha
        self._metrics: dict[str, JobMetrics] = {}

    # -- recording ---------------------------------------------------------

    def record_iteration(self, job_id: str, t_cpu: float, t_net: float,
                         m: int) -> JobMetrics:
        """Fold one measured iteration into the job's moving averages.

        ``t_cpu``/``t_net`` are the measured COMP / total-COMM subtask
        durations of the iteration; ``m`` is the group's machine count.
        """
        if t_cpu < 0 or t_net < 0:
            raise SchedulingError(
                f"negative measured duration for {job_id}")
        if m < 1:
            raise SchedulingError(f"DoP must be >= 1, got {m}")
        work = t_cpu * m
        current = self._metrics.get(job_id)
        if current is None:
            updated = JobMetrics(job_id=job_id, cpu_work=work, t_net=t_net,
                                 m_observed=m, samples=1)
        else:
            # Bias-corrected EMA: with a plain EMA the first observation
            # enters with full weight, so one iteration measured at an
            # atypical DoP (or hit by a straggler) skews the average for
            # the job's whole lifetime.  Scaling the step by
            # 1 / (1 - (1-a)^t) makes the first few samples an ordinary
            # arithmetic mean that smoothly turns into the steady-state
            # EMA — the moving average §IV-B1 intends.
            a = self.ema_alpha
            samples = current.samples + 1
            if a < 1.0:
                a = a / (1.0 - (1.0 - a) ** samples)
            updated = JobMetrics(
                job_id=job_id,
                cpu_work=(1 - a) * current.cpu_work + a * work,
                t_net=(1 - a) * current.t_net + a * t_net,
                m_observed=m,
                samples=samples)
        self._metrics[job_id] = updated
        return updated

    # -- queries -----------------------------------------------------------

    def has(self, job_id: str) -> bool:
        return job_id in self._metrics

    def get(self, job_id: str) -> JobMetrics:
        metrics = self._metrics.get(job_id)
        if metrics is None:
            raise SchedulingError(f"job {job_id} has not been profiled")
        return metrics

    def forget(self, job_id: str) -> None:
        """Drop a finished job's metrics."""
        self._metrics.pop(job_id, None)

    def known_jobs(self) -> list[str]:
        return sorted(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)
