"""Runtime profiling (§IV-B1).

"Harmony monitors each job j in each group g and collects runtime
metrics which consists of the average execution times of CPU and
Network subtasks and the number of machines allocated to the group
(T_cpu_j, T_net_j, m_g) ... the profiled metrics of subtasks can be
meaningfully reused, while being updated using moving averages."

CPU measurements taken at different DoPs are made comparable by
normalizing to *CPU work* ``W = T_cpu * m`` (Eq. 2), so the moving
average remains meaningful across regroupings.
"""

from __future__ import annotations

import threading
from collections.abc import Callable, Iterator, Sequence
from dataclasses import dataclass

import numpy as np

from repro.errors import SchedulingError


@dataclass(frozen=True)
class JobMetrics:
    """The scheduler's view of one job: profiled averages.

    ``cpu_work`` is machine-seconds per iteration; ``t_net`` is the sum
    of PULL and PUSH subtask seconds (DoP-independent, §IV-B2).
    """

    job_id: str
    cpu_work: float
    t_net: float
    #: DoP at which the job was last observed.
    m_observed: int
    samples: int = 1

    def t_cpu_at(self, m: int) -> float:
        """Predicted COMP time on ``m`` machines (Eq. 2)."""
        if m < 1:
            raise SchedulingError(f"DoP must be >= 1, got {m}")
        return self.cpu_work / m

    def t_iteration_at(self, m: int) -> float:
        """Predicted solo iteration time on ``m`` machines."""
        return self.t_cpu_at(m) + self.t_net

    def comp_comm_ratio_at(self, m: int) -> float:
        """Computation / communication ratio used by the similar-job
        search of §IV-B4."""
        if self.t_net <= 0:
            return float("inf")
        return self.t_cpu_at(m) / self.t_net


class MetricsView:
    """Struct-of-arrays view over an ordered list of job metrics.

    Algorithm 1 evaluates hundreds of overlapping job sets per
    ``schedule()`` call; re-reading ``cpu_work``/``t_net`` through
    per-object attribute access in every sub-step (the L6 group-count
    cost, the grouping fill, the swap fine-tuning, group estimates)
    dominates its runtime.  A view extracts the two arrays once and
    hands every consumer C-speed slices instead.  ``prefix()`` returns
    a sub-view sharing the parent's memory, so the L4 prefix loop pays
    the extraction exactly once per call.

    The view also quacks like a sequence of :class:`JobMetrics`, so
    non-vectorized consumers (the reference path, ``allocate_machines``)
    accept one transparently.
    """

    __slots__ = ("jobs", "cpu_work", "t_net")

    def __init__(self, jobs: Sequence[JobMetrics],
                 cpu_work: "np.ndarray | None" = None,
                 t_net: "np.ndarray | None" = None):
        self.jobs = tuple(jobs)
        if cpu_work is None:
            cpu_work = np.fromiter(
                (job.cpu_work for job in self.jobs), dtype=np.float64,
                count=len(self.jobs))
        if t_net is None:
            t_net = np.fromiter(
                (job.t_net for job in self.jobs), dtype=np.float64,
                count=len(self.jobs))
        self.cpu_work = cpu_work
        self.t_net = t_net

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[JobMetrics]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> JobMetrics:
        return self.jobs[index]

    def prefix(self, k: int) -> "MetricsView":
        """The first ``k`` jobs, sharing this view's arrays."""
        if k >= len(self.jobs):
            return self
        return MetricsView(self.jobs[:k], self.cpu_work[:k],
                           self.t_net[:k])

    def t_cpu_at(self, m: int) -> np.ndarray:
        """Eq. 2, vectorized: predicted COMP time per job at DoP ``m``."""
        if m < 1:
            raise SchedulingError(f"DoP must be >= 1, got {m}")
        return self.cpu_work / m

    def t_iteration_at(self, m: int) -> np.ndarray:
        """Predicted solo iteration time per job at DoP ``m``."""
        return self.t_cpu_at(m) + self.t_net


#: Callback invoked as ``listener(job_id)`` whenever a job's moving
#: averages change (or the job is forgotten).
MetricsListener = Callable[[str], None]


class Profiler:
    """Moving-average store of per-job metrics.

    The profiler is the single source of truth the scheduler's caches
    key on: every publish bumps :attr:`version` and notifies the
    registered listeners, so memoized estimates and plans are
    invalidated exactly when §IV-B1's moving averages move.
    """

    def __init__(self, ema_alpha: float = 0.3):
        if not 0.0 < ema_alpha <= 1.0:
            raise SchedulingError(f"ema_alpha {ema_alpha} not in (0, 1]")
        self.ema_alpha = ema_alpha
        # The local runtime's worker threads call record_iteration
        # concurrently (one per worker per epoch); the read-modify-write
        # EMA fold and the version bump must be atomic or folds are
        # lost.  RLock because _publish runs under the same lock.
        self._lock = threading.RLock()
        self._metrics: dict[str, JobMetrics] = {}
        #: Bumped on every record/forget; caches stamp entries with it.
        self.version = 0
        self._listeners: list[MetricsListener] = []

    def add_listener(self, listener: MetricsListener) -> None:
        """Subscribe to metric updates (cache-invalidation hook)."""
        with self._lock:
            self._listeners.append(listener)

    def _publish(self, job_id: str) -> None:
        # Called with the lock held: listeners are fast cache
        # invalidations and must observe the bumped version atomically
        # with the metrics change they are being notified about.
        self.version += 1
        for listener in self._listeners:
            listener(job_id)

    # -- recording ---------------------------------------------------------

    def record_iteration(self, job_id: str, t_cpu: float, t_net: float,
                         m: int) -> JobMetrics:
        """Fold one measured iteration into the job's moving averages.

        ``t_cpu``/``t_net`` are the measured COMP / total-COMM subtask
        durations of the iteration; ``m`` is the group's machine count.
        """
        if t_cpu < 0 or t_net < 0:
            raise SchedulingError(
                f"negative measured duration for {job_id}")
        if m < 1:
            raise SchedulingError(f"DoP must be >= 1, got {m}")
        work = t_cpu * m
        with self._lock:
            current = self._metrics.get(job_id)
            if current is None:
                updated = JobMetrics(job_id=job_id, cpu_work=work,
                                     t_net=t_net, m_observed=m,
                                     samples=1)
            else:
                # Bias-corrected EMA: with a plain EMA the first
                # observation enters with full weight, so one iteration
                # measured at an atypical DoP (or hit by a straggler)
                # skews the average for the job's whole lifetime.
                # Scaling the step by 1 / (1 - (1-a)^t) makes the first
                # few samples an ordinary arithmetic mean that smoothly
                # turns into the steady-state EMA — the moving average
                # §IV-B1 intends.
                a = self.ema_alpha
                samples = current.samples + 1
                if a < 1.0:
                    a = a / (1.0 - (1.0 - a) ** samples)
                updated = JobMetrics(
                    job_id=job_id,
                    cpu_work=(1 - a) * current.cpu_work + a * work,
                    t_net=(1 - a) * current.t_net + a * t_net,
                    m_observed=m,
                    samples=samples)
            self._metrics[job_id] = updated
            self._publish(job_id)
            return updated

    # -- queries -----------------------------------------------------------

    def has(self, job_id: str) -> bool:
        with self._lock:
            return job_id in self._metrics

    def get(self, job_id: str) -> JobMetrics:
        with self._lock:
            metrics = self._metrics.get(job_id)
        if metrics is None:
            raise SchedulingError(f"job {job_id} has not been profiled")
        return metrics

    def forget(self, job_id: str) -> None:
        """Drop a finished job's metrics."""
        with self._lock:
            if self._metrics.pop(job_id, None) is not None:
                self._publish(job_id)

    def known_jobs(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)
