"""Dynamic data reloading (§IV-C).

Harmony manages each job's input as blocks, keeping a fraction
``alpha_j = B_disk_j / B_total_j`` on disk.  Too little spill melts the
group in GC; too much spill stalls COMP subtasks waiting on disk reads.
A per-job hill climber moves ``alpha_j`` toward the point where the two
overheads balance; when even full input spill cannot relieve the
pressure, the *model-data* spill fallback activates ("we support
similar mechanisms for the model data when the input data spill is not
enough", §IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.memory import MemoryLedger
from repro.config import MemoryConfig
from repro.core.job import Job
from repro.workloads.costmodel import CostModel


@dataclass
class _JobMemoryState:
    """Hill-climbing bookkeeping for one admitted job."""

    iterations_since_adjust: int = 0
    gc_overhead_seconds: float = 0.0
    stall_seconds: float = 0.0
    busy_seconds: float = 0.0


class GroupMemoryManager:
    """Block-ratio management for the jobs of one group."""

    def __init__(self, ledger: MemoryLedger, cost_model: CostModel,
                 config: MemoryConfig, n_machines: int,
                 spill_enabled: bool = True):
        self.ledger = ledger
        self.cost_model = cost_model
        self.config = config
        self.n_machines = n_machines
        self.spill_enabled = spill_enabled
        self._states: dict[str, _JobMemoryState] = {}
        self._jobs: dict[str, Job] = {}

    # -- admission -------------------------------------------------------------

    def admit(self, job: Job) -> bool:
        """Place the job's memory components; choose its initial alpha.

        The initial ratios are estimated from the (sampled) input and
        model sizes so the group lands at the target pressure; returns
        False when the job cannot fit even with maximal input and model
        spill — the caller must not co-locate it here.
        """
        if not self.spill_enabled:
            job.alpha = 0.0
            job.model_spilled = False
            self._apply_components(job)
            self._states[job.job_id] = _JobMemoryState()
            self._jobs[job.job_id] = job
            return True

        if self.config.fixed_alpha is not None:
            # §V-G baseline: "a baseline that uses the same fixed alpha
            # for all jobs" — no rebalancing, no hill climbing.
            job.alpha = self.config.fixed_alpha
            job.model_spilled = False
            self._apply_components(job)
            self._states[job.job_id] = _JobMemoryState()
            self._jobs[job.job_id] = job
            return True

        job.model_spilled = False
        self._jobs[job.job_id] = job
        self._rebalance()
        if self.ledger.is_oom():
            # Even alpha = 1 was not enough: try the model-spill fallback.
            job.alpha = 1.0
            job.model_spilled = True
            self._apply_components(job)
            if self.ledger.is_oom():
                self.evict(job)
                self._rebalance()
                return False
        self._states[job.job_id] = _JobMemoryState()
        return True

    def _rebalance(self) -> None:
        """Spread the memory budget over all admitted jobs with one
        shared spill ratio (hill climbing personalizes it afterwards).

        Resident size is linear in alpha, so the shared ratio that lands
        the group at the target pressure has a closed form.
        """
        spilled = [j for j in self._jobs.values() if j.model_spilled]
        plain = [j for j in self._jobs.values() if not j.model_spilled]
        budget = (self.ledger.spec.usable_memory_bytes
                  * self.config.target_pressure)
        m = self.n_machines
        total_min = sum(self.cost_model.resident_bytes(
            j.spec, m, alpha=1.0, model_spilled=j.model_spilled)
            for j in self._jobs.values())
        total_max = sum(self.cost_model.resident_bytes(
            j.spec, m, alpha=0.0, model_spilled=j.model_spilled)
            for j in self._jobs.values())
        if total_max <= budget:
            alpha = 0.0
        elif total_min >= budget or total_max <= total_min:
            alpha = 1.0
        else:
            alpha = 1.0 - (budget - total_min) / (total_max - total_min)
        for job in plain + spilled:
            job.alpha = min(1.0, max(0.0, alpha))
            self._apply_components(job)

    def evict(self, job: Job) -> None:
        """Remove the job's memory components (pause / finish / reject)."""
        self.ledger.remove_job(job.job_id)
        self._states.pop(job.job_id, None)
        self._jobs.pop(job.job_id, None)
        if self.spill_enabled and self._jobs:
            self._rebalance()

    def _apply_components(self, job: Job) -> None:
        spec = job.spec
        m = self.n_machines
        self.ledger.set_component(
            job.job_id, "input",
            self.cost_model.input_resident_bytes(spec, m, job.alpha))
        self.ledger.set_component(
            job.job_id, "model",
            self.cost_model.model_resident_bytes(spec, m,
                                                 job.model_spilled))
        self.ledger.set_component(
            job.job_id, "workspace",
            self.cost_model.workspace_bytes(spec, m, job.alpha))

    # -- per-iteration feedback ---------------------------------------------------

    def reload_seconds(self, job: Job) -> float:
        """Disk work to bring this iteration's disk-side blocks back.

        Includes the model restore traffic when the model-spill
        fallback is active.
        """
        seconds = self.cost_model.reload_seconds_per_iteration(
            job.spec, self.n_machines, job.alpha)
        if job.model_spilled:
            seconds += self.cost_model.disk.read_seconds(
                self.cost_model.checkpoint_bytes(job.spec, self.n_machines))
        return seconds

    def record_iteration(self, job: Job, gc_overhead_seconds: float,
                         stall_seconds: float,
                         busy_seconds: float) -> None:
        """Feed one iteration's overheads into the hill climber."""
        state = self._states.get(job.job_id)
        if state is None:
            return  # job was admitted without spill management
        if self.config.fixed_alpha is not None or not self.spill_enabled:
            return  # ratio adaptation disabled
        state.gc_overhead_seconds += max(0.0, gc_overhead_seconds)
        state.stall_seconds += max(0.0, stall_seconds)
        state.busy_seconds += max(0.0, busy_seconds)
        state.iterations_since_adjust += 1
        if state.iterations_since_adjust >= self.config.adjust_every:
            self._adjust_alpha(job, state)

    def _adjust_alpha(self, job: Job, state: _JobMemoryState) -> None:
        """One hill-climbing step of alpha_j (§IV-C).

        GC dominating -> spill more (alpha up).  Reload stalls
        dominating -> keep more in memory (alpha down), but only while
        the extra residency does not push the group over the target
        pressure.
        """
        busy = max(1e-9, state.busy_seconds)
        gc_fraction = state.gc_overhead_seconds / busy
        stall_fraction = state.stall_seconds / busy
        step = self.config.alpha_step
        tolerance = self.config.tolerance

        if gc_fraction > stall_fraction + tolerance:
            if job.alpha < 1.0:
                job.alpha = min(1.0, job.alpha + step)
                self._apply_components(job)
            elif not job.model_spilled:
                # Input spill exhausted but GC persists: activate the
                # model-data spill fallback ("we support similar
                # mechanisms for the model data when the input data
                # spill is not enough", §IV-C).
                job.model_spilled = True
                self._apply_components(job)
        elif stall_fraction > gc_fraction + tolerance and job.alpha > 0.0:
            candidate = max(0.0, job.alpha - step)
            previous = job.alpha
            job.alpha = candidate
            self._apply_components(job)
            if self.ledger.pressure > self.config.target_pressure:
                job.alpha = previous  # would re-create the pressure
                self._apply_components(job)
        state.iterations_since_adjust = 0
        state.gc_overhead_seconds = 0.0
        state.stall_seconds = 0.0
        state.busy_seconds = 0.0

    # -- queries -----------------------------------------------------------------

    def gc_inflation(self) -> float:
        return self.ledger.gc_inflation()

    def alphas(self) -> dict[str, float]:
        """Snapshot of per-job disk-block ratios (reported in §V-G)."""
        return {job_id: job.alpha for job_id, job in self._jobs.items()}
