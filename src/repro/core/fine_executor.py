"""Per-worker fine-grained execution (Fig. 7 at full fidelity).

The cluster runtime models a job group as one symmetric pipeline (see
:mod:`repro.core.group_runtime`).  This module simulates the same group
at *per-machine* granularity: every machine has its own CPU and NIC
resources, every job runs one worker per machine, and the SubTask
Synchronizer barriers each job's distributed subtasks between steps —
exactly the structure of Fig. 7, including cross-machine stragglers.

Its purpose is validation: the granularity experiment shows the
group-level abstraction tracks this within a few percent, which is the
modelling claim DESIGN.md makes.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.config import SimConfig
from repro.errors import SimulationError
from repro.sim import (
    Event,
    RandomStreams,
    RateResource,
    Simulator,
    primary_secondary,
    serial,
)
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel


class SimBarrier:
    """Counted barriers on the simulator (the SubTask Synchronizer).

    ``arrive(key)`` returns an event that triggers when ``n`` arrivals
    have been registered under ``key`` — one barrier per (job,
    iteration, step).
    """

    def __init__(self, sim: Simulator, n: int):
        if n < 1:
            raise SimulationError(f"barrier needs n >= 1, got {n}")
        self.sim = sim
        self.n = n
        self._pending: dict[object, tuple[Event, int]] = {}
        self._done: set[object] = set()

    def arrive(self, key: object) -> Event:
        if key in self._done:
            raise SimulationError(f"barrier {key}: too many arrivals")
        event, count = self._pending.get(key, (None, 0))
        if event is None:
            event = self.sim.event(f"barrier:{key}")
        count += 1
        if count == self.n:
            self._pending.pop(key, None)
            self._done.add(key)
            event.succeed()
        else:
            self._pending[key] = (event, count)
        return event


@dataclass
class FineGrainedResult:
    """Measurements from one fine-grained group run."""

    duration_seconds: float
    #: job_id -> list of per-iteration completion spans (the time from
    #: the iteration's first PULL start to its last PUSH barrier).
    cycles: dict[str, list[float]] = field(default_factory=dict)
    cpu_busy_fraction: float = 0.0
    net_busy_fraction: float = 0.0

    def mean_cycle_seconds(self, skip_warmup: int = 1) -> float:
        """Steady-state mean iteration time across jobs."""
        samples = []
        for durations in self.cycles.values():
            samples.extend(durations[skip_warmup:])
        if not samples:
            raise SimulationError("no steady-state cycles measured")
        return sum(samples) / len(samples)

    def pacing_cycle_seconds(self, skip_warmup: int = 1) -> float:
        """The slowest job's mean cycle (Eq. 1's ``max`` semantics)."""
        means = []
        for durations in self.cycles.values():
            steady = durations[skip_warmup:]
            if steady:
                means.append(sum(steady) / len(steady))
        if not means:
            raise SimulationError("no steady-state cycles measured")
        return max(means)


def run_fine_grained_group(specs: Sequence[JobSpec], n_machines: int,
                           config: SimConfig,
                           iterations: int,
                           seed: int = 7) -> FineGrainedResult:
    """Simulate a job group with per-machine resources and barriers.

    Memory effects are excluded (both granularities share the same
    memory model, so they would cancel in the comparison); what differs
    is queueing, overlap, and straggler behaviour — exactly what this
    measures.
    """
    if n_machines < 1:
        raise SimulationError("need at least one machine")
    if iterations < 1:
        raise SimulationError("need at least one iteration")
    sim = Simulator()
    streams = RandomStreams(seed)
    cost_model = CostModel(config.machine)
    secondary = config.execution.secondary_comm_rate
    cpus = [RateResource(sim, serial(), f"cpu{m}")
            for m in range(n_machines)]
    nets = [RateResource(sim, primary_secondary(secondary), f"net{m}")
            for m in range(n_machines)]
    barrier = SimBarrier(sim, n_machines)

    result = FineGrainedResult(duration_seconds=0.0)
    starts: dict[tuple[str, int], float] = {}
    jitter_cv = config.execution.duration_jitter_cv

    def worker(spec: JobSpec, machine: int):
        profile = cost_model.profile(spec, n_machines)
        job_id = spec.job_id
        for iteration in range(iterations):
            if machine == 0:
                starts[(job_id, iteration)] = sim.now
            # PULL: every worker fetches the model through its NIC.
            t_pull = profile.t_pull * streams.jitter(
                f"pull:{job_id}:{machine}", jitter_cv)
            yield nets[machine].submit(t_pull, tag=job_id)
            yield barrier.arrive((job_id, iteration, "pull"))
            # COMP: each machine processes its input partition.
            t_comp = profile.t_comp * streams.jitter(
                f"comp:{job_id}:{machine}", jitter_cv)
            yield cpus[machine].submit(t_comp, tag=job_id)
            # PUSH: gradients scatter back; the synchronous-clock
            # barrier completes the iteration (Fig. 7 steps 1-2).
            t_push = profile.t_push * streams.jitter(
                f"push:{job_id}:{machine}", jitter_cv)
            yield nets[machine].submit(t_push, tag=job_id)
            yield barrier.arrive((job_id, iteration, "push"))
            if machine == 0:
                span = sim.now - starts.pop((job_id, iteration))
                result.cycles.setdefault(job_id, []).append(span)

    for spec in specs:
        for machine in range(n_machines):
            sim.spawn(worker(spec, machine),
                      name=f"{spec.job_id}@m{machine}")
    sim.run()

    result.duration_seconds = sim.now
    if sim.now > 0:
        for resource in cpus + nets:
            resource.close_segments()
        result.cpu_busy_fraction = sum(
            c.busy_seconds for c in cpus) / (n_machines * sim.now)
        result.net_busy_fraction = sum(
            n.busy_seconds for n in nets) / (n_machines * sim.now)
    return result
