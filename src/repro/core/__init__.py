"""Harmony core: the paper's contribution.

Subtask-based execution (§IV-A), profiling + performance model +
scheduling algorithm (§IV-B), dynamic data reloading (§IV-C), and the
master/runtime that ties them together (§III).
"""

from repro.core.job import Job, JobState
from repro.core.perfmodel import GroupEstimate, PerfModel, UtilizationVector
from repro.core.profiler import JobMetrics, Profiler
from repro.core.runtime import HarmonyRuntime, JobOutcome, RunResult
from repro.core.scheduler import GroupPlan, HarmonyScheduler, SchedulePlan
from repro.core.subtask import SubTask, SubTaskKind

__all__ = [
    "GroupEstimate",
    "GroupPlan",
    "HarmonyScheduler",
    "HarmonyRuntime",
    "Job",
    "JobMetrics",
    "JobOutcome",
    "JobState",
    "RunResult",
    "PerfModel",
    "Profiler",
    "SchedulePlan",
    "SubTask",
    "SubTaskKind",
    "UtilizationVector",
]
