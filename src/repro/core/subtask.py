"""Subtasks: the fine-grained scheduling unit of §IV-A.

"We decompose long-running worker tasks into smaller subtasks, each of
which uses a single dominant type of a resource.  COMP subtasks use CPU
resources while PULL and PUSH subtasks use network resources."

Decomposition requires no user code changes: the PS push/pull calls are
COMM subtasks and the remainder is the COMP subtask — implemented for
the real (threaded) runtime in :mod:`repro.core.local_runtime` and for
the simulated runtime in :mod:`repro.core.group_runtime`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class ResourceKind(enum.Enum):
    """The dominant resource type of a subtask."""

    CPU = "cpu"
    NETWORK = "network"


class SubTaskKind(enum.Enum):
    """PULL / COMP / PUSH — the three steps of one iteration (Fig. 1)."""

    PULL = "pull"
    COMP = "comp"
    PUSH = "push"

    @property
    def resource(self) -> ResourceKind:
        """COMM subtasks (PULL/PUSH) use the network; COMP uses CPU."""
        if self is SubTaskKind.COMP:
            return ResourceKind.CPU
        return ResourceKind.NETWORK

    @property
    def is_comm(self) -> bool:
        return self is not SubTaskKind.COMP


#: Subtask order within one iteration (Fig. 1's PULL-COMP-PUSH).
ITERATION_SEQUENCE: tuple[SubTaskKind, ...] = (
    SubTaskKind.PULL, SubTaskKind.COMP, SubTaskKind.PUSH)


@dataclass(frozen=True)
class SubTask:
    """One schedulable subtask instance of a job iteration."""

    job_id: str
    kind: SubTaskKind
    iteration: int
    #: Service demand in seconds on its dominant resource (at rate 1.0).
    duration: float
    #: Worker index for distributed execution (None = group-level model).
    worker: int | None = None

    @property
    def resource(self) -> ResourceKind:
        return self.kind.resource

    @property
    def tag(self) -> str:
        """Resource-accounting tag (per-job attribution)."""
        return self.job_id

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        where = "" if self.worker is None else f"@w{self.worker}"
        return (f"<SubTask {self.job_id}#{self.iteration} "
                f"{self.kind.value}{where} {self.duration:.2f}s>")
