"""End-to-end Harmony runs on the simulated cluster.

:class:`HarmonyRuntime` wires a simulator, a cluster, and a
:class:`~repro.core.master.HarmonyMaster` together, submits a workload,
runs it to completion, and returns a :class:`RunResult` with everything
the evaluation section measures: per-job JCTs, makespan, utilization
timelines, group shapes, alpha statistics, and the performance model's
prediction errors.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.cluster import Cluster
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.job import JobState
from repro.core.master import HarmonyMaster
from repro.core.perfmodel import PerfModel
from repro.errors import SimulationError
from repro.metrics.faults import FaultLog
from repro.metrics.timeline import Timeline
from repro.metrics.utilization import ClusterUsageRecorder
from repro.sim import RandomStreams, Simulator
from repro.trace.tracer import Tracer, build_tracer
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel


@dataclass
class JobOutcome:
    """Terminal record of one job."""

    job_id: str
    state: JobState
    submit_time: float
    finish_time: float | None
    migrations: int

    @property
    def jct(self) -> float | None:
        if self.finish_time is None:
            return None
        return self.finish_time - self.submit_time


@dataclass
class RunResult:
    """Everything measured during one scheduler run."""

    scheduler_name: str
    total_machines: int
    outcomes: dict[str, JobOutcome]
    recorder: ClusterUsageRecorder
    migration_overhead_seconds: float = 0.0
    group_shape_log: list[tuple[float, int, int]] = field(
        default_factory=list)
    #: Every CycleRecord observed across all groups, in no fixed order.
    _all_cycles: list = field(default_factory=list, repr=False)
    alpha_samples: list[float] = field(default_factory=list)
    gc_seconds: float = 0.0
    stall_seconds: float = 0.0
    wall_seconds: float = 0.0
    #: Recovery accounting when a fault plan was injected (else None).
    fault_log: FaultLog | None = None
    #: The run's tracer when tracing was enabled (else None); feed it
    #: to :func:`repro.trace.write_chrome_trace` for a Perfetto view.
    trace: Tracer | None = None

    # -- headline numbers -------------------------------------------------

    @property
    def finished(self) -> list[JobOutcome]:
        return [o for o in self.outcomes.values()
                if o.state is JobState.FINISHED]

    @property
    def failed(self) -> list[JobOutcome]:
        return [o for o in self.outcomes.values()
                if o.state is JobState.FAILED]

    @property
    def jcts(self) -> list[float]:
        return [o.jct for o in self.finished if o.jct is not None]

    @property
    def mean_jct(self) -> float:
        jcts = self.jcts
        if not jcts:
            raise SimulationError("no finished jobs to average")
        return float(np.mean(jcts))

    @property
    def makespan(self) -> float:
        """Completion of the last job, from the first submission."""
        finished = self.finished
        if not finished:
            raise SimulationError("no finished jobs: makespan undefined")
        start = min(o.submit_time for o in self.outcomes.values())
        return max(o.finish_time for o in finished) - start

    # -- utilization ---------------------------------------------------------

    def utilization_timeline(self, which: str) -> Timeline:
        return self.recorder.utilization_timeline(which, self.makespan)

    def average_utilization(self, which: str) -> float:
        return self.recorder.average_utilization(which, self.makespan)

    # -- model accuracy (Fig. 13b) ----------------------------------------------

    def prediction_errors(self) -> dict[str, list[float]]:
        t_errors = []
        u_errors = []
        for decision in self.recorder.decisions:
            t_error = decision.t_group_error()
            if t_error is not None:
                t_errors.append(t_error)
            u_error = decision.u_error()
            if u_error is not None:
                u_errors.append(u_error)
        return {"t_group": t_errors, "utilization": u_errors}

    # -- concurrency (§V-C's "27.2 concurrent jobs ... 6.7 job groups") -------

    def mean_concurrent_jobs(self) -> float:
        """Time-average number of actively iterating jobs.

        Each completed cycle occupies one job for its duration, so the
        mean concurrency is the total cycle time divided by the makespan.
        """
        total_cycle_seconds = sum(
            c.duration for c in self._all_cycles)
        span = self.makespan
        return total_cycle_seconds / span if span > 0 else 0.0

    def mean_concurrent_groups(self) -> float:
        """Time-average number of live job groups."""
        total_group_seconds = sum(
            usage.t_end - usage.t_start
            for usage in self.recorder.finished_groups)
        span = self.makespan
        return total_group_seconds / span if span > 0 else 0.0

    def summary(self) -> str:
        lines = [
            f"scheduler={self.scheduler_name}",
            f"jobs: {len(self.finished)} finished, {len(self.failed)} "
            f"failed, {len(self.outcomes)} total",
            f"mean JCT: {self.mean_jct / 60:.1f} min",
            f"makespan: {self.makespan / 60:.1f} min",
            f"avg CPU util: {self.average_utilization('cpu'):.1%}",
            f"avg net util: {self.average_utilization('net'):.1%}",
        ]
        if self.fault_log is not None and self.fault_log.records:
            s = self.fault_log.summary()
            lines.append(
                f"faults: {s.n_crashes} crashes / {s.n_slowdowns} "
                f"slowdowns / {s.n_drops} drops; "
                f"{s.lost_iterations} iterations lost, mean recovery "
                f"{s.mean_recovery_seconds / 60:.1f} min")
        return "\n".join(lines)


class HarmonyRuntime:
    """One Harmony experiment: workload in, RunResult out."""

    def __init__(self, n_machines: int, workload: Sequence[JobSpec],
                 config: SimConfig = DEFAULT_SIM_CONFIG,
                 perf_model: PerfModel | None = None,
                 cost_model: CostModel | None = None,
                 scheduler_factory=None,
                 scheduler_name: str = "harmony",
                 failure_times: Sequence[float] | None = None,
                 fault_plan=None,
                 heartbeat_interval: float = 30.0,
                 heartbeat_timeout: float = 90.0):
        self.config = config
        self.sim = Simulator()
        if config.trace.enabled:
            # The tracer timestamps off the simulation clock; installed
            # before the master/groups so they see an enabled tracer.
            self.sim.tracer = build_tracer(lambda: self.sim.now,
                                           config.trace)
        self.cluster = Cluster(n_machines, config.machine)
        self.cost_model = cost_model if cost_model is not None \
            else CostModel(config.machine)
        self.streams = RandomStreams(config.seed)
        self.recorder = ClusterUsageRecorder(
            n_machines, bin_seconds=config.utilization_bin_seconds)
        self.fault_log = FaultLog() if fault_plan is not None else None
        self.master = HarmonyMaster(self.sim, self.cluster,
                                    self.cost_model, config, self.streams,
                                    self.recorder, perf_model=perf_model,
                                    scheduler_factory=scheduler_factory,
                                    fault_log=self.fault_log)
        self.workload = list(workload)
        self.scheduler_name = scheduler_name
        self.failure_times = sorted(failure_times or [])
        self.fault_plan = fault_plan
        self.monitor = None
        self.injector = None
        if fault_plan is not None:
            from repro.faults.injector import FaultInjector
            from repro.faults.monitor import HealthMonitor
            self.monitor = HealthMonitor(
                self.sim, self.cluster, self.master,
                interval=heartbeat_interval, timeout=heartbeat_timeout,
                log=self.fault_log)
            self.injector = FaultInjector(self.sim, self.cluster,
                                          self.master, self.monitor,
                                          fault_plan, log=self.fault_log)

    def _fail_random_machine(self) -> None:
        """Kill a uniformly chosen allocated machine (§VI failures)."""
        rng = self.streams.stream("machine-failures")
        allocated = [m.machine_id for m in self.cluster.machines
                     if self.cluster.owner_of(m.machine_id) is not None]
        if not allocated:
            return  # nothing running; the failure hits a free machine
        victim = int(allocated[rng.integers(0, len(allocated))])
        self.master.inject_machine_failure(victim)

    def _pacer(self):
        """Drives the master's periodic utilization check (§IV-B2) until
        the whole workload has been submitted and has terminated.

        Also the deadlock watchdog: if nothing is executing and nothing
        can start (e.g. a job that fits on no machine count), the pacer
        stops instead of keeping the simulation alive forever; run()
        then reports the stuck jobs loudly.
        """
        interval = self.config.scheduler.reschedule_check_seconds
        total = len(self.workload)
        t0 = self.sim.now
        tick = 0
        try:
            while True:
                # Closed form, not ``now + interval``: accumulating the
                # float sum drifts the k-th tick off ``t0 + k * dt``,
                # so long runs' check times would disagree between
                # engines (and with Eq. 1 timeline predictions).
                tick += 1
                yield self.sim.at(t0 + tick * interval)
                self.master.periodic_check()
                if len(self.master.jobs) >= total and self.master.all_done:
                    return
                if (len(self.master.jobs) >= total
                        and not self.master.groups
                        and self.master._rebuild is None
                        and not self._recovery_pending()):
                    # Everything submitted, nothing running, and the pump
                    # could not place anything: give up rather than spin.
                    return
        finally:
            # The heartbeat loop would otherwise keep the event queue
            # alive forever once the workload has terminated.
            if self.monitor is not None:
                self.monitor.stop()

    def _recovery_pending(self) -> bool:
        """Whether crashed machines will still come back and unblock
        paused jobs (don't declare a stall during a downtime window).
        Permanently failed machines (no scheduled repair) don't count."""
        return (self.injector is not None
                and self.injector.pending_repairs > 0)

    def run(self, max_sim_seconds: float | None = None,
            max_events: int | None = None) -> RunResult:
        """Submit the workload and simulate until every job terminates."""
        import time as _time
        # harmony: allow[DET001] wall_seconds measures real runtime of run() itself
        wall_start = _time.perf_counter()
        if max_sim_seconds is not None or max_events is not None:
            # Truncated runs must stop mid-job; a batch skipping past
            # the horizon would diverge from the reference engine.
            self.sim.fastpath_enabled = False
        for spec in self.workload:
            self.sim.call_at(spec.submit_time,
                             lambda s=spec: self.master.submit(s))
        for when in self.failure_times:
            self.sim.call_at(when, self._fail_random_machine)
        if self.injector is not None:
            self.injector.install()
            self.monitor.start()
        self.sim.spawn(self._pacer(), name="periodic-reschedule")
        self.sim.run(until=max_sim_seconds, max_events=max_events)

        stuck = [job for job in self.master.jobs.values()
                 if not job.is_done]
        if stuck and max_sim_seconds is None and max_events is None:
            states = {job.job_id: job.state.value for job in stuck[:10]}
            raise SimulationError(
                f"simulation drained with {len(stuck)} unfinished jobs "
                f"(first few: {states})")

        # Collect per-job outcomes and close open groups.
        all_cycles = list(self.master.finished_cycles)
        for group in self.master.groups.values():
            all_cycles.extend(group.cycles)
        self.recorder.finish(self.sim.now)

        outcomes = {
            job.job_id: JobOutcome(job_id=job.job_id, state=job.state,
                                   submit_time=job.submit_time,
                                   finish_time=job.finish_time,
                                   migrations=job.migrations)
            for job in self.master.jobs.values()}
        return RunResult(
            scheduler_name=self.scheduler_name,
            total_machines=self.cluster.size,
            outcomes=outcomes,
            recorder=self.recorder,
            migration_overhead_seconds=(
                self.master.migration_overhead_seconds),
            group_shape_log=list(self.master.group_shape_log),
            _all_cycles=all_cycles,
            alpha_samples=[c.alpha for c in all_cycles],
            gc_seconds=sum(c.gc_overhead for c in all_cycles),
            stall_seconds=sum(c.stall for c in all_cycles),
            # harmony: allow[DET001] wall_seconds measures real runtime of run() itself
            wall_seconds=_time.perf_counter() - wall_start,
            fault_log=self.fault_log,
            trace=self.sim.tracer if self.sim.tracer.enabled else None)
