"""Dynamic regrouping helpers (§IV-B4).

When a job finishes, Harmony first tries to repair its group locally:
find a *similar* waiting job ("the difference of statistics is within
5%"), then a *bundle* of jobs with equivalent aggregate characteristics,
and only then escalates to the full scheduling algorithm over a growing
scope of groups.  These pure functions implement the similarity
searches; the escalation lives in the master, which owns the groups.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from typing import TYPE_CHECKING

from repro.core.profiler import JobMetrics

if TYPE_CHECKING:
    from repro.core.perfmodel import PerfModel
    from repro.core.scheduler import SchedulePlan


def _relative_difference(a: float, b: float) -> float:
    denominator = max(abs(a), abs(b), 1e-12)
    return abs(a - b) / denominator


def is_similar_job(candidate: JobMetrics, target: JobMetrics, m: int,
                   threshold: float = 0.05) -> bool:
    """Whether two jobs match within the paper's 5% tolerance.

    Similarity is judged "in terms of iteration time and comp/comm
    ratio" at the group's DoP ``m``.
    """
    if _relative_difference(candidate.t_iteration_at(m),
                            target.t_iteration_at(m)) > threshold:
        return False
    return _relative_difference(candidate.t_cpu_at(m) + 1e-12,
                                target.t_cpu_at(m) + 1e-12) <= threshold \
        or _relative_difference(candidate.comp_comm_ratio_at(m),
                                target.comp_comm_ratio_at(m)) <= threshold


def find_similar_job(candidates: Sequence[JobMetrics],
                     target: JobMetrics, m: int,
                     threshold: float = 0.05) -> JobMetrics | None:
    """The §IV-B4 single-replacement search: the closest candidate
    within tolerance, or None."""
    best = None
    best_distance = None
    for candidate in candidates:
        if not is_similar_job(candidate, target, m, threshold):
            continue
        distance = (_relative_difference(candidate.t_iteration_at(m),
                                         target.t_iteration_at(m))
                    + _relative_difference(
                        candidate.comp_comm_ratio_at(m),
                        target.comp_comm_ratio_at(m)))
        if best_distance is None or distance < best_distance:
            best_distance = distance
            best = candidate
    return best


def find_similar_bundle(candidates: Sequence[JobMetrics],
                        target: JobMetrics, m: int,
                        threshold: float = 0.05,
                        max_bundle: int = 4) -> list[JobMetrics] | None:
    """The §IV-B4 bundle search: a set of jobs "whose the sum of
    iteration times and the ratio of respective sum of computation and
    communication times are similar to the finished job".

    Greedy largest-first packing under the CPU/network budgets, then an
    aggregate tolerance check.  Returns None when no acceptable bundle
    exists.
    """
    target_cpu = target.t_cpu_at(m)
    target_net = target.t_net
    budget_cpu = target_cpu * (1.0 + threshold)
    budget_net = target_net * (1.0 + threshold)
    bundle: list[JobMetrics] = []
    total_cpu = 0.0
    total_net = 0.0
    for candidate in sorted(candidates,
                            key=lambda j: j.t_iteration_at(m),
                            reverse=True):
        if len(bundle) >= max_bundle:
            break
        if (total_cpu + candidate.t_cpu_at(m) <= budget_cpu
                and total_net + candidate.t_net <= budget_net):
            bundle.append(candidate)
            total_cpu += candidate.t_cpu_at(m)
            total_net += candidate.t_net
    if len(bundle) < 2:
        return None  # a single job is the find_similar_job case
    if (_relative_difference(total_cpu, target_cpu) > threshold
            or _relative_difference(total_net, target_net) > threshold):
        return None
    return bundle


def splice_plan(plan: "SchedulePlan", perf_model: "PerfModel",
                group_index: int, remove_job_id: str,
                replacements: Sequence[JobMetrics],
                metrics_for: Callable[[str], JobMetrics]) -> "SchedulePlan":
    """The §IV-B4 plan patch: replace one departed job in one group.

    When a finished job has a profiled-similar successor, rebuilding the
    whole plan through Algorithm 1 re-derives decisions that did not
    change; this splices the affected group (drop ``remove_job_id``, add
    ``replacements``), re-estimates only that group, and re-scores the
    cluster utilization over the patched estimate set — O(|group| +
    n_groups) instead of a full schedule.  ``metrics_for`` resolves the
    surviving members' current metrics.  A group left empty is dropped
    from the plan (its machines count as idle in the re-score).

    The caller owns the fallback: when the patched score trips the 5%
    regroup threshold, run the full scheduling algorithm instead.
    """
    from repro.core.scheduler import GroupPlan, SchedulePlan

    target = plan.groups[group_index]
    kept = [metrics_for(job_id) for job_id in target.job_ids
            if job_id != remove_job_id]
    members = kept + list(replacements)
    groups = list(plan.groups)
    if members:
        estimate = perf_model.estimate_group(members, target.n_machines)
        groups[group_index] = GroupPlan(job_ids=estimate.job_ids,
                                        n_machines=target.n_machines,
                                        estimate=estimate)
    else:
        del groups[group_index]
    utilization = perf_model.cluster_utilization(
        [group.estimate for group in groups],
        total_machines=plan.total_machines)
    return SchedulePlan(groups=tuple(groups), utilization=utilization,
                        score=perf_model.score(utilization),
                        total_machines=plan.total_machines)


def prefer_fewer_jobs(plans: Sequence[tuple[int, float]],
                      preference: float = 0.05) -> int | None:
    """Pick among (scope_size, predicted_score) candidates.

    "It compares their predicted performance and selects the grouping
    decision with smaller number of jobs, if the performance improvement
    of decisions with more number of jobs is less than 5%."  Returns the
    index of the chosen plan, or None for an empty sequence.
    """
    if not plans:
        return None
    chosen = 0
    for index in range(1, len(plans)):
        size, score = plans[index]
        chosen_size, chosen_score = plans[chosen]
        if size <= chosen_size:
            if score >= chosen_score:
                chosen = index
        elif score > chosen_score * (1.0 + preference):
            chosen = index
    return chosen
