"""The SubTask Synchronizer (Fig. 7, §IV-A).

"The subtask synchronizer in the master manages the state of the
distributed job subtasks across multiple workers, to synchronize the
overall progress of the job": when a worker completes a COMM subtask,
the next COMP subtask is enqueued only after *every* worker's COMM
subtask of that step is complete.

This is the thread-based implementation used by the local runtime; the
cluster simulator models the same barrier analytically (the
``barrier_overhead`` factor).

Fault handling: a worker that dies mid-iteration would leave its peers
blocked at the barrier until the timeout kills the whole run.  The
master instead calls :meth:`SubTaskSynchronizer.release_job` (or
:meth:`unregister_job`) when it detects the loss; blocked workers then
return ``False`` from :meth:`arrive` so the job can checkpoint and
regroup instead of crashing.
"""

from __future__ import annotations

import threading

from repro.core.subtask import SubTaskKind
from repro.errors import SimulationError


class SubTaskSynchronizer:
    """Per-(job, iteration, step) barriers across a job's workers."""

    def __init__(self, timeout: float = 60.0, tracer=None):
        # The local runtime runs on real threads, so barrier waits are
        # traced against the wall clock (the tracer itself is clock-
        # agnostic; see repro.trace).
        self._trace = tracer if tracer is not None and tracer.enabled \
            else None
        self._condition = threading.Condition()
        self._arrived: dict[tuple[str, int, SubTaskKind], int] = {}
        self._expected: dict[str, int] = {}
        #: Highest iteration whose barrier fully passed, per (job, kind).
        #: Completed keys are dropped from ``_arrived`` so barrier state
        #: stays bounded over a job's lifetime; this high-water mark
        #: keeps late over-arrivals detectable.
        self._completed: dict[tuple[str, SubTaskKind], int] = {}
        #: Jobs whose barriers were force-released (worker loss).
        self._released: set[str] = set()
        self._timeout = timeout
        self._lanes: dict[str, object] = {}

    def _lane(self, job_id: str):
        track = self._lanes.get(job_id)
        if track is None:
            track = self._trace.track("synchronizer", job_id)
            self._lanes[job_id] = track
        return track

    def register_job(self, job_id: str, n_workers: int) -> None:
        if n_workers < 1:
            raise SimulationError(f"job {job_id}: need >= 1 worker")
        with self._condition:
            self._expected[job_id] = n_workers
            self._released.discard(job_id)
            # A fresh registration (e.g. resume after a fault) starts
            # with clean barrier state.
            for key in [k for k in self._arrived if k[0] == job_id]:
                del self._arrived[key]
            for key in [k for k in self._completed if k[0] == job_id]:
                del self._completed[key]

    def unregister_job(self, job_id: str) -> None:
        """Drop all barrier state of a job, waking blocked workers.

        Workers blocked in :meth:`arrive` return ``False``.
        """
        with self._condition:
            self._expected.pop(job_id, None)
            for key in [k for k in self._arrived if k[0] == job_id]:
                del self._arrived[key]
            for key in [k for k in self._completed if k[0] == job_id]:
                del self._completed[key]
            self._condition.notify_all()

    def release_job(self, job_id: str) -> None:
        """Force-release a registered job's barriers (fault path).

        Unlike :meth:`unregister_job`, the job stays registered: the
        master typically pauses/checkpoints it next, and a later
        :meth:`register_job` (on resume, possibly with a different
        worker count) clears the released flag.  Blocked workers return
        ``False`` from :meth:`arrive`, as do subsequent arrivals, so
        every worker observes the release exactly once per call site.
        """
        with self._condition:
            if job_id not in self._expected:
                return
            self._released.add(job_id)
            for key in [k for k in self._arrived if k[0] == job_id]:
                del self._arrived[key]
            self._condition.notify_all()

    def arrive(self, job_id: str, iteration: int,
               kind: SubTaskKind) -> bool:
        """Block until all of the job's workers complete this step.

        Returns ``True`` when the barrier passed normally and ``False``
        when the job was released or unregistered while waiting — the
        caller should abandon the iteration (checkpoint / exit) rather
        than proceed.
        """
        key = (job_id, iteration, kind)
        watermark = (job_id, kind)
        with self._condition:
            expected = self._expected.get(job_id)
            if expected is None:
                raise SimulationError(f"job {job_id} is not registered")
            if job_id in self._released:
                return False
            if iteration <= self._completed.get(watermark, -1):
                raise SimulationError(
                    f"{key}: more arrivals than workers ({expected})")
            count = self._arrived.get(key, 0) + 1
            if count > expected:
                raise SimulationError(
                    f"{key}: more arrivals than workers ({expected})")
            if count == expected:
                # Barrier complete: retire the key so state stays
                # bounded, record the high-water mark, wake the peers.
                self._arrived.pop(key, None)
                self._completed[watermark] = max(
                    self._completed.get(watermark, -1), iteration)
                self._condition.notify_all()
                return True
            self._arrived[key] = count
            self._condition.notify_all()

            def ready() -> bool:
                return (self._completed.get(watermark, -1) >= iteration
                        or job_id not in self._expected
                        or job_id in self._released)

            handle = None
            if self._trace is not None:
                handle = self._trace.begin(
                    self._lane(job_id), f"barrier·{kind.value}",
                    cat="barrier", args={"iteration": iteration})
            done = self._condition.wait_for(ready, timeout=self._timeout)
            if handle is not None:
                span = self._trace.end(handle)
                if span is not None:
                    self._trace.counter(
                        f"job.{job_id}.barrier_wait_seconds").add(
                            span.duration)
            if not done:
                raise SimulationError(
                    f"barrier timeout at {key}: "
                    f"{self._arrived.get(key, 0)}/{expected} arrived")
            return (job_id in self._expected
                    and job_id not in self._released)

    def pending(self, job_id: str) -> int | None:
        """Number of open barriers for a job (diagnostics)."""
        with self._condition:
            if job_id not in self._expected:
                return None
            expected = self._expected[job_id]
            return sum(1 for key, count in self._arrived.items()
                       if key[0] == job_id and count < expected)
