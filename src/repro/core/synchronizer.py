"""The SubTask Synchronizer (Fig. 7, §IV-A).

"The subtask synchronizer in the master manages the state of the
distributed job subtasks across multiple workers, to synchronize the
overall progress of the job": when a worker completes a COMM subtask,
the next COMP subtask is enqueued only after *every* worker's COMM
subtask of that step is complete.

This is the thread-based implementation used by the local runtime; the
cluster simulator models the same barrier analytically (the
``barrier_overhead`` factor).
"""

from __future__ import annotations

import threading
from typing import Optional

from repro.core.subtask import SubTaskKind
from repro.errors import SimulationError


class SubTaskSynchronizer:
    """Per-(job, iteration, step) barriers across a job's workers."""

    def __init__(self, timeout: float = 60.0):
        self._condition = threading.Condition()
        self._arrived: dict[tuple[str, int, SubTaskKind], int] = {}
        self._expected: dict[str, int] = {}
        self._timeout = timeout

    def register_job(self, job_id: str, n_workers: int) -> None:
        if n_workers < 1:
            raise SimulationError(f"job {job_id}: need >= 1 worker")
        with self._condition:
            self._expected[job_id] = n_workers

    def unregister_job(self, job_id: str) -> None:
        with self._condition:
            self._expected.pop(job_id, None)
            for key in [k for k in self._arrived if k[0] == job_id]:
                del self._arrived[key]

    def arrive(self, job_id: str, iteration: int,
               kind: SubTaskKind) -> None:
        """Block until all of the job's workers complete this step."""
        key = (job_id, iteration, kind)
        with self._condition:
            expected = self._expected.get(job_id)
            if expected is None:
                raise SimulationError(f"job {job_id} is not registered")
            self._arrived[key] = self._arrived.get(key, 0) + 1
            if self._arrived[key] > expected:
                raise SimulationError(
                    f"{key}: more arrivals than workers ({expected})")
            self._condition.notify_all()
            done = self._condition.wait_for(
                lambda: self._arrived.get(key, 0) >= expected
                or job_id not in self._expected,
                timeout=self._timeout)
            if not done:
                raise SimulationError(
                    f"barrier timeout at {key}: "
                    f"{self._arrived.get(key, 0)}/{expected} arrived")

    def pending(self, job_id: str) -> Optional[int]:
        """Number of open barriers for a job (diagnostics)."""
        with self._condition:
            if job_id not in self._expected:
                return None
            expected = self._expected[job_id]
            return sum(1 for key, count in self._arrived.items()
                       if key[0] == job_id and count < expected)
