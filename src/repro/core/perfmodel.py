"""The performance model of co-located jobs (§IV-B2, Eqs. 1–4).

Given profiled metrics, predicts the group iteration time::

    T_g_itr = max( Σ_j T_cpu_j ,  Σ_j T_net_j ,  max_j T_itr_j )      (1)

covering the CPU-bound, network-bound, and job-bound cases of Fig. 8,
with ``T_cpu_j ∝ 1/m_g`` (2); the per-group utilization vector::

    U(g) = [ Σ T_cpu / T_g_itr ,  Σ T_net / T_g_itr ]                 (3)

and the machine-weighted cluster utilization::

    U = Σ_g m_g · U(g) / Σ_g m_g                                      (4)

An optional *error injector* perturbs predictions — used by the Fig. 13a
sensitivity study ("we simulate the execution with different error
levels").
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass
from functools import cached_property

from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError

#: Called as ``injector(kind, job_id)`` with kind in {"t_cpu", "t_net"};
#: returns a multiplicative perturbation applied to that job's predicted
#: quantity.  Per-job perturbations are what actually mislead the
#: scheduler — a uniform scale factor cancels out of every comparison.
ErrorInjector = Callable[[str, str], float]


@dataclass(frozen=True)
class UtilizationVector:
    """CPU / network utilization pair (Eq. 3 / Eq. 4)."""

    cpu: float
    net: float

    def weighted_score(self, cpu_weight: float) -> float:
        """Scalar objective: CPU counts more than network because "CPU
        resources directly contribute to the job progress" (§IV-B2).

        ``cpu_weight`` is deliberately *not* defaulted here: the one
        authoritative default lives in ``SchedulerConfig.cpu_weight``,
        and every scoring path goes through :meth:`PerfModel.score` so
        the two can never silently diverge.
        """
        return cpu_weight * self.cpu + (1.0 - cpu_weight) * self.net

    def __iter__(self):
        yield self.cpu
        yield self.net


@dataclass(frozen=True)
class GroupEstimate:
    """Model predictions for one candidate job group."""

    job_ids: tuple[str, ...]
    m: int
    t_cpu_sum: float
    t_net_sum: float
    t_itr_max: float

    # Cached, not recomputed: estimates are immutable and the planning
    # stack re-reads these on every candidate-plan scoring pass.
    @cached_property
    def t_group_iteration(self) -> float:
        """Eq. 1."""
        return max(self.t_cpu_sum, self.t_net_sum, self.t_itr_max)

    @cached_property
    def utilization(self) -> UtilizationVector:
        """Eq. 3."""
        t_g = self.t_group_iteration
        if t_g <= 0:
            return UtilizationVector(0.0, 0.0)
        return UtilizationVector(cpu=self.t_cpu_sum / t_g,
                                 net=self.t_net_sum / t_g)

    @property
    def bound_case(self) -> str:
        """Which of the Fig. 8 cases dominates: 'cpu', 'net', or 'job'."""
        t_g = self.t_group_iteration
        # harmony: allow[DET006] t_g is by construction exactly one of these maxima
        if t_g == self.t_cpu_sum:
            return "cpu"
        # harmony: allow[DET006] t_g is by construction exactly one of these maxima
        if t_g == self.t_net_sum:
            return "net"
        return "job"


class PerfModel:
    """Predicts group/cluster performance from profiled metrics."""

    def __init__(self, cpu_weight: float = 0.75,
                 error_injector: ErrorInjector | None = None):
        self.cpu_weight = cpu_weight
        self._injector = error_injector

    # -- per-group predictions ----------------------------------------------

    def estimate_group(self, metrics: Sequence[JobMetrics],
                       m: int) -> GroupEstimate:
        """Predictions for co-locating ``metrics``'s jobs on ``m``
        machines."""
        if m < 1:
            raise SchedulingError(f"group DoP must be >= 1, got {m}")
        if not metrics:
            raise SchedulingError("cannot estimate an empty group")
        if self._injector is None:
            t_cpus = [job.t_cpu_at(m) for job in metrics]
            t_nets = [job.t_net for job in metrics]
        else:
            t_cpus = [job.t_cpu_at(m)
                      * self._injector("t_cpu", job.job_id)
                      for job in metrics]
            t_nets = [job.t_net * self._injector("t_net", job.job_id)
                      for job in metrics]
        return GroupEstimate(
            job_ids=tuple(job.job_id for job in metrics),
            m=m,
            t_cpu_sum=sum(t_cpus),
            t_net_sum=sum(t_nets),
            t_itr_max=max(tc + tn for tc, tn in zip(t_cpus, t_nets, strict=True)))

    # -- cluster-level aggregation --------------------------------------------

    def cluster_utilization(self, groups: Sequence[GroupEstimate],
                            total_machines: int | None = None) -> \
            UtilizationVector:
        """Eq. 4: machine-weighted average utilization over job groups.

        When ``total_machines`` is given, unallocated machines count as
        idle — stricter than the paper's Eq. 4 (which averages over
        groups only) and what a cluster operator actually measures.
        """
        if not groups:
            return UtilizationVector(0.0, 0.0)
        weight_sum = sum(g.m for g in groups)
        denominator = total_machines if total_machines is not None \
            else weight_sum
        if denominator <= 0:
            raise SchedulingError("no machines to average over")
        if weight_sum > denominator:
            raise SchedulingError(
                f"groups use {weight_sum} machines, more than "
                f"{denominator} available")
        cpu = sum(g.m * g.utilization.cpu for g in groups) / denominator
        net = sum(g.m * g.utilization.net for g in groups) / denominator
        return UtilizationVector(cpu, net)

    def score(self, utilization: UtilizationVector) -> float:
        """Scalar objective used to compare candidate schedules."""
        return utilization.weighted_score(self.cpu_weight)
