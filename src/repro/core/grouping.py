"""Job-to-group assignment (§IV-B3, "the grouping algorithm").

"The grouping algorithm assigns jobs J evenly into a given number of
groups n_G*.  In order to prevent job-bound cases, we place jobs with
similar iteration times together ... The scheduler first sorts jobs by
their job iteration time.  The scheduler then fills job groups one by
one with jobs from the sorted list in a greedy manner to balance
resource use.  Lastly, the algorithm fine-tunes the result by swapping
jobs between the groups."

This is the incremental implementation on the scheduler's hot path:
group imbalances are carried as running sums updated in O(1) per
placement and per swap, the sort runs as one C-speed ``argsort`` over
a :class:`~repro.core.profiler.MetricsView`, and the swap loop takes
the most-imbalanced group by a single ``argmax`` instead of sorting
all group imbalances each pass.  The original recompute-everything
implementation survives verbatim in :mod:`repro.core.reference`; the
differential suite pins the two to identical partitions.
"""

from __future__ import annotations

import bisect
from collections.abc import Sequence

import numpy as np

from repro.core.profiler import JobMetrics, MetricsView
from repro.errors import SchedulingError

#: While filling a group, the next job is chosen among this many heads
#: of the sorted list: close enough in iteration time to avoid
#: job-bound groups, free enough to balance CPU vs network use.
_FILL_WINDOW = 4


def _imbalance(group: Sequence[JobMetrics], m: int) -> float:
    """Signed resource imbalance: positive = CPU-heavy (at DoP ``m``)."""
    return (sum(job.t_cpu_at(m) for job in group)
            - sum(job.t_net for job in group))


def grouping_order(view: MetricsView, m_ref: int) -> np.ndarray:
    """Indices of ``view`` sorted by solo iteration time, longest first.

    Stable on ties, so it is exactly ``sorted(jobs, key=t_iteration,
    reverse=True)`` — large jobs are kept together rather than spread
    across groups.
    """
    keys = view.cpu_work / m_ref + view.t_net
    return np.argsort(-keys, kind="stable")


def extend_grouping_order(view: MetricsView, m_ref: int,
                          order: np.ndarray, prev_n: int) -> np.ndarray:
    """Merge jobs ``prev_n..len(view)`` into an existing sorted order.

    Exact warm start for Algorithm 1's prefix loop: when two successive
    prefixes balance at the same ``m_ref``, the longer prefix's sort
    order is the shorter one's with the new jobs spliced in — an
    O(n + Δ·logΔ) stable merge instead of an O(n·log n) re-sort.  New
    jobs carry larger original indices, so inserting them *after* equal
    keys reproduces the stable full sort bit for bit.
    """
    keys = view.cpu_work / m_ref + view.t_net
    new_indices = np.arange(prev_n, len(view))
    new_order = new_indices[np.argsort(-keys[prev_n:], kind="stable")]
    positions = np.searchsorted(-keys[order], -keys[new_order],
                                side="right")
    return np.insert(order, positions, new_order)


def assign_jobs(jobs: "Sequence[JobMetrics] | MetricsView",
                n_groups: int, m_ref: int,
                max_swap_passes: int = 50,
                order: np.ndarray | None = None) -> \
        list[list[JobMetrics]]:
    """Partition ``jobs`` into ``n_groups`` balanced groups.

    ``m_ref`` is the DoP assumed while balancing (Algorithm 1 assumes
    all groups get an equal number of machines, so ``m_ref ≈ M / n_G``).
    ``order`` optionally injects a precomputed :func:`grouping_order`
    (the scheduler's warm-started prefix loop reuses it).
    """
    view = jobs if isinstance(jobs, MetricsView) else MetricsView(jobs)
    if n_groups < 1:
        raise SchedulingError(f"need >= 1 group, got {n_groups}")
    if n_groups > len(view):
        raise SchedulingError(
            f"{n_groups} groups for only {len(view)} jobs")
    if m_ref < 1:
        raise SchedulingError(f"m_ref must be >= 1, got {m_ref}")

    if order is None:
        order = grouping_order(view, m_ref)
    # Python-float mirrors of the per-job arrays: the greedy fill and
    # the swap search are scalar-sequential by nature, and list indexing
    # is several times cheaper than NumPy scalar access.
    t_cpu = (view.cpu_work / m_ref).tolist()
    t_net = view.t_net.tolist()

    groups, imbalances = _fill_groups(order, t_cpu, t_net, n_groups)
    _fine_tune_swaps(groups, imbalances, t_cpu, t_net, max_swap_passes)
    return [[view.jobs[index] for index in group] for group in groups]


def _fill_groups(order: np.ndarray, t_cpu: list, t_net: list,
                 n_groups: int) -> tuple[list[list[int]], list[float]]:
    """Greedy balanced fill; returns index groups + their imbalances.

    Each group's imbalance is accumulated as it is filled (term order =
    append order, exactly the from-scratch sum), so a placement costs
    O(window) instead of O(|group|).
    """
    order_list = [int(index) for index in order]
    n = len(order_list)
    base, extra = divmod(n, n_groups)

    # The candidate window always holds the first min(4, remaining)
    # entries of the virtual sorted remaining list, in list order —
    # popping the chosen entry and refilling from the tail preserves
    # the reference semantics without O(n) list shifts.
    window: list[int] = []
    position = 0
    groups: list[list[int]] = []
    imbalances: list[float] = []
    for group_index in range(n_groups):
        quota = base + (1 if group_index < extra else 0)
        group: list[int] = []
        cpu_sum = 0.0
        net_sum = 0.0
        for _ in range(quota):
            while len(window) < _FILL_WINDOW and position < n:
                window.append(order_list[position])
                position += 1
            current = cpu_sum - net_sum
            best_slot = 0
            best_cost = None
            for slot, index in enumerate(window):
                cost = abs(current + t_cpu[index] - t_net[index])
                if best_cost is None or cost < best_cost:
                    best_cost = cost
                    best_slot = slot
            chosen = window.pop(best_slot)
            group.append(chosen)
            cpu_sum += t_cpu[chosen]
            net_sum += t_net[chosen]
        groups.append(group)
        imbalances.append(cpu_sum - net_sum)
    return groups, imbalances


def _fine_tune_swaps(groups: list[list[int]], imbalances: list[float],
                     t_cpu: list, t_net: list, max_passes: int) -> None:
    """Pairwise swap refinement (§IV-B3).

    "It first picks the most imbalanced group, and finds the group that
    has the most complementary resource use.  Then, it finds the tuple
    of jobs from each of the groups that would minimize the
    resource-imbalance for both of the groups, and swaps the two jobs.
    The fine-tuning repeats until there are no possible swap cases."

    Imbalances are carried across passes; only the two groups touched
    by a swap are re-summed (a pass costs O(|g1| + |g2|) instead of the
    previous full O(Σ|g|) rescan), and the most-imbalanced group is a
    single ``argmax`` (the previous implementation sorted all group
    imbalances each pass only to read the first element).

    The touched groups are *re-summed in membership order* rather than
    updated with ``±delta``: the swap objective Σ|I| has exact plateaus
    (every candidate that keeps both post-swap signs costs exactly
    ``-I_a - I_b``), so the winner among tied candidates is decided by
    float rounding — the carried sums must be bit-identical to the
    reference path's from-scratch sums for both paths to break those
    ties the same way.
    """
    if len(groups) < 2:
        return
    imbalance = np.array(imbalances, dtype=np.float64)
    magnitude = np.abs(imbalance)
    for _ in range(max_passes):
        g1 = int(np.argmax(magnitude))
        # Most complementary: the group whose imbalance is most opposite.
        keyed = imbalance * (1.0 if imbalance[g1] > 0 else -1.0)
        keyed[g1] = np.inf
        g2 = int(np.argmin(keyed))
        if not _best_swap(groups[g1], groups[g2],
                          float(imbalance[g1]), float(imbalance[g2]),
                          t_cpu, t_net):
            return
        for index in (g1, g2):
            group = groups[index]
            value = (sum(t_cpu[job] for job in group)
                     - sum(t_net[job] for job in group))
            imbalance[index] = value
            magnitude[index] = abs(value)


def _best_swap(group_a: list[int], group_b: list[int],
               imbalance_a: float, imbalance_b: float,
               t_cpu: list, t_net: list) -> bool:
    """Apply the single swap that most reduces combined imbalance.

    Returns True if an improving swap was found and applied.
    """
    current_cost = abs(imbalance_a) + abs(imbalance_b)
    best = None
    best_cost = current_cost - 1e-9
    deltas_a = [t_cpu[index] - t_net[index] for index in group_a]
    deltas_b = [t_cpu[index] - t_net[index] for index in group_b]

    if len(group_a) * len(group_b) <= 4096:
        pairs = ((ia, ib) for ia in range(len(group_a))
                 for ib in range(len(group_b)))
    else:
        # Large groups (§V-F scale): for each job of A, only probe the
        # jobs of B whose delta is closest to the ideal swap partner
        # (the combined cost is piecewise-linear in delta_b, minimized
        # near delta_a - (I_a - I_b)/2).
        order_b = sorted(range(len(group_b)), key=deltas_b.__getitem__)
        sorted_deltas = [deltas_b[i] for i in order_b]

        def candidate_pairs():
            for ia in range(len(group_a)):
                target = deltas_a[ia] - (imbalance_a - imbalance_b) / 2.0
                position = bisect.bisect_left(sorted_deltas, target)
                for offset in (-1, 0, 1):
                    probe = position + offset
                    if 0 <= probe < len(order_b):
                        yield ia, order_b[probe]
        pairs = candidate_pairs()

    for ia, ib in pairs:
        delta_a = deltas_a[ia]
        delta_b = deltas_b[ib]
        new_cost = (abs(imbalance_a - delta_a + delta_b)
                    + abs(imbalance_b - delta_b + delta_a))
        if new_cost < best_cost:
            best_cost = new_cost
            best = (ia, ib)
    if best is None:
        return False
    ia, ib = best
    group_a[ia], group_b[ib] = group_b[ib], group_a[ia]
    return True
