"""Job-to-group assignment (§IV-B3, "the grouping algorithm").

"The grouping algorithm assigns jobs J evenly into a given number of
groups n_G*.  In order to prevent job-bound cases, we place jobs with
similar iteration times together ... The scheduler first sorts jobs by
their job iteration time.  The scheduler then fills job groups one by
one with jobs from the sorted list in a greedy manner to balance
resource use.  Lastly, the algorithm fine-tunes the result by swapping
jobs between the groups."
"""

from __future__ import annotations

import bisect
from typing import Sequence

from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError

#: While filling a group, the next job is chosen among this many heads
#: of the sorted list: close enough in iteration time to avoid
#: job-bound groups, free enough to balance CPU vs network use.
_FILL_WINDOW = 4


def _imbalance(group: Sequence[JobMetrics], m: int) -> float:
    """Signed resource imbalance: positive = CPU-heavy (at DoP ``m``)."""
    return (sum(job.t_cpu_at(m) for job in group)
            - sum(job.t_net for job in group))


def assign_jobs(jobs: Sequence[JobMetrics], n_groups: int, m_ref: int,
                max_swap_passes: int = 50) -> list[list[JobMetrics]]:
    """Partition ``jobs`` into ``n_groups`` balanced groups.

    ``m_ref`` is the DoP assumed while balancing (Algorithm 1 assumes
    all groups get an equal number of machines, so ``m_ref ≈ M / n_G``).
    """
    if n_groups < 1:
        raise SchedulingError(f"need >= 1 group, got {n_groups}")
    if n_groups > len(jobs):
        raise SchedulingError(
            f"{n_groups} groups for only {len(jobs)} jobs")
    if m_ref < 1:
        raise SchedulingError(f"m_ref must be >= 1, got {m_ref}")

    # Sort by solo iteration time, longest first, so that large jobs are
    # kept together rather than spread across groups.
    remaining = sorted(jobs, key=lambda j: j.t_iteration_at(m_ref),
                       reverse=True)

    # Even split: the first (len % n) groups take one extra job.
    base, extra = divmod(len(remaining), n_groups)
    groups: list[list[JobMetrics]] = []
    for index in range(n_groups):
        quota = base + (1 if index < extra else 0)
        group: list[JobMetrics] = []
        for _ in range(quota):
            group.append(_pick_balancing(remaining, group, m_ref))
        groups.append(group)

    _fine_tune_swaps(groups, m_ref, max_swap_passes)
    return groups


def _pick_balancing(remaining: list[JobMetrics], group: list[JobMetrics],
                    m_ref: int) -> JobMetrics:
    """Pop, from the head window of the sorted list, the job that keeps
    the group's CPU/network use most balanced."""
    window = min(_FILL_WINDOW, len(remaining))
    current = _imbalance(group, m_ref)
    best_index = 0
    best_cost = None
    for index in range(window):
        candidate = remaining[index]
        cost = abs(current + candidate.t_cpu_at(m_ref) - candidate.t_net)
        if best_cost is None or cost < best_cost:
            best_cost = cost
            best_index = index
    return remaining.pop(best_index)


def _fine_tune_swaps(groups: list[list[JobMetrics]], m_ref: int,
                     max_passes: int) -> None:
    """Pairwise swap refinement (§IV-B3).

    "It first picks the most imbalanced group, and finds the group that
    has the most complementary resource use.  Then, it finds the tuple
    of jobs from each of the groups that would minimize the
    resource-imbalance for both of the groups, and swaps the two jobs.
    The fine-tuning repeats until there are no possible swap cases."
    """
    if len(groups) < 2:
        return
    for _ in range(max_passes):
        imbalances = [_imbalance(g, m_ref) for g in groups]
        order = sorted(range(len(groups)), key=lambda i: -abs(imbalances[i]))
        g1 = order[0]
        # Most complementary: the group whose imbalance is most opposite.
        g2 = min((i for i in range(len(groups)) if i != g1),
                 key=lambda i: imbalances[i] * (1 if imbalances[g1] > 0
                                                else -1))
        if not _best_swap(groups[g1], groups[g2], m_ref):
            return


def _best_swap(group_a: list[JobMetrics], group_b: list[JobMetrics],
               m_ref: int) -> bool:
    """Apply the single swap that most reduces combined imbalance.

    Returns True if an improving swap was found and applied.
    """
    imbalance_a = _imbalance(group_a, m_ref)
    imbalance_b = _imbalance(group_b, m_ref)
    current_cost = abs(imbalance_a) + abs(imbalance_b)
    best = None
    best_cost = current_cost - 1e-9
    deltas_a = [job.t_cpu_at(m_ref) - job.t_net for job in group_a]
    deltas_b = [job.t_cpu_at(m_ref) - job.t_net for job in group_b]

    if len(group_a) * len(group_b) <= 4096:
        pairs = ((ia, ib) for ia in range(len(group_a))
                 for ib in range(len(group_b)))
    else:
        # Large groups (§V-F scale): for each job of A, only probe the
        # jobs of B whose delta is closest to the ideal swap partner
        # (the combined cost is piecewise-linear in delta_b, minimized
        # near delta_a - (I_a - I_b)/2).
        order_b = sorted(range(len(group_b)), key=deltas_b.__getitem__)
        sorted_deltas = [deltas_b[i] for i in order_b]

        def candidate_pairs():
            for ia in range(len(group_a)):
                target = deltas_a[ia] - (imbalance_a - imbalance_b) / 2.0
                position = bisect.bisect_left(sorted_deltas, target)
                for offset in (-1, 0, 1):
                    probe = position + offset
                    if 0 <= probe < len(order_b):
                        yield ia, order_b[probe]
        pairs = candidate_pairs()

    for ia, ib in pairs:
        delta_a = deltas_a[ia]
        delta_b = deltas_b[ib]
        new_cost = (abs(imbalance_a - delta_a + delta_b)
                    + abs(imbalance_b - delta_b + delta_a))
        if new_cost < best_cost:
            best_cost = new_cost
            best = (ia, ib)
    if best is None:
        return False
    ia, ib = best
    group_a[ia], group_b[ib] = group_b[ib], group_a[ia]
    return True
