"""Algorithm 1: Harmony's job scheduling algorithm (§IV-B3).

Starting from the profiled/paused/running jobs, the scheduler grows the
considered job set one job at a time.  For each candidate set it (L6)
picks the group count ``n_G*`` that best balances CPU and network use
under the equal-DoP assumption (``m_g = M / n_G``, so ``T_cpu ∝ n_G``),
(L7) assigns jobs to groups, (L8) allocates machines, and keeps the
resulting grouping while the predicted cluster utilization improves
(L10-13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.config import SchedulerConfig
from repro.core.allocation import MemoryFloorFn, allocate_machines
from repro.core.grouping import assign_jobs
from repro.core.perfmodel import GroupEstimate, PerfModel, UtilizationVector
from repro.core.profiler import JobMetrics
from repro.errors import SchedulingError

#: DoP at which jobs are ordered before the prefix loop (the paper's
#: characterization DoP; the ordering only needs to be stable).
_ORDERING_DOP = 16


@dataclass(frozen=True)
class ScheduleStats:
    """Shape of one ``schedule()`` call, for observability (the trace
    layer attaches these to regroup-check instants)."""

    n_jobs_offered: int
    n_prefixes_evaluated: int
    best_n_groups: int
    best_n_jobs: int
    best_score: float


@dataclass(frozen=True)
class GroupPlan:
    """One job group of a schedule decision."""

    job_ids: tuple[str, ...]
    n_machines: int
    estimate: GroupEstimate

    @property
    def n_jobs(self) -> int:
        return len(self.job_ids)


@dataclass(frozen=True)
class SchedulePlan:
    """A full scheduling decision: groups, machines, predicted value."""

    groups: tuple[GroupPlan, ...]
    utilization: UtilizationVector
    score: float
    total_machines: int

    @property
    def scheduled_job_ids(self) -> frozenset[str]:
        return frozenset(job_id for group in self.groups
                         for job_id in group.job_ids)

    @property
    def machines_used(self) -> int:
        return sum(group.n_machines for group in self.groups)

    def describe(self) -> str:
        lines = [f"SchedulePlan: {len(self.groups)} groups, "
                 f"{self.machines_used}/{self.total_machines} machines, "
                 f"U_cpu={self.utilization.cpu:.2f} "
                 f"U_net={self.utilization.net:.2f}"]
        for index, group in enumerate(self.groups):
            lines.append(
                f"  group[{index}] m={group.n_machines} "
                f"jobs={list(group.job_ids)} "
                f"T_g={group.estimate.t_group_iteration:.1f}s "
                f"({group.estimate.bound_case}-bound)")
        return "\n".join(lines)


def argmin_convex(cost, low: int, high: int) -> int:
    """Smallest integer minimizer of a convex cost on ``[low, high]``.

    Ternary search with *non-strict* window shrinking: on a tie
    (``cost(mid1) == cost(mid2)``) the minimum lies anywhere inside
    ``[mid1, mid2]``, so the window shrinks to exactly that span instead
    of discarding an endpoint — the strict ``<``/exclusive variant can
    drop the true minimizer when the cost is piecewise-linear with flat
    segments (e.g. Σ|W_j·n_g/M − T_net_j|, whose bottom is often a
    plateau).  Once the window is small the remaining points are scanned
    linearly; ties resolve to the smallest argument.
    """
    if low > high:
        raise SchedulingError(f"empty search window [{low}, {high}]")
    while high - low > 2:
        mid1 = low + (high - low) // 3
        mid2 = high - (high - low) // 3
        c1, c2 = cost(mid1), cost(mid2)
        if c1 < c2:
            high = mid2          # minimum is left of mid2
        elif c1 > c2:
            low = mid1           # minimum is right of mid1
        else:
            low, high = mid1, mid2  # plateau: minimum within [mid1, mid2]
    return min(range(low, high + 1), key=cost)


def _prefix_sizes(n: int):
    """Candidate-set sizes for Algorithm 1's outer loop.

    Exhaustive (1, 2, ..., n) for small pools; geometric growth beyond
    64 jobs so that scheduling thousands of jobs stays sub-second while
    the early-break behaviour is unchanged (§V-F scalability).
    """
    size = 1
    last = 0
    while size <= n:
        yield size
        last = size
        size += 1 if size < 64 else max(1, size // 8)
    if last != n and n > 0:
        yield n


class HarmonyScheduler:
    """Implements Algorithm 1 plus the n_G* search of L6."""

    def __init__(self, perf_model: Optional[PerfModel] = None,
                 config: Optional[SchedulerConfig] = None,
                 memory_floor: Optional[MemoryFloorFn] = None):
        self.config = config if config is not None else SchedulerConfig()
        self.perf_model = perf_model if perf_model is not None \
            else PerfModel(cpu_weight=self.config.cpu_weight)
        self.memory_floor = memory_floor
        #: Shape of the most recent :meth:`schedule` call (None before
        #: the first call); read by the master's trace instrumentation.
        self.last_stats: Optional[ScheduleStats] = None

    # -- Algorithm 1 ---------------------------------------------------------

    def schedule(self, jobs: Sequence[JobMetrics],
                 total_machines: int) -> Optional[SchedulePlan]:
        """The ``schedule`` function of Algorithm 1.

        Returns the best plan found, or None when no job can be placed
        (e.g. nothing fits in memory).
        """
        if total_machines < 1:
            raise SchedulingError(
                f"total_machines must be >= 1, got {total_machines}")
        if not jobs:
            return None
        ordered = self._admission_order(jobs)
        best: Optional[SchedulePlan] = None
        no_improvement = 0
        n_prefixes = 0
        for n_jobs in _prefix_sizes(len(ordered)):
            candidate_jobs = ordered[:n_jobs]
            n_prefixes += 1
            plan = self._plan_for(candidate_jobs, total_machines)
            if plan is None:
                if best is not None:
                    break  # adding jobs stopped being feasible
                continue
            if best is None or plan.score > best.score:
                best = plan
                no_improvement = 0
            else:
                # L12-13: stop growing once utilization stops improving
                # (with a small patience for discrete n_G* bumps).
                no_improvement += 1
                if no_improvement > self.config.schedule_patience:
                    break
        self.last_stats = ScheduleStats(
            n_jobs_offered=len(ordered),
            n_prefixes_evaluated=n_prefixes,
            best_n_groups=len(best.groups) if best is not None else 0,
            best_n_jobs=(len(best.scheduled_job_ids)
                         if best is not None else 0),
            best_score=best.score if best is not None else 0.0)
        return best

    def _admission_order(self, jobs: Sequence[JobMetrics]) -> \
            list[JobMetrics]:
        """Order in which the L4 prefix loop considers jobs.

        The paper does not pin J_to_sched's order; see
        ``SchedulerConfig.admission_order`` for the choices.
        """
        ascending = sorted(jobs,
                           key=lambda j: j.t_iteration_at(_ORDERING_DOP))
        order = self.config.admission_order
        if order == "sjf":
            return ascending
        if order == "ljf":
            return list(reversed(ascending))
        if order == "interleave":
            result = []
            low, high = 0, len(ascending) - 1
            take_long = True
            while low <= high:
                if take_long:
                    result.append(ascending[high])
                    high -= 1
                else:
                    result.append(ascending[low])
                    low += 1
                take_long = not take_long
            return result
        if order == "critical":
            # The handful of longest jobs define the makespan's critical
            # path and must start early; everything else goes shortest-
            # first so completions front-load (short mean JCT).
            n_critical = max(1, len(ascending) // 10)
            critical = ascending[len(ascending) - n_critical:]
            rest = ascending[:len(ascending) - n_critical]
            return list(reversed(critical)) + rest
        raise SchedulingError(f"unknown admission order {order!r}")

    def _plan_for(self, jobs: Sequence[JobMetrics],
                  total_machines: int) -> Optional[SchedulePlan]:
        """One iteration of the L4-L13 loop body for a fixed job set."""
        n_groups = self._pick_group_count(jobs, total_machines)
        groups = assign_jobs(jobs, n_groups,
                             m_ref=max(1, total_machines // n_groups),
                             max_swap_passes=self.config.max_swap_passes)
        allocation = allocate_machines(groups, total_machines,
                                       self.memory_floor)
        if allocation is None:
            return None
        return self.build_plan(groups, allocation, total_machines)

    def build_plan(self, groups: Sequence[Sequence[JobMetrics]],
                   allocation: Sequence[int],
                   total_machines: int) -> SchedulePlan:
        """Assemble and score a plan from explicit groups/allocation."""
        estimates = [self.perf_model.estimate_group(group, m)
                     for group, m in zip(groups, allocation)]
        utilization = self.perf_model.cluster_utilization(
            estimates, total_machines=total_machines)
        plans = tuple(GroupPlan(job_ids=e.job_ids, n_machines=m, estimate=e)
                      for e, m in zip(estimates, allocation))
        return SchedulePlan(groups=plans, utilization=utilization,
                            score=self.perf_model.score(utilization),
                            total_machines=total_machines)

    # -- L6: the group-count search ---------------------------------------------

    def _pick_group_count(self, jobs: Sequence[JobMetrics],
                          total_machines: int) -> int:
        """n_G* = argmin_nG Σ_j |T_cpu_j(n_G) − T_net_j|  (L6).

        Under the equal-DoP assumption ``m_g = M / n_G``, so
        ``T_cpu_j(n_G) = W_j · n_G / M``.
        """
        min_groups = max(
            1, -(-len(jobs) // self.config.max_jobs_per_group))
        max_groups = min(len(jobs), total_machines)
        if min_groups > max_groups:
            min_groups = max_groups

        def cost(n_g: int) -> float:
            scale = n_g / total_machines
            return sum(abs(job.cpu_work * scale - job.t_net)
                       for job in jobs)

        # cost(n_g) = Σ|W_j · n_g / M − T_net_j| is convex in n_g, so a
        # ternary search finds the minimum in O(log M) evaluations —
        # needed for the §V-F scale (thousands of jobs and machines).
        # Flat bottom segments are common (the absolute values cancel
        # over whole intervals), hence the plateau-safe variant.
        return argmin_convex(cost, min_groups, max_groups)
