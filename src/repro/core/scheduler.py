"""Algorithm 1: Harmony's job scheduling algorithm (§IV-B3).

Starting from the profiled/paused/running jobs, the scheduler grows the
considered job set one job at a time.  For each candidate set it (L6)
picks the group count ``n_G*`` that best balances CPU and network use
under the equal-DoP assumption (``m_g = M / n_G``, so ``T_cpu ∝ n_G``),
(L7) assigns jobs to groups, (L8) allocates machines, and keeps the
resulting grouping while the predicted cluster utilization improves
(L10-13).

This is the *incremental* implementation: one struct-of-arrays
:class:`~repro.core.profiler.MetricsView` is extracted per ``schedule()``
call and shared by every sub-step, prefix sort orders are warm-started
from earlier prefixes, and whole prefix plans are memoized in a
:class:`PlanCache` keyed by (job-set fingerprint, machine count) —
invalidated through the profiler's listener hook whenever a job's
moving averages change.  The pre-optimization path survives verbatim in
:mod:`repro.core.reference`; ``tests/test_sched_fastpath.py`` pins the
two to identical plans.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.config import SchedulerConfig
from repro.core.allocation import MemoryFloorFn, allocate_machines
from repro.core.grouping import assign_jobs, extend_grouping_order, grouping_order
from repro.core.perfmodel import GroupEstimate, PerfModel, UtilizationVector
from repro.core.profiler import JobMetrics, MetricsView
from repro.errors import SchedulingError

#: DoP at which jobs are ordered before the prefix loop (the paper's
#: characterization DoP; the ordering only needs to be stable).  Public
#: because the policy zoo characterizes queued jobs at the same DoP
#: (:mod:`repro.policies.planner`).
ORDERING_DOP = 16
_ORDERING_DOP = ORDERING_DOP

#: Sentinel distinguishing "not cached" from a cached infeasible plan
#: (``None`` is a legitimate, cacheable planning outcome).
_CACHE_MISS = object()


@dataclass(frozen=True)
class ScheduleStats:
    """Shape of one ``schedule()`` call, for observability (the trace
    layer attaches these to regroup-check instants)."""

    n_jobs_offered: int
    n_prefixes_evaluated: int
    best_n_groups: int
    best_n_jobs: int
    best_score: float
    #: Prefix plans served from :class:`PlanCache` during this call.
    cache_hits: int = 0
    #: Prefix plans computed from scratch during this call.
    cache_misses: int = 0
    #: Prefix sort orders extended from an earlier prefix instead of
    #: re-sorted from scratch.
    warm_start_reuses: int = 0
    #: True when any incremental shortcut (cache hit or warm start)
    #: contributed to this call.
    fast_path: bool = False


@dataclass(frozen=True)
class GroupPlan:
    """One job group of a schedule decision."""

    job_ids: tuple[str, ...]
    n_machines: int
    estimate: GroupEstimate

    @property
    def n_jobs(self) -> int:
        return len(self.job_ids)


@dataclass(frozen=True)
class SchedulePlan:
    """A full scheduling decision: groups, machines, predicted value."""

    groups: tuple[GroupPlan, ...]
    utilization: UtilizationVector
    score: float
    total_machines: int

    @property
    def scheduled_job_ids(self) -> frozenset[str]:
        return frozenset(job_id for group in self.groups
                         for job_id in group.job_ids)

    @property
    def machines_used(self) -> int:
        return sum(group.n_machines for group in self.groups)

    def group_shapes(self) -> tuple[tuple[tuple[str, ...], int], ...]:
        """``(job_ids, n_machines)`` per group — the estimate-free
        shape the policy layer and tournament replays compare on."""
        return tuple((group.job_ids, group.n_machines)
                     for group in self.groups)

    def describe(self) -> str:
        lines = [f"SchedulePlan: {len(self.groups)} groups, "
                 f"{self.machines_used}/{self.total_machines} machines, "
                 f"U_cpu={self.utilization.cpu:.2f} "
                 f"U_net={self.utilization.net:.2f}"]
        for index, group in enumerate(self.groups):
            lines.append(
                f"  group[{index}] m={group.n_machines} "
                f"jobs={list(group.job_ids)} "
                f"T_g={group.estimate.t_group_iteration:.1f}s "
                f"({group.estimate.bound_case}-bound)")
        return "\n".join(lines)


def argmin_convex(cost, low: int, high: int) -> int:
    """Smallest integer minimizer of a convex cost on ``[low, high]``.

    Ternary search with *non-strict* window shrinking: on a tie
    (``cost(mid1) == cost(mid2)``) the minimum lies anywhere inside
    ``[mid1, mid2]``, so the window shrinks to exactly that span instead
    of discarding an endpoint — the strict ``<``/exclusive variant can
    drop the true minimizer when the cost is piecewise-linear with flat
    segments (e.g. Σ|W_j·n_g/M − T_net_j|, whose bottom is often a
    plateau).  Once the window is small the remaining points are scanned
    linearly; ties resolve to the smallest argument.
    """
    if low > high:
        raise SchedulingError(f"empty search window [{low}, {high}]")
    while high - low > 2:
        mid1 = low + (high - low) // 3
        mid2 = high - (high - low) // 3
        c1, c2 = cost(mid1), cost(mid2)
        if c1 < c2:
            high = mid2          # minimum is left of mid2
        elif c1 > c2:
            low = mid1           # minimum is right of mid1
        else:
            low, high = mid1, mid2  # plateau: minimum within [mid1, mid2]
    return min(range(low, high + 1), key=cost)


def _prefix_sizes(n: int):
    """Candidate-set sizes for Algorithm 1's outer loop.

    Exhaustive (1, 2, ..., n) for small pools; geometric growth beyond
    64 jobs so that scheduling thousands of jobs stays sub-second while
    the early-break behaviour is unchanged (§V-F scalability).
    """
    size = 1
    last = 0
    while size <= n:
        yield size
        last = size
        size += 1 if size < 64 else max(1, size // 8)
    if last != n and n > 0:
        yield n


class PlanCache:
    """LRU memo of prefix plans, keyed by (fingerprint, n, machines).

    The master calls ``schedule()`` with heavily overlapping job pools —
    every arrival, completion, and periodic regroup check re-plans a
    pool that mostly repeats earlier prefixes.  Entries carry the exact
    metrics tuple they were computed from; a lookup only hits when the
    stored tuple compares equal, so fingerprint collisions degrade to
    misses instead of wrong plans.  ``invalidate_job`` is wired to the
    profiler's listener hook: a job's entries die the moment its moving
    averages change (§IV-B1), which is exactly when a memoized plan
    stops being the plan Algorithm 1 would recompute.
    """

    __slots__ = ("max_entries", "hits", "misses", "_entries", "_by_job")

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise SchedulingError(
                f"cache needs >= 1 entry, got {max_entries}")
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        #: key -> (metrics tuple, plan-or-None)
        self._entries: "OrderedDict[tuple, tuple]" = OrderedDict()
        #: job_id -> keys of entries containing that job (invalidation
        #: is O(affected entries), not a full scan per profiler update).
        self._by_job: dict[str, set] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple, jobs: tuple):
        """The cached plan, or :data:`_CACHE_MISS` when absent."""
        entry = self._entries.get(key)
        if entry is not None and entry[0] == jobs:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[1]
        self.misses += 1
        return _CACHE_MISS

    def put(self, key: tuple, jobs: tuple,
            plan: "SchedulePlan | None") -> None:
        if key in self._entries:
            self._drop(key)
        while len(self._entries) >= self.max_entries:
            self._drop(next(iter(self._entries)))
        self._entries[key] = (jobs, plan)
        for job in jobs:
            self._by_job.setdefault(job.job_id, set()).add(key)

    def invalidate_job(self, job_id: str) -> None:
        """Drop every entry whose job set contains ``job_id``."""
        for key in self._by_job.pop(job_id, ()):
            entry = self._entries.pop(key, None)
            if entry is not None:
                self._unindex(key, entry[0], skip=job_id)

    def clear(self) -> None:
        self._entries.clear()
        self._by_job.clear()

    def _drop(self, key: tuple) -> None:
        jobs, _ = self._entries.pop(key)
        self._unindex(key, jobs)

    def _unindex(self, key: tuple, jobs: tuple,
                 skip: "str | None" = None) -> None:
        for job in jobs:
            if job.job_id == skip:
                continue
            bucket = self._by_job.get(job.job_id)
            if bucket is not None:
                bucket.discard(key)
                if not bucket:
                    del self._by_job[job.job_id]


class HarmonyScheduler:
    """Implements Algorithm 1 plus the n_G* search of L6."""

    def __init__(self, perf_model: PerfModel | None = None,
                 config: SchedulerConfig | None = None,
                 memory_floor: MemoryFloorFn | None = None):
        self.config = config if config is not None else SchedulerConfig()
        self.perf_model = perf_model if perf_model is not None \
            else PerfModel(cpu_weight=self.config.cpu_weight)
        self.memory_floor = memory_floor
        #: Shape of the most recent :meth:`schedule` call (None before
        #: the first call); read by the master's trace instrumentation.
        self.last_stats: ScheduleStats | None = None
        #: Prefix-plan memo; subclasses may set it to None to disable
        #: (the reference path does), as does configuring 0 entries.
        self.plan_cache: PlanCache | None = (
            PlanCache(max_entries=self.config.plan_cache_entries)
            if self.config.plan_cache_entries > 0 else None)
        #: Per-call warm-start state: m_ref -> (sorted order, #jobs it
        #: covers).  Orders index into the current call's admission
        #: order, so the dict only lives for the span of one
        #: ``schedule()`` call.
        self._warm_orders: "dict[int, tuple] | None" = None
        self._warm_reuses = 0
        #: Per-call group-estimate memo: warm-started prefixes share
        #: most group compositions (~90% repeat rate on churn streams),
        #: and :meth:`~repro.core.perfmodel.PerfModel.estimate_group`
        #: is pure, so a repeated group returns the identical estimate
        #: object.  Keyed by member identity — only valid while the
        #: current call's job snapshots are pinned, so
        #: :meth:`build_plan` consults it only inside ``schedule()``.
        #: None disables it (the reference path).
        self._estimate_memo: "dict | None" = {}

    # -- Algorithm 1 ---------------------------------------------------------

    def schedule(self, jobs: Sequence[JobMetrics],
                 total_machines: int) -> SchedulePlan | None:
        """The ``schedule`` function of Algorithm 1.

        Returns the best plan found, or None when no job can be placed
        (e.g. nothing fits in memory).
        """
        if total_machines < 1:
            raise SchedulingError(
                f"total_machines must be >= 1, got {total_machines}")
        if not jobs:
            return None
        ordered = self._admission_order(jobs)
        view = MetricsView(ordered)
        cache = self.plan_cache
        fingerprints = _prefix_fingerprints(ordered) \
            if cache is not None else None
        best: SchedulePlan | None = None
        no_improvement = 0
        n_prefixes = 0
        cache_hits = 0
        cache_misses = 0
        self._warm_orders = {}
        self._warm_reuses = 0
        if self._estimate_memo is not None:
            self._estimate_memo.clear()
        try:
            for n_jobs in _prefix_sizes(len(ordered)):
                prefix = view.prefix(n_jobs)
                n_prefixes += 1
                plan = _CACHE_MISS
                if cache is not None:
                    key = (fingerprints[n_jobs - 1], n_jobs,
                           total_machines)
                    plan = cache.get(key, prefix.jobs)
                if plan is _CACHE_MISS:
                    cache_misses += 1
                    plan = self._plan_for(prefix, total_machines)
                    if cache is not None:
                        cache.put(key, prefix.jobs, plan)
                else:
                    cache_hits += 1
                if plan is None:
                    if best is not None:
                        break  # adding jobs stopped being feasible
                    continue
                if best is None or plan.score > best.score:
                    best = plan
                    no_improvement = 0
                else:
                    # L12-13: stop growing once utilization stops
                    # improving (with a small patience for discrete
                    # n_G* bumps).
                    no_improvement += 1
                    if no_improvement > self.config.schedule_patience:
                        break
        finally:
            warm_reuses = self._warm_reuses
            self._warm_orders = None
        self.last_stats = ScheduleStats(
            n_jobs_offered=len(ordered),
            n_prefixes_evaluated=n_prefixes,
            best_n_groups=len(best.groups) if best is not None else 0,
            best_n_jobs=(len(best.scheduled_job_ids)
                         if best is not None else 0),
            best_score=best.score if best is not None else 0.0,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            warm_start_reuses=warm_reuses,
            fast_path=cache_hits > 0 or warm_reuses > 0)
        return best

    def _admission_order(self, jobs: Sequence[JobMetrics]) -> \
            list[JobMetrics]:
        """Order in which the L4 prefix loop considers jobs.

        The paper does not pin J_to_sched's order; see
        ``SchedulerConfig.admission_order`` for the choices.
        """
        view = jobs if isinstance(jobs, MetricsView) else MetricsView(jobs)
        keys = view.t_iteration_at(_ORDERING_DOP)
        # Stable C-speed argsort == sorted(key=t_iteration) bit for bit.
        ascending = [view.jobs[index]
                     for index in np.argsort(keys, kind="stable")]
        order = self.config.admission_order
        if order == "sjf":
            return ascending
        if order == "ljf":
            return list(reversed(ascending))
        if order == "interleave":
            result = []
            low, high = 0, len(ascending) - 1
            take_long = True
            while low <= high:
                if take_long:
                    result.append(ascending[high])
                    high -= 1
                else:
                    result.append(ascending[low])
                    low += 1
                take_long = not take_long
            return result
        if order == "critical":
            # The handful of longest jobs define the makespan's critical
            # path and must start early; everything else goes shortest-
            # first so completions front-load (short mean JCT).
            n_critical = max(1, len(ascending) // 10)
            critical = ascending[len(ascending) - n_critical:]
            rest = ascending[:len(ascending) - n_critical]
            return list(reversed(critical)) + rest
        raise SchedulingError(f"unknown admission order {order!r}")

    def _plan_for(self, jobs: "Sequence[JobMetrics] | MetricsView",
                  total_machines: int) -> SchedulePlan | None:
        """One iteration of the L4-L13 loop body for a fixed job set."""
        view = jobs if isinstance(jobs, MetricsView) else MetricsView(jobs)
        n_groups = self._pick_group_count(view, total_machines)
        m_ref = max(1, total_machines // n_groups)
        order = self._grouping_order_for(view, m_ref)
        groups = assign_jobs(view, n_groups, m_ref=m_ref,
                             max_swap_passes=self.config.max_swap_passes,
                             order=order)
        allocation = allocate_machines(groups, total_machines,
                                       self.memory_floor)
        if allocation is None:
            return None
        return self.build_plan(groups, allocation, total_machines)

    def _grouping_order_for(self, view: MetricsView,
                            m_ref: int) -> np.ndarray:
        """Sorted grouping order for ``view``, warm-started when an
        earlier prefix of the same ``schedule()`` call already sorted a
        shorter prefix at the same ``m_ref`` (prefixes are nested, so
        the old order is a valid partial order of the new one)."""
        warm = self._warm_orders
        if warm is None:
            return grouping_order(view, m_ref)
        held = warm.get(m_ref)
        if held is not None and held[1] <= len(view):
            prev_order, prev_n = held
            if prev_n == len(view):
                order = prev_order
            else:
                order = extend_grouping_order(view, m_ref, prev_order,
                                              prev_n)
            self._warm_reuses += 1
        else:
            order = grouping_order(view, m_ref)
        warm[m_ref] = (order, len(view))
        return order

    def build_plan(self, groups: Sequence[Sequence[JobMetrics]],
                   allocation: Sequence[int],
                   total_machines: int) -> SchedulePlan:
        """Assemble and score a plan from explicit groups/allocation.

        Intentionally *not* vectorized: plan scores decide ties between
        prefixes (exact ties are real — saturated utilization is exactly
        1.0), so the fast path and the reference path must share this
        exact floating-point arithmetic.  Repeated group compositions
        within one ``schedule()`` call are served from the estimate
        memo — the same pure function on the same pinned snapshots, so
        the memo cannot change a single bit of the result.
        """
        memo = self._estimate_memo if self._warm_orders is not None \
            else None
        if memo is None:
            estimates = [self.perf_model.estimate_group(group, m)
                         for group, m in zip(groups, allocation, strict=True)]
        else:
            estimate_group = self.perf_model.estimate_group
            estimates = []
            for group, m in zip(groups, allocation, strict=True):
                key = (m, *map(id, group))
                cached = memo.get(key)
                if cached is None:
                    cached = estimate_group(group, m)
                    memo[key] = cached
                estimates.append(cached)
        utilization = self.perf_model.cluster_utilization(
            estimates, total_machines=total_machines)
        plans = tuple(GroupPlan(job_ids=e.job_ids, n_machines=m, estimate=e)
                      for e, m in zip(estimates, allocation, strict=True))
        return SchedulePlan(groups=plans, utilization=utilization,
                            score=self.perf_model.score(utilization),
                            total_machines=total_machines)

    # -- L6: the group-count search ---------------------------------------------

    def _pick_group_count(self,
                          jobs: "Sequence[JobMetrics] | MetricsView",
                          total_machines: int) -> int:
        """n_G* = argmin_nG Σ_j |T_cpu_j(n_G) − T_net_j|  (L6).

        Under the equal-DoP assumption ``m_g = M / n_G``, so
        ``T_cpu_j(n_G) = W_j · n_G / M``.
        """
        view = jobs if isinstance(jobs, MetricsView) else MetricsView(jobs)
        min_groups = max(
            1, -(-len(view) // self.config.max_jobs_per_group))
        max_groups = min(len(view), total_machines)
        if min_groups > max_groups:
            min_groups = max_groups

        cpu_work = view.cpu_work
        t_net = view.t_net

        def cost(n_g: int) -> float:
            return float(
                np.abs(cpu_work * (n_g / total_machines) - t_net).sum())

        # cost(n_g) = Σ|W_j · n_g / M − T_net_j| is convex in n_g, so a
        # ternary search finds the minimum in O(log M) evaluations —
        # needed for the §V-F scale (thousands of jobs and machines).
        # Flat bottom segments are common (the absolute values cancel
        # over whole intervals), hence the plateau-safe variant.
        return argmin_convex(cost, min_groups, max_groups)


def _prefix_fingerprints(ordered: Sequence[JobMetrics]) -> list:
    """Chain hash over (job_id, cpu_work, t_net) per prefix.

    ``fingerprints[k-1]`` summarizes the first ``k`` jobs in admission
    order, so all prefix keys of a call cost one O(n) sweep.  The cache
    compares the stored metrics tuple on every hit, so a hash collision
    costs a recompute, never a wrong plan.
    """
    fingerprints = []
    value = 0
    for job in ordered:
        value = hash((value, job.job_id, job.cpu_work, job.t_net))
        fingerprints.append(value)
    return fingerprints
