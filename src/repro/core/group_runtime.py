"""Simulated execution of one job group (§IV-A's execution model).

A :class:`GroupRuntime` owns the shared resources of one set of
machines and runs each co-located job as a simulated process cycling
through PULL -> COMP -> PUSH subtasks (Fig. 1).  The resource policies
implement the three execution disciplines compared in the paper:

* ``HARMONY`` — coordinated subtasks: one COMP at a time on the CPU, a
  primary plus reduced-rate secondary COMM on the network (Fig. 7),
  and dynamic data reloading.
* ``NAIVE`` — the Gandiva-style baseline: subtasks of co-located jobs
  contend through processor sharing with an interference penalty, no
  spill (Fig. 5a).
* ``ISOLATED`` — a single job running alone on dedicated machines.

The paper models a group's workers as advancing in lockstep (the
SubTask Synchronizer barriers each step across workers), so the group
is simulated as one symmetric pipeline whose CPU/NIC stand for every
machine's; the barrier latency and straggler effects appear as the
``barrier_overhead`` duration factor.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Protocol

from repro.cluster.memory import MemoryLedger
from repro.config import GB, SimConfig
from repro.core.job import Job
from repro.core.memory_manager import GroupMemoryManager
from repro.errors import OutOfMemoryError, SimulationError
from repro.sim import (
    Event,
    RandomStreams,
    RateResource,
    Simulator,
    primary_secondary,
    processor_sharing,
    serial,
)
from repro.sim.fastpath import GroupBatchEngine
from repro.sim.resources import ResourceAudit
from repro.workloads.costmodel import CostModel


class ExecutionMode(enum.Enum):
    """Execution discipline of a group (see module docstring)."""

    HARMONY = "harmony"
    NAIVE = "naive"
    ISOLATED = "isolated"

    @property
    def coordinated(self) -> bool:
        return self is not ExecutionMode.NAIVE

    @property
    def spill_enabled(self) -> bool:
        return self is ExecutionMode.HARMONY


#: Interference penalty of uncoordinated sharing (naive baseline):
#: effective throughput with k tasks is 1 / (1 + phi * (k - 1)).
NAIVE_CPU_INTERFERENCE = 0.08
NAIVE_NET_INTERFERENCE = 0.05

#: Display order of a group's trace lanes: CPU first, then NET, DISK.
_LANE_SORT = {"cpu": 0, "net": 1, "disk": 2}


class GroupHooks(Protocol):
    """Callbacks a :class:`GroupRuntime` delivers to its master.

    A hooks implementation may additionally declare one of two class
    attributes governing the batched fast path
    (:mod:`repro.sim.fastpath`):

    * ``iteration_hooks_inert = True`` promises that ``on_iteration``
      neither mutates the group (no pause/crash/regroup/add-job) nor
      reads cluster state keyed to the wall clock.  That promise is
      what lets the fused solo lane run a whole single-job group's
      iterations under a warped clock; terminal hooks
      (``on_job_finished``/``on_job_failed``) still fire at real time.
    * ``iteration_hooks_replayable = True`` is the weaker contract:
      hooks may observe and mutate (pause jobs, record utilization,
      hill-climb alpha) but only through the simulator/group APIs.
      Such groups take the coordinated drive lane, where every hook —
      per-iteration and terminal — runs at its true simulated time
      with true state, so no warped-clock restriction applies.

    ``inert`` implies ``replayable``; declaring both is redundant but
    harmless.
    """

    def on_iteration(self, job: Job, group: "GroupRuntime") -> None: ...

    def on_job_finished(self, job: Job, group: "GroupRuntime") -> None: ...

    def on_job_paused(self, job: Job, group: "GroupRuntime") -> None: ...

    def on_job_failed(self, job: Job, group: "GroupRuntime",
                      error: Exception) -> None: ...


@dataclass(frozen=True)
class GroupAudit:
    """Final (or in-flight) conservation snapshot of one group.

    Consumed by :mod:`repro.check`: the per-resource ledgers plus the
    policy facts the checker needs to bound busy time by served work
    (a serial CPU delivers exactly its busy seconds; a
    primary+secondary NIC delivers at most ``net_rate_cap`` times its
    busy seconds).
    """

    group_id: str
    mode: str
    n_machines: int
    started_at: float
    stopped_at: float | None
    crashed: bool
    cpu: ResourceAudit
    net: ResourceAudit
    disk: ResourceAudit
    #: True when the CPU serves one COMP at a time (coordinated modes).
    cpu_serial: bool
    #: Max total NIC service rate relative to capacity (Fig. 7's
    #: primary + secondary share under coordinated modes, else 1.0).
    net_rate_cap: float


@dataclass
class CycleRecord:
    """One completed job iteration inside a group."""

    job_id: str
    finished_at: float
    duration: float
    t_cpu_measured: float
    t_net_measured: float
    gc_overhead: float
    stall: float
    #: The job's disk-block ratio when the iteration ran (§V-G stats).
    alpha: float = 0.0


class GroupRuntime:
    """Live execution state of one job group on a machine set."""

    def __init__(self, sim: Simulator, group_id: str,
                 machine_ids: tuple[int, ...], mode: ExecutionMode,
                 cost_model: CostModel, config: SimConfig,
                 streams: RandomStreams, hooks: GroupHooks):
        if not machine_ids:
            raise SimulationError(f"group {group_id} has no machines")
        self.sim = sim
        self.group_id = group_id
        self.machine_ids = tuple(machine_ids)
        self.mode = mode
        self.cost_model = cost_model
        self.config = config
        self.streams = streams
        self.hooks = hooks

        # Observability (repro.trace): None when tracing is off, so the
        # per-subtask hot path is gated by one attribute check.
        self._trace = sim.tracer if sim.tracer.enabled else None
        self._lanes: dict[tuple[str, str], object] = {}
        lo, hi = min(machine_ids), max(machine_ids)
        self._trace_process = (
            f"machines {lo}-{hi} · {group_id}" if len(machine_ids) > 1
            else f"machine {lo} · {group_id}")

        execution = config.execution
        if mode is ExecutionMode.NAIVE:
            cpu_policy = processor_sharing(NAIVE_CPU_INTERFERENCE)
            net_policy = processor_sharing(NAIVE_NET_INTERFERENCE)
        else:
            cpu_policy = serial()
            net_policy = primary_secondary(execution.secondary_comm_rate)
        self.cpu = RateResource(sim, cpu_policy, f"{group_id}:cpu",
                                trace_gauge=f"{group_id}.cpu.level")
        self.net = RateResource(sim, net_policy, f"{group_id}:net",
                                trace_gauge=f"{group_id}.net.level")
        # Disk: reloads/checkpoints of co-located jobs share bandwidth.
        self.disk = RateResource(sim, processor_sharing(),
                                 f"{group_id}:disk", record_segments=False,
                                 trace_gauge=f"{group_id}.disk.level")
        if self._trace is not None:
            self._trace.instant(
                "group-start", cat="lifecycle", args={
                    "group": group_id, "machines": list(machine_ids),
                    "mode": mode.value})

        self.ledger = MemoryLedger(cost_model.spec,
                                   config.memory.gc_model)
        self.memory = GroupMemoryManager(
            self.ledger, cost_model, config.memory,
            n_machines=self.n_machines,
            spill_enabled=(mode.spill_enabled
                           and config.memory.spill_enabled))
        self.started_at = sim.now
        self.stopped_at: float | None = None
        self.crashed = False
        self.cycles: list[CycleRecord] = []
        self._jobs: dict[str, Job] = {}
        self._processes: dict[str, "object"] = {}
        self._pause_requested: set[str] = set()
        self._duration_jitter_cv = execution.duration_jitter_cv * (
            3.0 if mode is ExecutionMode.NAIVE else 1.0)
        # Fault-injection multipliers (repro.faults): the group advances
        # in lockstep, so one straggling machine stretches every COMP
        # subtask, and a lossy link stretches every COMM subtask
        # (retransmits).  Overlapping windows compose multiplicatively.
        self._fault_cpu_factor = 1.0
        self._fault_net_factor = 1.0
        # Batched fast path.  Masters whose per-iteration hooks are
        # declared inert get both lanes (the fused single-job solo lane
        # and the coordinated drive lane for multi-job groups); masters
        # declaring them replayable — hooks that observe/mutate only
        # through simulator APIs, like HarmonyMaster's profiler and
        # pause machinery — get the coordinated lane, which runs every
        # callback at true simulated times.  Everyone else stays on the
        # frozen per-event reference path.
        hooks_inert = bool(getattr(hooks, "iteration_hooks_inert", False))
        hooks_replayable = bool(
            getattr(hooks, "iteration_hooks_replayable", False))
        engine = None
        if config.engine == "fast" and (hooks_inert or hooks_replayable):
            engine = GroupBatchEngine(self, solo_ok=hooks_inert)
            if not engine.attach():
                engine = None  # fastpath_enabled already off
        self._engine = engine

    # -- inspection ------------------------------------------------------------

    @property
    def n_machines(self) -> int:
        return len(self.machine_ids)

    @property
    def job_ids(self) -> tuple[str, ...]:
        return tuple(self._jobs)

    @property
    def n_jobs(self) -> int:
        return len(self._jobs)

    def jobs(self) -> list[Job]:
        return list(self._jobs.values())

    @property
    def is_idle(self) -> bool:
        return not self._jobs

    # -- membership ----------------------------------------------------------------

    def can_admit(self, job: Job) -> bool:
        """Memory-feasibility probe without side effects.

        Admission aims at the configured target pressure, not the OOM
        line: co-locating a job that would push the group deep into GC
        territory defeats the purpose (§IV-C balances exactly this).
        """
        spill = self.memory.spill_enabled
        fixed = self.config.memory.fixed_alpha
        alpha = 1.0 if spill else 0.0
        if spill and fixed is not None:
            alpha = fixed
        # Identical budget basis to the master's memory floors: a plan
        # sized exactly at its floor must pass this gate, or placement
        # livelocks (plan -> reject -> re-plan forever).
        budget = (self.ledger.spec.usable_memory_bytes
                  * self.config.memory.target_pressure)
        minimal_new = self.cost_model.resident_bytes(
            job.spec, self.n_machines, alpha=alpha)
        if spill and fixed is None and minimal_new > budget:
            # Only a job that cannot fit at all otherwise (e.g. an
            # all-reduce full-model replica) is assessed with the
            # §IV-C model-spill fallback — admit() will actually apply
            # it in that case.
            minimal_new = min(minimal_new, self.cost_model.resident_bytes(
                job.spec, self.n_machines, alpha=1.0,
                model_spilled=True))
        # Feasibility on the minimal basis: existing jobs can always be
        # re-spilled (their alphas raised) to make room for a newcomer.
        minimal_existing = sum(
            self.cost_model.resident_bytes(
                j.spec, self.n_machines,
                alpha=alpha if not j.model_spilled else 1.0,
                model_spilled=j.model_spilled)
            for j in self._jobs.values()) if spill \
            else self.ledger.resident_bytes
        return minimal_existing + minimal_new <= budget

    def add_job(self, job: Job, restore: bool = False,
                start_delay: float = 0.0) -> bool:
        """Admit a job and start executing it.

        ``restore`` charges the §IV-B4 resume path: the model partition
        is read back from its checkpoint before iterations resume (input
        reloading happens through the normal initial-load path).
        ``start_delay`` holds the job's first PULL back by that many
        simulated seconds — the phase-offset stagger the interleaving
        policies plan with (the job is a group member immediately; only
        its pipeline entry is delayed).
        Returns False when the job does not fit in this group's memory.
        """
        if job.job_id in self._jobs:
            raise SimulationError(
                f"job {job.job_id} already in group {self.group_id}")
        if job.group_id is not None:
            raise SimulationError(
                f"job {job.job_id} is still a member of group "
                f"{job.group_id}; cannot also join {self.group_id}")
        if start_delay < 0:
            raise SimulationError(
                f"job {job.job_id}: negative start_delay {start_delay}")
        if not self.memory.admit(job):
            return False
        self._jobs[job.job_id] = job
        job.group_id = self.group_id
        self._processes[job.job_id] = self.sim.spawn(
            self._job_process(job, restore, start_delay),
            name=f"{self.group_id}/{job.job_id}")
        return True

    def request_pause(self, job_id: str) -> None:
        """Ask a job to pause at its next iteration boundary (§IV-B4)."""
        if job_id not in self._jobs:
            raise SimulationError(
                f"job {job_id} not in group {self.group_id}")
        self._pause_requested.add(job_id)

    def request_pause_all(self) -> None:
        for job_id in self._jobs:
            self._pause_requested.add(job_id)

    @property
    def pause_pending_count(self) -> int:
        """Jobs asked to pause that have not reached a boundary yet."""
        return len(self._pause_requested & set(self._jobs))

    def check_group_memory(self) -> OutOfMemoryError | None:
        """OOM probe used by the uncoordinated baselines (Fig. 4)."""
        try:
            self.ledger.check_oom()
        except OutOfMemoryError as error:
            return error
        return None

    # -- observability helpers -------------------------------------------------------

    def _lane(self, resource: str, job_id: str):
        """The (group-process, per-job resource thread) trace track."""
        key = (resource, job_id)
        track = self._lanes.get(key)
        if track is None:
            track = self._trace.track(
                self._trace_process, f"{resource} · {job_id}",
                process_sort=min(self.machine_ids),
                thread_sort=_LANE_SORT[resource] * 1000 + len(self._lanes))
            self._lanes[key] = track
        return track

    def _trace_service(self, resource: str, job_id: str, name: str,
                       record, cat: str) -> None:
        """One served subtask as (optional wait span +) service span.

        The wait span is the time queued behind co-located jobs'
        subtasks (§IV-A contention); the service span is the actual
        execution window, so COMP/COMM overlap across jobs is directly
        visible on the timeline.
        """
        lane = self._lane(resource, job_id)
        if record.started_at - record.submitted_at > 1e-9:
            self._trace.complete(lane, f"wait·{name}",
                                 record.submitted_at, record.started_at,
                                 cat="wait")
        self._trace.complete(lane, name, record.started_at,
                             record.finished_at, cat=cat)

    # -- job execution ---------------------------------------------------------------

    def _job_process(self, job: Job, restore: bool,
                     start_delay: float = 0.0):
        if start_delay > 0:
            # Planned phase offset: enter the pipeline late so this
            # job's COMM bursts land in its partners' COMP gaps.
            yield self.sim.at(self.sim.now + start_delay)
        job_id = job.job_id
        spec = job.spec
        m = self.n_machines
        profile = self.cost_model.profile(spec, m)
        barrier = 1.0 + self.config.execution.barrier_overhead
        trace = self._trace
        # Hot-loop locals: the jitter stream name is fixed for the
        # job's lifetime; build it once instead of 3x per iteration.
        jitter = self.streams.jitter
        jitter_name = f"duration:{self.group_id}:{job_id}"
        jitter_cv = self._duration_jitter_cv
        # Bytes moved per COMM subtask, for the registry's throughput
        # counters (PULL is a no-op under all-reduce).
        pull_bytes = (spec.comm_gb_per_direction * GB
                      if profile.t_pull > 0 else 0.0)
        push_bytes = spec.comm_gb_per_direction * GB

        if self.mode is ExecutionMode.NAIVE:
            oom = self.check_group_memory()
            if oom is not None:
                self._drop_job(job)
                self.hooks.on_job_failed(job, self, oom)
                return

        # Fast path (repro.sim.fastpath): batch the whole job — initial
        # load plus every iteration — in closed form when the group is
        # isolated enough that nothing can interleave with its
        # timeline.  While batched, awaited subtasks are served fused
        # (serve_solo returns the record directly, no event, no yield);
        # otherwise the classic submit-and-yield path runs.
        engine = self._engine
        batched = engine is not None and engine.open()

        # Initial load: restore the model checkpoint if migrating, then
        # stream the memory-side input blocks from disk.
        load_seconds = 0.0
        if restore:
            load_seconds += self.cost_model.disk.restore_seconds(
                self.cost_model.checkpoint_bytes(spec, m))
        memory_side_bytes = spec.input_gb * (1.0 - job.alpha) / m * 1024**3
        load_seconds += self.cost_model.disk.read_seconds(memory_side_bytes)
        if load_seconds > 0:
            record_load = (self.disk.serve_solo(load_seconds, job_id)
                           if batched else
                           (yield self.disk.submit(load_seconds,
                                                   tag=job_id)))
            if trace is not None:
                self._trace_service("disk", job_id,
                                    "RESTORE+LOAD" if restore else "LOAD",
                                    record_load, "load")

        reload_event: Event | None = self._submit_reload(job)
        finished = False

        while job.remaining_iterations > 0:
            if job_id in self._pause_requested:
                break
            cycle_start = self.sim.now

            # PULL subtask (network).
            t_pull = (profile.t_pull * barrier
                      * jitter(jitter_name, jitter_cv)
                      * self._comm_interference()
                      * self._fault_net_factor)
            record_pull = (self.net.serve_solo(t_pull, job_id)
                           if batched else
                           (yield self.net.submit(t_pull, tag=job_id)))
            if trace is not None and t_pull > 0:
                self._trace_service("net", job_id, "PULL", record_pull,
                                    "comm")

            # Wait for this iteration's disk-side blocks (§IV-C): the
            # reload was issued in the background one iteration ago.
            stall = 0.0
            if reload_event is not None:
                before = self.sim.now
                if batched:
                    # The reload ran in the background while the batch
                    # skipped ahead; drain it here, where the reference
                    # engine would block (its completion may lie behind
                    # the warped clock — await_background restores
                    # max(now, completion), like the real wait does).
                    if not reload_event.triggered:
                        engine.await_background(self.disk)
                    reload_record = reload_event.value
                else:
                    reload_record = yield reload_event
                stall = self.sim.now - before
                if trace is not None:
                    self._trace_service("disk", job_id, "RELOAD",
                                        reload_record, "reload")
                    if stall > 1e-9:
                        trace.complete(self._lane("cpu", job_id),
                                       "RELOAD-STALL", before,
                                       self.sim.now, cat="stall")

            # COMP subtask (CPU), inflated by GC pressure.
            gc_factor = self.memory.gc_inflation()
            t_comp_base = (profile.t_comp * barrier
                           * jitter(jitter_name, jitter_cv)
                           * self._fault_cpu_factor)
            record_comp = (self.cpu.serve_solo(t_comp_base * gc_factor,
                                               job_id)
                           if batched else
                           (yield self.cpu.submit(t_comp_base * gc_factor,
                                                  tag=job_id)))
            if trace is not None:
                self._trace_service("cpu", job_id, "COMP", record_comp,
                                    "comp")

            # Kick off the next iteration's background reload.
            reload_event = self._submit_reload(job)

            # PUSH subtask (network).
            t_push = (profile.t_push * barrier
                      * jitter(jitter_name, jitter_cv)
                      * self._comm_interference()
                      * self._fault_net_factor)
            record_push = (self.net.serve_solo(t_push, job_id)
                           if batched else
                           (yield self.net.submit(t_push, tag=job_id)))
            if trace is not None:
                self._trace_service("net", job_id, "PUSH", record_push,
                                    "comm")

            now = self.sim.now
            # Profiled durations are the subtasks' own service demands
            # (what a real runtime measures from bytes moved / records
            # processed), not wall spans inflated by queueing behind
            # co-located jobs — the whole point of profiling is to
            # predict the jobs' standalone resource needs (§IV-B1).
            cycle = CycleRecord(
                job_id=job_id,
                finished_at=now,
                duration=now - cycle_start,
                t_cpu_measured=record_comp.work,
                t_net_measured=record_pull.work + record_push.work,
                gc_overhead=t_comp_base * (gc_factor - 1.0),
                stall=stall,
                alpha=job.alpha)
            self.cycles.append(cycle)
            self.memory.record_iteration(job, cycle.gc_overhead, stall,
                                         busy_seconds=cycle.duration)
            if trace is not None:
                # Registry counters survive regroupings by design: they
                # are keyed by job, not by the group executing it.
                registry = trace.registry
                prefix = f"job.{job_id}"
                registry.counter(f"{prefix}.steps").add(1)
                registry.counter(f"{prefix}.bytes_pulled").add(pull_bytes)
                registry.counter(f"{prefix}.bytes_pushed").add(push_bytes)
                served = (record_pull.work + record_comp.work
                          + record_push.work)
                registry.counter(
                    f"{prefix}.barrier_wait_seconds").add(
                        served * (1.0 - 1.0 / barrier))
                if stall > 0:
                    registry.counter(f"{prefix}.stall_seconds").add(stall)
                if cycle.gc_overhead > 0:
                    registry.counter(f"{prefix}.gc_seconds").add(
                        cycle.gc_overhead)
                registry.gauge(f"{prefix}.alpha").set(job.alpha)
            finished = job.complete_iteration()
            self.hooks.on_iteration(job, self)
            if finished:
                break

        if batched:
            # Park until the batch's end time arrives on the real event
            # queue: terminal hooks (finish/pause bookkeeping, master
            # re-scheduling) must run at real time, after every event
            # the rest of the cluster has queued before then.
            yield engine.close()
        if reload_event is not None:
            self.disk.cancel(reload_event)
        if finished:
            self._drop_job(job)
            self.hooks.on_job_finished(job, self)
        else:
            # Pause path: wait for the ongoing iteration to end (already
            # guaranteed here), checkpoint the model parameters to disk.
            checkpoint = self.cost_model.disk.checkpoint_seconds(
                self.cost_model.checkpoint_bytes(spec, m))
            record_ckpt = yield self.disk.submit(checkpoint, tag=job_id)
            if trace is not None:
                self._trace_service("disk", job_id, "CHECKPOINT",
                                    record_ckpt, "checkpoint")
                trace.counter(f"job.{job_id}.checkpoints").add(1)
            self._drop_job(job)
            self.hooks.on_job_paused(job, self)

    def _submit_reload(self, job: Job) -> Event | None:
        if not self.memory.spill_enabled:
            return None
        seconds = self.memory.reload_seconds(job)
        if seconds <= 0:
            return None
        if self._trace is not None:
            prefix = f"job.{job.job_id}"
            self._trace.counter(f"{prefix}.reloads").add(1)
            self._trace.counter(f"{prefix}.reload_bytes").add(
                self.cost_model.reload_bytes_per_iteration(
                    job.spec, self.n_machines, job.alpha))
        return self.disk.submit(seconds, tag=job.job_id)

    def _jitter(self, job_id: str) -> float:
        return self.streams.jitter(f"duration:{self.group_id}:{job_id}",
                                   self._duration_jitter_cv)

    def _comm_interference(self) -> float:
        """Occasional bursty-traffic slowdown on a COMM subtask (§VI
        multi-tenant interference; off by default)."""
        probability = self.config.execution.comm_interference_probability
        if probability <= 0.0:
            return 1.0
        rng = self.streams.stream(f"interference:{self.group_id}")
        if rng.random() >= probability:
            return 1.0
        return float(rng.uniform(
            1.5, self.config.execution.comm_interference_max))

    def _drop_job(self, job: Job) -> None:
        self.memory.evict(job)
        self._jobs.pop(job.job_id, None)
        self._processes.pop(job.job_id, None)
        self._pause_requested.discard(job.job_id)
        if job.group_id == self.group_id:
            job.group_id = None

    # -- failure injection (§VI fault tolerance) ----------------------------------

    def apply_cpu_slowdown(self, factor: float) -> None:
        """Open a straggler window: COMP subtasks stretch by ``factor``."""
        if factor <= 0:
            raise SimulationError(f"slowdown factor must be > 0: {factor}")
        self._fault_cpu_factor *= factor

    def clear_cpu_slowdown(self, factor: float) -> None:
        """Close a straggler window previously opened with ``factor``."""
        self._fault_cpu_factor /= factor

    def apply_net_penalty(self, factor: float) -> None:
        """Open a lossy-link window: COMM subtasks stretch by ``factor``."""
        if factor <= 0:
            raise SimulationError(f"penalty factor must be > 0: {factor}")
        self._fault_net_factor *= factor

    def clear_net_penalty(self, factor: float) -> None:
        """Close a lossy-link window previously opened with ``factor``."""
        self._fault_net_factor /= factor

    def crash(self) -> list[Job]:
        """A machine/process failure takes the whole group down.

        "A machine/process failure (e.g., OOM) may have an impact on
        all co-located jobs" (§VI).  Every job process is killed
        mid-flight (no checkpoint is written — that is the point of a
        crash) and the group's resources are abandoned.  Returns the
        jobs that were running so the master can restart them from
        their last checkpoint.
        """
        if self._engine is not None and self._engine.active:
            # Inert masters never inject faults; a crash landing inside
            # an open batch means the eligibility contract was violated.
            raise SimulationError(
                f"group {self.group_id} crashed inside an open "
                f"fast-path batch")
        victims = list(self._jobs.values())
        for process in self._processes.values():
            process.kill()
        for job in victims:
            self.memory.evict(job)
            if job.group_id == self.group_id:
                job.group_id = None
        self._jobs.clear()
        self._processes.clear()
        self._pause_requested.clear()
        # The killed processes leave their in-flight subtasks queued on
        # the shared resources; without purging, the resources would
        # keep serving work nobody is waiting for (phantom busy time).
        self.cpu.purge()
        self.net.purge()
        self.disk.purge()
        self.cpu.close_segments()
        self.net.close_segments()
        self.stopped_at = self.sim.now
        self.crashed = True
        return victims

    # -- teardown -------------------------------------------------------------------

    def stop(self) -> None:
        """Freeze resource accounting; the group must be empty."""
        if self._jobs:
            raise SimulationError(
                f"stopping group {self.group_id} with live jobs: "
                f"{sorted(self._jobs)}")
        self.cpu.close_segments()
        self.net.close_segments()
        self.stopped_at = self.sim.now

    def audit(self) -> GroupAudit:
        """Conservation snapshot for :mod:`repro.check` (any time)."""
        execution = self.config.execution
        coordinated = self.mode.coordinated
        return GroupAudit(
            group_id=self.group_id,
            mode=self.mode.value,
            n_machines=self.n_machines,
            started_at=self.started_at,
            stopped_at=self.stopped_at,
            crashed=self.crashed,
            cpu=self.cpu.audit(),
            net=self.net.audit(),
            disk=self.disk.audit(),
            cpu_serial=coordinated,
            net_rate_cap=(1.0 + execution.secondary_comm_rate
                          if coordinated else 1.0))

    # -- measurements ------------------------------------------------------------------

    def measured_group_iteration(self, since: float = 0.0) -> float | None:
        """Mean per-job cycle duration in steady state (Fig. 13b's
        measured ``T_g_itr``); None when nothing completed yet."""
        durations = [c.duration for c in self.cycles
                     if c.finished_at >= since]
        if not durations:
            return None
        return sum(durations) / len(durations)
