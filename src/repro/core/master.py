"""The Harmony master (§III, Fig. 6).

The master owns the job queue and the job groups: it assigns newly
submitted jobs to groups for profiling, runs the scheduling algorithm
over profiled metrics, applies grouping decisions by migrating jobs
(pause -> checkpoint -> restore, §IV-B4), repairs groups when jobs
finish (similar-job replacement, then escalating regrouping), and
admits waiting jobs when machines free up.

Interpretation choices relative to the paper are documented inline and
in DESIGN.md: a profiled job chooses among {stay, move, new-group,
wait} by predicted cluster utilization (the paper's "adds it to a
proper group that maximizes U or let it wait"), and a periodic check
realizes §IV-B2's "constantly seeks for higher resource utilization"
under the 5% benefit threshold.
"""

from __future__ import annotations

import functools
import itertools
from collections.abc import Sequence
from dataclasses import dataclass

from repro.cluster.cluster import Cluster
from repro.config import SimConfig
from repro.core.group_runtime import ExecutionMode, GroupRuntime
from repro.core.job import Job, JobState
from repro.core.perfmodel import GroupEstimate, PerfModel
from repro.core.profiler import JobMetrics, Profiler
from repro.core.regroup import (
    find_similar_bundle,
    find_similar_job,
    prefer_fewer_jobs,
)
from repro.core.scheduler import HarmonyScheduler, SchedulePlan
from repro.errors import SchedulingError
from repro.metrics.faults import FaultLog, FaultRecord
from repro.metrics.utilization import (
    ClusterUsageRecorder,
    DecisionRecord,
    busy_fraction,
)
from repro.sim import RandomStreams, Simulator
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel

#: At most this many new jobs profile concurrently in one group, to
#: "minimize the potential degradation of resource utilization" (§IV-B1).
_MAX_PROFILING_PER_GROUP = 2
#: Machines of a bootstrap profiling group when the cluster is empty.
_BOOTSTRAP_MACHINES = 4
#: Escalation limit: how many groups beyond the repaired one may join a
#: completion-triggered regrouping before we stop growing the scope.
_MAX_ESCALATION_GROUPS = 3


@dataclass
class _Rebuild:
    """An in-flight plan application.

    Only *unmatched* groups drain; matched groups keep running while
    individual jobs migrate in and out ("the master simply pauses the
    job and executes the other co-located jobs in the meanwhile,
    keeping the resources busy", §IV-B4).  ``slots`` are the plan groups
    that need fresh machine sets once the drain releases them.
    """

    draining: set[str]
    slots: list[tuple[str, tuple[str, ...], int]]


class _SchedulerPlanner:
    """Default planner: forwards to the master's ``HarmonyScheduler``.

    Structurally identical to
    :class:`repro.policies.planner.SchedulerPlanner`; duplicated here
    because this module must not import :mod:`repro.policies` (the
    policy registry imports the runtimes, which import this master).
    """

    def __init__(self, scheduler):
        self.scheduler = scheduler

    def plan(self, jobs, total_machines):
        return self.scheduler.schedule(jobs, total_machines)


class HarmonyMaster:
    """Scheduling brain bound to a simulator and a cluster."""

    #: Fast-path contract (see :class:`repro.core.group_runtime
    #: .GroupHooks`): the per-iteration hooks observe and mutate live
    #: state (profiler EMA updates, PROFILING→PROFILED transitions that
    #: cascade into Algorithm 1, pause requests) — not inert — but they
    #: act only through the simulator/group APIs, so they are correct
    #: whenever they run at true simulated times.  That qualifies this
    #: master's groups for the coordinated drive lane, which serves
    #: every parked completion at its true ``(when, seq)`` heap
    #: position.
    iteration_hooks_replayable = True

    def __init__(self, sim: Simulator, cluster: Cluster,
                 cost_model: CostModel, config: SimConfig,
                 streams: RandomStreams,
                 recorder: ClusterUsageRecorder,
                 perf_model: PerfModel | None = None,
                 scheduler_factory=None,
                 planner=None,
                 fault_log: FaultLog | None = None):
        self.sim = sim
        self.cluster = cluster
        self.cost_model = cost_model
        self.config = config
        self.streams = streams
        self.recorder = recorder
        self.profiler = Profiler(ema_alpha=config.scheduler.ema_alpha)
        self.perf_model = perf_model if perf_model is not None \
            else PerfModel(cpu_weight=config.scheduler.cpu_weight)
        # The scheduling algorithm is pluggable so the §V-F Oracle can
        # drive the very same master (Fig. 14's comparison).  With
        # ShardConfig.n_cells > 1 the default becomes the
        # cluster-of-cells front end (repro.shard) — same schedule()
        # contract, same plan_cache/last_stats seams below.  Imported
        # lazily: repro.shard depends on core.scheduler, so a module-
        # level import here would couple every master import to it.
        if scheduler_factory is None:
            if config.shard.n_cells > 1:
                from repro.shard.scheduler import ShardedScheduler
                scheduler_factory = functools.partial(
                    ShardedScheduler, shard=config.shard,
                    tracer=sim.tracer)
            else:
                scheduler_factory = HarmonyScheduler
        self.scheduler = scheduler_factory(
            perf_model=self.perf_model, config=config.scheduler,
            memory_floor=self._memory_floor)
        # Planner seam (repro.policies.planner.PlannerPolicy): every
        # observe->plan step goes through ``self.planner.plan(...)``, so
        # alternative planners inject without subclassing the master.
        # The default adapter is defined inline (_SchedulerPlanner)
        # because importing repro.policies here would cycle back through
        # the registry into this module.
        self.planner = planner if planner is not None \
            else _SchedulerPlanner(self.scheduler)
        # Observability (repro.trace): scheduler decisions land on a
        # dedicated "master" lane as instant events; None when tracing
        # is off so decision paths pay one attribute check.
        self._trace = sim.tracer if sim.tracer.enabled else None
        self._trace_track = (
            sim.tracer.track("master", "scheduler", process_sort=0)
            if self._trace is not None else None)

        self.jobs: dict[str, Job] = {}
        self.groups: dict[str, GroupRuntime] = {}
        self._group_ids = itertools.count()
        self._waiting: list[str] = []
        self._profiling_iterations: dict[str, int] = {}
        self._pending_moves: dict[str, str] = {}
        self._rebuild: _Rebuild | None = None
        self._last_apply_time = float("-inf")
        #: group_id -> index of its open DecisionRecord + epoch start.
        self._open_decisions: dict[str, tuple[int, float]] = {}
        self.migration_overhead_seconds = 0.0
        #: (time, n_machines, n_jobs) per group membership epoch — the
        #: raw data behind Fig. 12's DoP / jobs-per-group CDFs.
        self.group_shape_log: list[tuple[float, int, int]] = []
        #: Cycle records of groups that have been torn down.
        self.finished_cycles: list = []
        #: Final conservation snapshots of torn-down groups, for
        #: :mod:`repro.check` (live groups are audited on demand).
        self.group_audits: list = []
        #: Iterations rolled back per job by crash recovery — the
        #: checker's no-lost-iterations ledger: a finished job must have
        #: executed exactly ``spec.iterations + rolled_back`` cycles.
        self.rolled_back_iterations: dict[str, int] = {}
        #: Count of machine failures processed (§VI fault tolerance).
        self.failures_injected = 0
        #: Recovery accounting sink (repro.faults); optional.
        self.fault_log = fault_log

        # -- incremental fast path -------------------------------------
        #: Completions repaired by the §IV-B4 plan patch (similar job or
        #: bundle spliced in) vs. escalated to full Algorithm 1.
        self.fast_path_replacements = 0
        self.full_path_regroups = 0
        #: Memo of per-group estimates; cleared whenever the profiler
        #: publishes or a group's membership changes, so the repeated
        #: ``_live_estimates`` sweeps inside one decision cascade reuse
        #: the same Eq. 1-3 evaluations.
        self._estimate_cache: dict[tuple, GroupEstimate | None] = {}
        self.estimate_cache_hits = 0
        self.estimate_cache_misses = 0
        # Feasibility floors are pure in the (immutable) job specs —
        # memoized for the life of the master, unlike the estimate
        # cache, which tracks live profiles.
        self._memory_floor_cache: dict[tuple[str, ...], int] = {}
        # §IV-B1: a moving-average publish is exactly when memoized
        # estimates and plans stop matching what Algorithm 1 would
        # recompute — wire the profiler's listener hook to both caches.
        self.profiler.add_listener(self._on_metrics_published)
        plan_cache = getattr(self.scheduler, "plan_cache", None)
        if plan_cache is not None:
            self.profiler.add_listener(plan_cache.invalidate_job)

    # ------------------------------------------------------------------ API

    def submit(self, spec: JobSpec) -> Job:
        """Accept a job into the queue (the Fig. 6 'waiting' state)."""
        if spec.job_id in self.jobs:
            raise SchedulingError(f"duplicate job id {spec.job_id}")
        job = Job(spec)
        self.jobs[spec.job_id] = job
        self._waiting.append(spec.job_id)
        self._pump()
        return job

    @property
    def all_done(self) -> bool:
        return all(job.is_done for job in self.jobs.values())

    def _instant(self, name: str, **args) -> None:
        """Emit a scheduler-decision instant on the master lane."""
        if self._trace is not None:
            self._trace.instant(name, cat="scheduler",
                                track=self._trace_track, args=args)

    def jobs_in_state(self, *states: JobState) -> list[Job]:
        return [job for job in self.jobs.values() if job.state in states]

    # --------------------------------------------------------- group hooks

    def on_iteration(self, job: Job, group: GroupRuntime) -> None:
        cycle = group.cycles[-1]
        self.profiler.record_iteration(job.job_id, cycle.t_cpu_measured,
                                       cycle.t_net_measured,
                                       group.n_machines)
        if job.state is JobState.PROFILING:
            count = self._profiling_iterations.get(job.job_id, 0) + 1
            self._profiling_iterations[job.job_id] = count
            if count >= self.config.scheduler.profiling_iterations:
                job.transition(JobState.PROFILED)
                self._on_job_profiled(job)

    def on_job_finished(self, job: Job, group: GroupRuntime) -> None:
        job.transition(JobState.FINISHED)
        job.finish_time = self.sim.now
        self._note_membership_change(group)
        if self._rebuild is None:
            self._handle_completion(group, job)
        self._check_rebuild()
        self._pump()

    def on_job_paused(self, job: Job, group: GroupRuntime) -> None:
        job.transition(JobState.PAUSED)
        job.migrations += 1
        if self._trace is not None:
            self._trace.counter("scheduler.migrations").add(1)
        self.migration_overhead_seconds += \
            self.cost_model.disk.checkpoint_seconds(
                self.cost_model.checkpoint_bytes(job.spec,
                                                 group.n_machines))
        self._note_membership_change(group)
        self._settle_routes()
        self._check_rebuild()
        self._pump()

    def on_job_failed(self, job: Job, group: GroupRuntime,
                      error: Exception) -> None:
        job.transition(JobState.FAILED)
        job.finish_time = self.sim.now
        self._note_membership_change(group)
        self._check_rebuild()
        self._pump()

    # ----------------------------------------------------------- the pump

    def _pump(self) -> None:
        """Advance every queue that may have become serviceable.

        Each stage may start a rebuild (a plan application); the stages
        after it must not hand out jobs or machines that the in-flight
        rebuild already claims, hence the re-checks.
        """
        if self._rebuild is not None:
            return
        self._cleanup_idle_groups()
        self._admit_paused_to_free_machines()
        if self._rebuild is not None:
            return
        self._assign_profiling()

    def _cleanup_idle_groups(self) -> None:
        reserved = set(self._pending_moves.values())
        for group_id in [gid for gid, g in self.groups.items()
                         if g.is_idle and gid not in reserved]:
            self._stop_group(group_id)

    def _stop_group(self, group_id: str) -> None:
        group = self.groups.pop(group_id)
        self._close_decision(group, self.sim.now)
        group.stop()
        self.group_audits.append(group.audit())
        self.finished_cycles.extend(group.cycles)
        self.recorder.group_stopped(group_id, self.sim.now)
        self.cluster.release_all(group_id)

    # -------------------------------------------------------- profiling path

    def _needs_profiling(self) -> list[Job]:
        waiting = [self.jobs[jid] for jid in self._waiting
                   if self.jobs[jid].state is JobState.WAITING]
        unmeasured = [job for job in
                      self.jobs_in_state(JobState.PAUSED)
                      if not self.profiler.has(job.job_id)]
        return waiting + unmeasured

    def _assign_profiling(self) -> None:
        """Deploy queued jobs for profiling (§IV-B1): into a group that
        is already profiling, else the group with the fewest machines,
        else a fresh bootstrap group on free machines."""
        for job in self._needs_profiling():
            target = self._profiling_target(job)
            if target is None:
                target = self._bootstrap_group(job)
            if target is None:
                break  # no capacity anywhere; wait for an event
            previous_state = job.state
            job.transition(JobState.PROFILING)
            self._profiling_iterations[job.job_id] = 0
            if not target.add_job(job, restore=False):
                # Memory probe passed but admission failed; undo.
                job.state = previous_state
                continue
            self._note_recovered(job)
            self._note_membership_change(target)
            if previous_state is JobState.WAITING:
                self._waiting.remove(job.job_id)

    def _profiling_target(self, job: Job) -> GroupRuntime | None:
        def profiling_count(group: GroupRuntime) -> int:
            return sum(1 for j in group.jobs()
                       if j.state is JobState.PROFILING)

        candidates = [g for g in self.groups.values()
                      if profiling_count(g) < _MAX_PROFILING_PER_GROUP
                      and g.can_admit(job)]
        if not candidates:
            return None
        already_profiling = [g for g in candidates if profiling_count(g)]
        pool = already_profiling if already_profiling else candidates
        return min(pool, key=lambda g: g.n_machines)

    def _bootstrap_group(self, job: Job) -> GroupRuntime | None:
        floor = self._memory_floor([job.job_id])
        wanted = max(_BOOTSTRAP_MACHINES, floor)
        if wanted > self.cluster.n_free:
            return None
        return self._start_group((), wanted)

    # ---------------------------------------------------- failure injection

    def inject_machine_failure(self, machine_id: int,
                               fault_record: FaultRecord | None = None,
                               ) -> list[str]:
        """A machine dies: the group on it crashes and every co-located
        job restarts from its last checkpoint (§VI fault tolerance).

        Returns the ids of the affected jobs.  The machine itself
        returns to service unless the cluster's failure ledger says
        otherwise (the legacy ``failure_times`` path models the paper's
        process-level failures: "the shared runtime catches all
        exceptions ... a machine/process failure may have an impact on
        all co-located jobs"; the :mod:`repro.faults` injector marks
        the machine failed first and repairs it after a downtime).
        """
        owner = self.cluster.owner_of(machine_id)
        group = self.groups.get(owner) if owner else None
        if self._trace is not None:
            self._instant("machine-crash", machine=machine_id,
                          group=group.group_id if group else None,
                          victims=group.n_jobs if group else 0)
        if group is None:
            self.failures_injected += 1
            return []  # free machine, or a non-group owner
        group_id = group.group_id
        self._close_decision(group, self.sim.now)
        victims = group.crash()
        self.failures_injected += 1
        self.group_audits.append(group.audit())
        self.finished_cycles.extend(group.cycles)
        del self.groups[group_id]
        self._estimate_cache.clear()
        self.recorder.group_stopped(group_id, self.sim.now)
        self.cluster.release_all(group_id)
        if self._rebuild is not None:
            self._rebuild.draining.discard(group_id)

        lost = self.config.execution.checkpoint_interval_iterations
        lost_total = 0
        rerun_seconds = 0.0
        for job in victims:
            # Restart from the last checkpoint: the in-flight progress
            # since then is gone.
            before = job.remaining_iterations
            job.remaining_iterations = min(
                job.spec.iterations, job.remaining_iterations + lost)
            lost_total += job.remaining_iterations - before
            self.rolled_back_iterations[job.job_id] = (
                self.rolled_back_iterations.get(job.job_id, 0)
                + job.remaining_iterations - before)
            if self.profiler.has(job.job_id):
                metrics = self.profiler.get(job.job_id)
                rerun_seconds += ((job.remaining_iterations - before)
                                  * metrics.t_iteration_at(
                                      group.n_machines))
            if job.state is not JobState.PAUSED:
                job.transition(JobState.PAUSED)
            job.migrations += 1
            self._pending_moves.pop(job.job_id, None)
        if self.fault_log is not None and fault_record is not None:
            fault_record.group_id = group_id
            self.fault_log.jobs_displaced(
                fault_record, at=self.sim.now,
                job_ids=tuple(job.job_id for job in victims),
                lost_iterations=lost_total,
                rerun_work_seconds=rerun_seconds)
        self._check_rebuild()
        self._pump()
        return [job.job_id for job in victims]

    def on_machine_failure(self, machine_id: int,
                           fault_record: FaultRecord | None = None,
                           ) -> list[str]:
        """Heartbeat-loss entry point (called by the health monitor).

        The crash path is the same as direct injection; detection
        latency has already elapsed on the simulator clock, so recovery
        measurements naturally include it.
        """
        return self.inject_machine_failure(machine_id,
                                           fault_record=fault_record)

    def machine_repaired(self, machine_id: int) -> None:
        """A failed machine rejoined the pool: admit waiting work."""
        del machine_id  # the pump re-reads the free pool itself
        self._check_rebuild()
        self._pump()

    def _note_recovered(self, job: Job) -> None:
        """Tell the fault log a displaced job is executing again."""
        if self.fault_log is not None:
            self.fault_log.job_recovered(job.job_id, self.sim.now)

    # ------------------------------------------- periodic improvement check

    def periodic_check(self) -> None:
        """Re-evaluate the whole grouping; regroup only when the
        predicted utilization gain clears the 5% threshold (§IV-B2's
        "constantly seeks for higher resource utilization").

        Groups currently profiling a new job are left alone — pausing a
        half-profiled job would only churn (§IV-B1 wants profiling to
        finish undisturbed).
        """
        if self._rebuild is not None or self._pending_moves:
            return
        settle = 2.0 * self.config.scheduler.reschedule_check_seconds
        if self.sim.now - self._last_apply_time < settle:
            return  # let the previous regrouping settle before re-judging
        stable = {gid: g for gid, g in self.groups.items()
                  if not any(j.state is JobState.PROFILING
                             for j in g.jobs())}
        budget = (sum(g.n_machines for g in stable.values())
                  + self.cluster.n_free)
        if budget < 1:
            return
        pool = [self.profiler.get(j.job_id)
                for g in stable.values() for j in g.jobs()
                if self.profiler.has(j.job_id)]
        pool += self._paused_metrics()
        if not pool:
            return
        plan = self.planner.plan(pool, budget)
        if plan is None:
            return
        current_estimates = []
        for group in stable.values():
            metrics = [self.profiler.get(j.job_id) for j in group.jobs()
                       if self.profiler.has(j.job_id)]
            if metrics:
                current_estimates.append(self.perf_model.estimate_group(
                    metrics, group.n_machines))
        current = self.perf_model.score(
            self.perf_model.cluster_utilization(current_estimates,
                                                total_machines=budget)) \
            if current_estimates else 0.0
        threshold = self.config.scheduler.regroup_benefit_threshold
        triggered = plan.score > current * (1.0 + threshold)
        if self._trace is not None:
            stats = getattr(self.scheduler, "last_stats", None)
            self._instant(
                "regroup-check", current_score=round(current, 4),
                planned_score=round(plan.score, 4), threshold=threshold,
                triggered=triggered, plan_groups=len(plan.groups),
                plan_jobs=len(plan.scheduled_job_ids),
                prefixes_evaluated=(stats.n_prefixes_evaluated
                                    if stats is not None else None),
                cache_hits=(stats.cache_hits
                            if stats is not None else None),
                cache_misses=(stats.cache_misses
                              if stats is not None else None),
                warm_start_reuses=(stats.warm_start_reuses
                                   if stats is not None else None),
                fast_path=(stats.fast_path
                           if stats is not None else None),
                patched_completions=self.fast_path_replacements,
                escalated_completions=self.full_path_regroups)
        if triggered:
            self._apply_plan(plan, scope_group_ids=set(stable))

    # ------------------------------------------------ profiled-job decision

    def _on_job_profiled(self, job: Job) -> None:
        """The §IV-B4 arrival rule, generalized to {stay, move, new
        group, wait} chosen by predicted cluster utilization."""
        if self._rebuild is not None:
            return  # the in-flight regrouping will place everyone
        metrics = self.profiler.get(job.job_id)
        current_group = self.groups.get(job.group_id or "")

        options: list[tuple[float, str, str | None]] = []
        options.append((self._score_with(job, placed_in=job.group_id),
                        "stay", job.group_id))
        for group_id, group in self.groups.items():
            if group_id == job.group_id or not group.can_admit(job):
                continue
            options.append((self._score_with(job, placed_in=group_id),
                            "move", group_id))
        new_m = self._balanced_machines(metrics)
        if new_m is not None:
            options.append((self._score_with(job, new_group_m=new_m),
                            "new", None))
        options.append((self._score_with(job, placed_in=None),
                        "wait", None))

        options.sort(key=lambda option: -option[0])
        score, action, target_id = options[0]
        if self._trace is not None:
            self._instant("placement", job=job.job_id, action=action,
                          target=target_id, score=round(score, 4),
                          n_options=len(options))
        if action == "stay":
            job.transition(JobState.RUNNING)
        elif action == "move":
            self._pending_moves[job.job_id] = target_id  # type: ignore[arg-type]
            assert current_group is not None
            current_group.request_pause(job.job_id)
        elif action == "new":
            group = self._start_group((), new_m)  # type: ignore[arg-type]
            self._pending_moves[job.job_id] = group.group_id
            assert current_group is not None
            current_group.request_pause(job.job_id)
        else:  # wait
            assert current_group is not None
            current_group.request_pause(job.job_id)

    def _balanced_machines(self, metrics: JobMetrics) -> int | None:
        """Machine count balancing one job's CPU and network use, capped
        by free machines and floored by memory feasibility."""
        free = self.cluster.n_free
        if free < 1:
            return None
        floor = self._memory_floor([metrics.job_id])
        if floor > free:
            return None
        balanced = max(1, round(metrics.cpu_work / max(metrics.t_net,
                                                       1e-9)))
        return min(free, max(floor, min(balanced, self.cluster.size)))

    # ------------------------------------------------- completion handling

    def _handle_completion(self, group: GroupRuntime,
                           finished: Job) -> None:
        """§IV-B4 case (2): repair the group of a finished job.

        The similar-job / similar-bundle replacement is a *plan patch*:
        the candidate splice is re-scored locally (patched group +
        untouched rest of the cluster) and accepted only while the
        predicted utilization stays within the 5% regroup threshold of
        what the departed job delivered — otherwise the repair
        escalates to the full scheduling algorithm.
        """
        threshold = self.config.scheduler.similarity_threshold
        if not self.profiler.has(finished.job_id):
            return
        target = self.profiler.get(finished.job_id)
        m = group.n_machines
        candidates = self._paused_metrics()

        replacement = find_similar_job(candidates, target, m, threshold)
        if replacement is not None:
            job = self.jobs[replacement.job_id]
            if group.can_admit(job) \
                    and self._patch_accepts(group, target, [replacement],
                                            kind="similar"):
                self._resume_into(job, group)
                self.fast_path_replacements += 1
                return

        bundle = find_similar_bundle(candidates, target, m, threshold)
        if bundle is not None:
            jobs = [self.jobs[item.job_id] for item in bundle]
            if all(group.can_admit(job) for job in jobs) \
                    and self._patch_accepts(group, target, bundle,
                                            kind="bundle"):
                admitted = True
                for job in jobs:
                    if not self._resume_into(job, group):
                        admitted = False
                        break
                if admitted:
                    self.fast_path_replacements += 1
                    return

        self.full_path_regroups += 1
        self._escalate(group)

    def _patch_accepts(self, group: GroupRuntime, target: JobMetrics,
                       replacements: Sequence[JobMetrics],
                       kind: str) -> bool:
        """Score the §IV-B4 splice against what the departed job gave.

        ``before`` re-seats the finished job (``target``) among the
        survivors; ``after`` seats the proposed replacements instead.
        The rest of the cluster is identical on both sides, so the
        comparison isolates the splice.  Falling short by more than the
        regroup threshold means the patched group would leave enough
        utilization on the table that full Algorithm 1 is warranted.
        """
        survivors = [self.profiler.get(j.job_id) for j in group.jobs()
                     if self.profiler.has(j.job_id)]
        rest = self._live_estimates(
            exclude_groups=(group.group_id,))
        m = group.n_machines
        before = self._score_estimates(
            rest + [self.perf_model.estimate_group(survivors + [target],
                                                   m)])
        after = self._score_estimates(
            rest + [self.perf_model.estimate_group(
                survivors + list(replacements), m)])
        threshold = self.config.scheduler.regroup_benefit_threshold
        accepted = after >= before * (1.0 - threshold)
        if self._trace is not None:
            self._instant(
                "plan-patch", group=group.group_id,
                finished=target.job_id, kind=kind,
                replacements=[item.job_id for item in replacements],
                before=round(before, 4), after=round(after, 4),
                accepted=accepted)
        return accepted

    def _escalate(self, anchor: GroupRuntime) -> None:
        """§IV-B4 case (2) escalation: regroup over a growing scope.

        Scopes grow from the repaired group outward through the groups
        with the fewest jobs; each candidate plan is scored over the
        whole cluster and the smallest-scope plan wins unless a larger
        one beats it by more than the 5% preference.
        """
        paused = self._paused_metrics()
        others = sorted((g for g in self.groups.values()
                         if g.group_id != anchor.group_id),
                        key=lambda g: g.n_jobs)
        scopes: list[list[GroupRuntime]] = []
        scope: list[GroupRuntime] = [anchor]
        scopes.append(list(scope))
        for group in others[:_MAX_ESCALATION_GROUPS]:
            scope.append(group)
            scopes.append(list(scope))

        evaluated: list[tuple[int, float, SchedulePlan,
                              set[str]]] = []
        for scope_groups in scopes:
            scope_ids = {g.group_id for g in scope_groups}
            scope_jobs = [self.profiler.get(j.job_id)
                          for g in scope_groups for j in g.jobs()
                          if self.profiler.has(j.job_id)
                          and j.state is not JobState.PROFILING]
            pool = scope_jobs + paused
            if not pool:
                continue
            budget = (sum(g.n_machines for g in scope_groups)
                      + self.cluster.n_free)
            if budget < 1:
                continue
            plan = self.planner.plan(pool, budget)
            if plan is None:
                continue
            score = self._score_plan_with_rest(plan, exclude=scope_ids)
            evaluated.append((len(pool), score, plan, scope_ids))

        if not evaluated:
            return
        chosen_index = prefer_fewer_jobs(
            [(n, score) for n, score, _, _ in evaluated],
            preference=self.config.scheduler.fewer_jobs_preference)
        assert chosen_index is not None
        _, score, plan, scope_ids = evaluated[chosen_index]
        current = self._score_current()
        threshold = self.config.scheduler.regroup_benefit_threshold
        if score <= current * (1.0 + threshold):
            return  # expected benefit below 5% of U: skip regrouping
        self._apply_plan(plan, scope_group_ids=scope_ids)

    # --------------------------------------------------- waiting-pool drain

    def _admit_paused_to_free_machines(self) -> None:
        """Build new groups for paused jobs when machines are idle."""
        free = self.cluster.n_free
        paused = self._paused_metrics()
        if free < 1 or not paused:
            return
        plan = self.planner.plan(paused, free)
        if plan is None:
            return
        for group_plan in plan.groups:
            jobs = [self.jobs[jid] for jid in group_plan.job_ids
                    if not self.jobs[jid].is_done]
            if not jobs or group_plan.n_machines > self.cluster.n_free:
                continue
            group = self._start_group((), group_plan.n_machines)
            for job in jobs:
                self._resume_into(job, group)

    # ------------------------------------------------------ plan application

    def _apply_plan(self, plan: SchedulePlan,
                    scope_group_ids: set[str]) -> None:
        """Migrate from the current grouping (within scope) to ``plan``.

        Plan groups are matched to live groups with the same machine
        count by job overlap; matched groups stay alive and only the
        differing jobs move.  Unmatched live groups drain fully; their
        machines then form the plan's remaining groups.
        """
        if self._trace is not None:
            self._trace.counter("scheduler.regroups").add(1)
            self._instant("apply-plan", n_groups=len(plan.groups),
                          n_jobs=len(plan.scheduled_job_ids),
                          machines=plan.machines_used,
                          score=round(plan.score, 4))
        self._last_apply_time = self.sim.now
        # Sorted, not set order: the greedy matching below breaks
        # overlap ties by iteration order, so hash-order iteration
        # would make regroup migrations differ across processes.
        live = {gid: self.groups[gid] for gid in sorted(scope_group_ids)
                if gid in self.groups}

        # Greedy max-overlap matching among same-sized groups.
        pairs = []
        for index, group_plan in enumerate(plan.groups):
            wanted = set(group_plan.job_ids)
            for gid, group in live.items():
                if group.n_machines != group_plan.n_machines:
                    continue
                overlap = len(wanted & set(group.job_ids))
                if overlap > 0:
                    pairs.append((overlap, index, gid))
        pairs.sort(reverse=True)
        matched_plan: dict[int, str] = {}
        matched_live: set[str] = set()
        for _overlap, index, gid in pairs:
            if index in matched_plan or gid in matched_live:
                continue
            matched_plan[index] = gid
            matched_live.add(gid)

        # Routing table: where every planned job must end up.
        slots: list[tuple[str, tuple[str, ...], int]] = []
        routes: dict[str, str] = {}
        for index, group_plan in enumerate(plan.groups):
            target = matched_plan.get(index)
            if target is None:
                target = f"slot:{index}"
                slots.append((target, group_plan.job_ids,
                              group_plan.n_machines))
            for job_id in group_plan.job_ids:
                routes[job_id] = target

        # Pause what must move; drain unmatched groups entirely.
        draining: set[str] = set()
        for gid, group in live.items():
            if gid in matched_live:
                for job in group.jobs():
                    if job.state is JobState.PROFILING:
                        continue  # let profiling finish undisturbed
                    if routes.get(job.job_id) != gid:
                        group.request_pause(job.job_id)
            else:
                group.request_pause_all()
                draining.add(gid)

        for job_id, target in routes.items():
            job = self.jobs.get(job_id)
            if job is None or job.is_done or job.group_id == target:
                continue
            self._pending_moves[job_id] = target
            if job.group_id is not None:
                holder = self.groups.get(job.group_id)
                if holder is not None:
                    holder.request_pause(job_id)

        self._rebuild = _Rebuild(draining=draining, slots=slots)
        self._settle_routes()
        self._check_rebuild()

    def _check_rebuild(self) -> None:
        """Once the drain finishes, build the plan's fresh groups."""
        rebuild = self._rebuild
        if rebuild is None:
            return
        for group_id in list(rebuild.draining):
            group = self.groups.get(group_id)
            if group is None:
                rebuild.draining.discard(group_id)
            elif group.is_idle:
                self._stop_group(group_id)
                rebuild.draining.discard(group_id)
        # Eagerly materialize any slot whose machines are already free:
        # waiting for the whole drain would leave the cluster idle for
        # a full iteration of the slowest draining group.
        remaining_slots = []
        for slot, job_ids, n_machines in rebuild.slots:
            if rebuild.draining and n_machines > self.cluster.n_free:
                remaining_slots.append((slot, job_ids, n_machines))
                continue
            n_machines = min(n_machines, self.cluster.n_free)
            alive = [jid for jid in job_ids
                     if jid in self.jobs and not self.jobs[jid].is_done]
            if n_machines < 1 or not alive:
                for jid in job_ids:
                    if self._pending_moves.get(jid) == slot:
                        del self._pending_moves[jid]
                continue
            group = self._start_group((), n_machines)
            for job_id, target in list(self._pending_moves.items()):
                if target == slot:
                    self._pending_moves[job_id] = group.group_id
        rebuild.slots = remaining_slots
        if rebuild.draining:
            self._settle_routes()
            return
        self._rebuild = None
        self._settle_routes()
        self._pump()

    def _settle_routes(self) -> None:
        """Resume every paused job whose move target exists and fits."""
        for job_id, target in list(self._pending_moves.items()):
            job = self.jobs.get(job_id)
            if job is None or job.is_done:
                self._pending_moves.pop(job_id, None)
                continue
            if job.state is not JobState.PAUSED:
                continue  # still draining out of its old group
            group = self.groups.get(target)
            if group is None:
                continue  # target slot not created yet
            if group.can_admit(job):
                self._resume_into(job, group)
            elif group.pause_pending_count == 0:
                # Nothing will leave the target to make room: the route
                # is stale, return the job to the general waiting pool.
                self._pending_moves.pop(job_id, None)

    def _resume_into(self, job: Job, group: GroupRuntime) -> bool:
        """Restore a paused/profiled job into a group as RUNNING."""
        if job.is_done or job.group_id is not None:
            # A stale plan can reference a job that finished or was
            # placed by a more recent decision; leave it where it is.
            return False
        if not group.can_admit(job):
            # Central memory gate: plans and replacement bundles are
            # admitted job by job, and each admission shrinks the
            # group's headroom — a stale or optimistic decision must
            # not over-commit the group (the job stays paused and is
            # picked up by a later pump).
            return False
        restore = job.migrations > 0
        if not group.add_job(job, restore=restore):
            return False
        self._pending_moves.pop(job.job_id, None)
        if job.state is not JobState.RUNNING:
            job.transition(JobState.RUNNING)
        self._note_recovered(job)
        if restore:
            self.migration_overhead_seconds += \
                self.cost_model.disk.restore_seconds(
                    self.cost_model.checkpoint_bytes(job.spec,
                                                     group.n_machines))
        self._note_membership_change(group)
        return True

    def _start_group(self, job_ids: Sequence[str],
                     n_machines: int) -> GroupRuntime:
        group_id = f"g{next(self._group_ids)}"
        machine_ids = self.cluster.allocate(n_machines, group_id)
        group = GroupRuntime(self.sim, group_id, machine_ids,
                             ExecutionMode.HARMONY, self.cost_model,
                             self.config, self.streams, hooks=self)
        self.groups[group_id] = group
        self.recorder.group_started(group_id, n_machines, self.sim.now,
                                    group.cpu, group.net)
        for job_id in job_ids:
            self._resume_into(self.jobs[job_id], group)
        return group

    # ------------------------------------------------------ scoring helpers

    def _schedulable_metrics(self) -> list[JobMetrics]:
        return [self.profiler.get(job.job_id)
                for job in self.jobs.values()
                if job.is_schedulable and self.profiler.has(job.job_id)]

    def _paused_metrics(self) -> list[JobMetrics]:
        return [self.profiler.get(job.job_id)
                for job in self.jobs_in_state(JobState.PAUSED)
                if self.profiler.has(job.job_id)]

    def _on_metrics_published(self, job_id: str) -> None:
        """Profiler listener: drop estimates that may mention the job."""
        del job_id  # any group containing it is suspect; clear all
        self._estimate_cache.clear()

    def _group_estimate(self, group: GroupRuntime,
                        exclude_job: str | None = None) -> \
            GroupEstimate | None:
        """One group's Eq. 1-3 estimate, memoized between invalidations.

        The placement-option sweep of ``_on_job_profiled`` calls
        ``_live_estimates`` once per candidate group, re-estimating
        every *other* group each time — O(G²) estimate evaluations per
        decision.  Entries stay valid until the profiler publishes or a
        membership changes (both clear the cache), so one cascade pays
        each group once.
        """
        key = (group.group_id, exclude_job)
        if key in self._estimate_cache:
            self.estimate_cache_hits += 1
            return self._estimate_cache[key]
        self.estimate_cache_misses += 1
        metrics = [self.profiler.get(j.job_id) for j in group.jobs()
                   if self.profiler.has(j.job_id)
                   and j.job_id != exclude_job]
        estimate = self.perf_model.estimate_group(
            metrics, group.n_machines) if metrics else None
        self._estimate_cache[key] = estimate
        return estimate

    def _live_estimates(self, exclude_job: str | None = None,
                        exclude_groups: Sequence[str] = ()) -> \
            list[GroupEstimate]:
        estimates = []
        for group_id, group in self.groups.items():
            if group_id in exclude_groups:
                continue
            estimate = self._group_estimate(group, exclude_job)
            if estimate is not None:
                estimates.append(estimate)
        return estimates

    def _score_estimates(self, estimates: Sequence[GroupEstimate]) -> float:
        if not estimates:
            return 0.0
        utilization = self.perf_model.cluster_utilization(
            estimates, total_machines=self.cluster.size)
        return self.perf_model.score(utilization)

    def _score_current(self) -> float:
        return self._score_estimates(self._live_estimates())

    def _score_with(self, job: Job, placed_in: str | None = None,
                    new_group_m: int | None = None) -> float:
        """Predicted cluster score with ``job`` placed as specified."""
        metrics = self.profiler.get(job.job_id)
        if new_group_m is not None:
            estimates = self._live_estimates(exclude_job=job.job_id)
            estimates.append(self.perf_model.estimate_group([metrics],
                                                            new_group_m))
        elif placed_in is not None:
            group = self.groups.get(placed_in)
            if group is None:
                return float("-inf")
            others = [self.profiler.get(j.job_id) for j in group.jobs()
                      if self.profiler.has(j.job_id)
                      and j.job_id != job.job_id]
            estimates = self._live_estimates(exclude_job=job.job_id,
                                             exclude_groups=(placed_in,))
            estimates.append(self.perf_model.estimate_group(
                others + [metrics], group.n_machines))
        else:
            estimates = self._live_estimates(exclude_job=job.job_id)
        return self._score_estimates(estimates)

    def _score_plan_with_rest(self, plan: SchedulePlan,
                              exclude: set[str]) -> float:
        estimates = self._live_estimates(
            exclude_groups=tuple(sorted(exclude)))
        estimates.extend(group.estimate for group in plan.groups)
        return self._score_estimates(estimates)

    def _memory_floor(self, job_ids: Sequence[str]) -> int:
        """Smallest machine count where the given jobs co-locate near the
        target memory pressure, assuming maximal input spill (the
        scheduler's feasibility view, based on sampled sizes)."""
        key = tuple(job_ids)
        cached = self._memory_floor_cache.get(key)
        if cached is not None:
            return cached
        result = self._memory_floor_uncached(job_ids)
        self._memory_floor_cache[key] = result
        return result

    def _memory_floor_uncached(self, job_ids: Sequence[str]) -> int:
        # Pure in the job specs: sizes, the cost model, and the config
        # never change after submission, so the linear scan (a
        # resident_bytes sum per candidate m) runs once per job set.
        budget = (self.cost_model.spec.usable_memory_bytes
                  * self.config.memory.target_pressure)
        spill = self.config.memory.spill_enabled
        alpha = 1.0 if spill else 0.0
        fixed = self.config.memory.fixed_alpha
        if fixed is not None:
            alpha = fixed
        specs = [self.jobs[jid].spec for jid in job_ids]
        for m in range(1, self.cluster.size + 1):
            need = sum(self.cost_model.resident_bytes(spec, m, alpha=alpha)
                       for spec in specs)
            if need <= budget:
                return m
        if spill:
            # §IV-C fallback: the model data itself can be spilled when
            # input spill is not enough (essential under all-reduce,
            # where every machine holds a full model replica).
            for m in range(1, self.cluster.size + 1):
                need = sum(self.cost_model.resident_bytes(
                    spec, m, alpha=1.0, model_spilled=True)
                    for spec in specs)
                if need <= budget:
                    return m
        return self.cluster.size + 1  # cannot be placed at all

    # ------------------------------------------------- decision bookkeeping

    def _note_membership_change(self, group: GroupRuntime) -> None:
        """Close the group's open prediction epoch and start a new one."""
        now = self.sim.now
        self._estimate_cache.clear()
        self._close_decision(group, now)
        metrics = [self.profiler.get(j.job_id) for j in group.jobs()
                   if self.profiler.has(j.job_id)]
        if not metrics or len(metrics) != group.n_jobs:
            # A job without metrics (still profiling) consumes resources
            # the model cannot see; such epochs are not comparable.
            return
        estimate = self.perf_model.estimate_group(metrics,
                                                  group.n_machines)
        self.group_shape_log.append((now, group.n_machines, len(metrics)))
        record = DecisionRecord(
            time=now, group_id=group.group_id,
            n_machines=group.n_machines,
            job_ids=estimate.job_ids,
            predicted_t_group=estimate.t_group_iteration,
            predicted_u_cpu=estimate.utilization.cpu,
            predicted_u_net=estimate.utilization.net)
        self.recorder.decisions.append(record)
        self._open_decisions[group.group_id] = (
            len(self.recorder.decisions) - 1, now)

    def _close_decision(self, group: GroupRuntime, t_end: float) -> None:
        open_record = self._open_decisions.pop(group.group_id, None)
        if open_record is None:
            return
        index, t_start = open_record
        record = self.recorder.decisions[index]
        # Steady-state cycles only: drop each job's first cycle of the
        # epoch (pipeline fill after a membership change stretches it).
        cycles = []
        seen_once: set[str] = set()
        for cycle in sorted((c for c in group.cycles
                             if t_start <= c.finished_at <= t_end
                             and c.duration > 0),
                            key=lambda c: c.finished_at):
            if cycle.job_id in seen_once:
                cycles.append(cycle)
            else:
                seen_once.add(cycle.job_id)
        if len(cycles) >= 2 * max(1, len(record.job_ids)):
            record.measured_t_group = (sum(c.duration for c in cycles)
                                       / len(cycles))
        if t_end - t_start > 0:
            record.measured_u_cpu = busy_fraction(group.cpu, t_start,
                                                  t_end)
            record.measured_u_net = busy_fraction(group.net, t_start,
                                                  t_end)
        if self._trace is not None:
            self._instant(
                "epoch-close", group=group.group_id,
                n_machines=record.n_machines, n_jobs=len(record.job_ids),
                predicted_t_group=round(record.predicted_t_group, 3),
                measured_t_group=(
                    None if record.measured_t_group is None
                    else round(record.measured_t_group, 3)),
                predicted_u_cpu=round(record.predicted_u_cpu, 4),
                measured_u_cpu=(
                    None if record.measured_u_cpu is None
                    else round(record.measured_u_cpu, 4)))
