"""Differential oracles: simulator vs Eqs. 1-4, Harmony vs exhaustive.

Two independent ground truths bound the simulator and the scheduler:

* :func:`perfmodel_cases` builds exact :class:`JobMetrics` straight
  from the cost model (no profiling noise), predicts the group
  iteration time with Eq. 1, and *measures* the same group in the
  §IV-A execution engine with jitter and barrier overhead switched
  off.  The two must agree within a modest tolerance — the residual
  is real pipelining (the secondary COMM slot overlaps work Eq. 1
  serializes), not noise.
* :func:`oracle_cases` runs Harmony's greedy Algorithm 1 and the §V-F
  exhaustive-search oracle on the same profiled pools and compares the
  predicted cluster-utilization scores.  Harmony must stay within a
  bounded gap of the ground truth (Fig. 14 reports ~95% agreement);
  the gap is one-sided because the two searches order admissions
  differently, so Harmony occasionally *beats* the oracle's
  prefix-restricted search.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.check.oracle import deterministic_config, exact_metrics
from repro.core.perfmodel import PerfModel
from repro.core.profiler import JobMetrics
from repro.core.scheduler import HarmonyScheduler
from repro.sim.rand import RandomStreams
from repro.workloads.costmodel import CostModel
from repro.workloads.generator import WorkloadGenerator

__all__ = [
    "exact_metrics",  # re-exported from repro.check.oracle
    "perfmodel_cases", "oracle_cases", "run_differential",
    "PerfModelCase", "OracleCase", "DifferentialReport",
]

#: Per-case / mean relative-error bounds for simulator vs Eq. 1.
#: Empirical worst cases over 120 seeded instances: 10.9% / 0.7% (the
#: residual is secondary-COMM pipelining that Eq. 1 serializes).
PERFMODEL_CASE_TOL = 0.20
PERFMODEL_MEAN_TOL = 0.05
#: Per-case / mean bounds for the Harmony-vs-oracle score gap.
#: Empirical worst cases over 120 seeded instances: 24.7% / 3.6%.
ORACLE_CASE_GAP = 0.30
ORACLE_MEAN_GAP = 0.08


@dataclass(frozen=True)
class PerfModelCase:
    """One simulator-vs-Eq.1 comparison."""

    job_ids: tuple[str, ...]
    m: int
    predicted: float
    measured: float

    @property
    def rel_error(self) -> float:
        if self.predicted <= 0:
            return 0.0
        return abs(self.measured - self.predicted) / self.predicted


@dataclass(frozen=True)
class OracleCase:
    """One Harmony-vs-exhaustive-search comparison."""

    n_jobs: int
    n_machines: int
    harmony_score: float
    oracle_score: float

    @property
    def gap(self) -> float:
        """How far Harmony's plan falls short of the ground truth
        (clamped at 0: beating the oracle's restricted search is
        fine)."""
        if self.oracle_score <= 0:
            return 0.0
        return max(0.0, (self.oracle_score - self.harmony_score)
                   / self.oracle_score)


def perfmodel_cases(n_cases: int = 20, seed: int = 2021,
                    iterations: int = 8) -> list[PerfModelCase]:
    """Seeded simulator-vs-Eq.1 instances (``n_cases`` of them)."""
    from repro.experiments.common import run_single_group

    rng = RandomStreams(seed).spawn("check-differential").stream(
        "perfmodel")
    config = deterministic_config(seed)
    cost_model = CostModel(config.machine)
    pool = WorkloadGenerator(seed).base_workload(hyper_params_per_pair=1)
    budget = cost_model.spec.usable_memory_bytes * 0.70

    cases: list[PerfModelCase] = []
    while len(cases) < n_cases:
        n_jobs = int(rng.integers(1, 4))
        m = int(rng.integers(6, 17))
        chosen = [pool[i] for i in rng.choice(len(pool), size=n_jobs,
                                              replace=False)]
        # Keep the group below the GC onset with spill disabled, so
        # memory pressure cannot inflate COMP beyond the model.
        resident = sum(cost_model.resident_bytes(spec, m, alpha=0.0)
                       for spec in chosen)
        if resident > budget:
            continue
        specs = [replace(spec, iterations=iterations, submit_time=0.0)
                 for spec in chosen]
        metrics = [exact_metrics(cost_model, spec, m) for spec in specs]
        predicted = PerfModel().estimate_group(
            metrics, m).t_group_iteration
        result = run_single_group(specs, m, config=config)
        cases.append(PerfModelCase(
            job_ids=tuple(spec.job_id for spec in specs), m=m,
            predicted=predicted,
            measured=result.pacing_cycle_seconds()))
    return cases


def oracle_cases(n_cases: int = 20, seed: int = 2021) -> \
        list[OracleCase]:
    """Seeded Harmony-vs-oracle instances (``n_cases`` of them)."""
    from repro.baselines.oracle import OracleScheduler

    rng = RandomStreams(seed).spawn("check-differential").stream(
        "oracle")
    cases: list[OracleCase] = []
    for _ in range(n_cases):
        n_jobs = int(rng.integers(4, 8))
        n_machines = int(rng.integers(6, 13))
        pool = [JobMetrics(job_id=f"j{i}",
                           cpu_work=float(rng.uniform(40.0, 600.0)),
                           t_net=float(rng.uniform(5.0, 60.0)),
                           m_observed=16)
                for i in range(n_jobs)]
        harmony = HarmonyScheduler().schedule(pool, n_machines)
        oracle = OracleScheduler().schedule(pool, n_machines)
        cases.append(OracleCase(
            n_jobs=n_jobs, n_machines=n_machines,
            harmony_score=harmony.score if harmony is not None else 0.0,
            oracle_score=oracle.score if oracle is not None else 0.0))
    return cases


@dataclass(frozen=True)
class DifferentialReport:
    """Aggregated differential results with pass/fail verdicts."""

    perfmodel: tuple[PerfModelCase, ...]
    oracle: tuple[OracleCase, ...]

    @property
    def perfmodel_max_error(self) -> float:
        return max((c.rel_error for c in self.perfmodel), default=0.0)

    @property
    def perfmodel_mean_error(self) -> float:
        if not self.perfmodel:
            return 0.0
        return float(np.mean([c.rel_error for c in self.perfmodel]))

    @property
    def oracle_max_gap(self) -> float:
        return max((c.gap for c in self.oracle), default=0.0)

    @property
    def oracle_mean_gap(self) -> float:
        if not self.oracle:
            return 0.0
        return float(np.mean([c.gap for c in self.oracle]))

    @property
    def ok(self) -> bool:
        return not self.failures()

    def failures(self) -> list[str]:
        problems = []
        if self.perfmodel_max_error > PERFMODEL_CASE_TOL:
            problems.append(
                f"simulator vs Eq.1: worst case off by "
                f"{self.perfmodel_max_error:.1%} "
                f"(limit {PERFMODEL_CASE_TOL:.0%})")
        if self.perfmodel_mean_error > PERFMODEL_MEAN_TOL:
            problems.append(
                f"simulator vs Eq.1: mean error "
                f"{self.perfmodel_mean_error:.1%} "
                f"(limit {PERFMODEL_MEAN_TOL:.0%})")
        if self.oracle_max_gap > ORACLE_CASE_GAP:
            problems.append(
                f"Harmony vs oracle: worst gap {self.oracle_max_gap:.1%} "
                f"(limit {ORACLE_CASE_GAP:.0%})")
        if self.oracle_mean_gap > ORACLE_MEAN_GAP:
            problems.append(
                f"Harmony vs oracle: mean gap {self.oracle_mean_gap:.1%} "
                f"(limit {ORACLE_MEAN_GAP:.0%})")
        return problems

    def summary(self) -> str:
        return (f"differential: {len(self.perfmodel)} Eq.1 cases "
                f"(mean {self.perfmodel_mean_error:.1%}, max "
                f"{self.perfmodel_max_error:.1%}); {len(self.oracle)} "
                f"oracle cases (mean gap {self.oracle_mean_gap:.1%}, "
                f"max {self.oracle_max_gap:.1%})")


def run_differential(n_cases: int = 20,
                     seed: int = 2021) -> DifferentialReport:
    """Run both differential suites and aggregate the verdict."""
    return DifferentialReport(
        perfmodel=tuple(perfmodel_cases(n_cases, seed)),
        oracle=tuple(oracle_cases(n_cases, seed)))
