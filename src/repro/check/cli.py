"""``python -m repro check`` — the seeded correctness fuzzer.

Runs generated scenarios through the full simulator with every
run-level invariant enforced, and optionally the differential suites.
Exits non-zero on any violation, printing the single-line replay
command for each failing seed.

Usage::

    python -m repro check --seed 2021
    python -m repro check --seed 1 --seed 2 --seed 3
    python -m repro check --rotating 417        # CI run-number seed
    python -m repro check --seed 7 --differential
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.check.differential import run_differential
from repro.check.invariants import InvariantChecker
from repro.check.scenarios import ScenarioGenerator, run_checked

#: Seeds CI always runs (stable regression net; see check-fuzz job).
DEFAULT_SEEDS = (2021, 7, 42)


def _rotating_seed(token: int) -> int:
    """Map a CI run number onto a fresh scenario seed, away from the
    fixed list so rotation actually explores new ground."""
    return 100_000 + (token * 2654435761) % 899_999


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro check",
        description="Run seeded scenarios with run-level invariants "
                    "enforced.")
    parser.add_argument("--seed", type=int, action="append",
                        help="scenario seed (repeatable); defaults to "
                             f"{list(DEFAULT_SEEDS)}")
    parser.add_argument("--rotating", type=int, default=None,
                        metavar="N",
                        help="also run one rotating seed derived from "
                             "N (e.g. the CI run number)")
    parser.add_argument("--differential", action="store_true",
                        help="also run the simulator-vs-Eq.1 and "
                             "Harmony-vs-oracle differential suites")
    parser.add_argument("--cases", type=int, default=20,
                        help="instances per differential suite "
                             "(default 20)")
    args = parser.parse_args(argv)

    seeds = list(args.seed) if args.seed else list(DEFAULT_SEEDS)
    if args.rotating is not None:
        seeds.append(_rotating_seed(args.rotating))

    checker = InvariantChecker()
    failures = 0
    for seed in seeds:
        scenario = ScenarioGenerator(seed).generate()
        started = time.perf_counter()
        checked = run_checked(scenario, checker)
        elapsed = time.perf_counter() - started
        print(f"{checked.report()}  [{elapsed:.1f}s]")
        if not checked.ok:
            failures += 1

    if args.differential:
        report = run_differential(n_cases=args.cases,
                                  seed=seeds[0])
        print(report.summary())
        for problem in report.failures():
            print(f"FAIL {problem}")
            failures += 1

    if failures:
        print(f"\n{failures} failure(s); replay any seed with "
              f"PYTHONPATH=src python -m repro check --seed N",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - python -m repro.check.cli
    raise SystemExit(main())
