"""Closed-form oracles shared by the checker and the fast path.

Extracted from :mod:`repro.check.differential` so the same Eq. 1
arithmetic backs both roles:

* the *checker* role — :func:`exact_metrics` + ``PerfModel`` predict a
  group's iteration time from the cost model alone, and the differential
  suite compares the prediction against the simulated engine; and
* the *fast-path* role — :mod:`repro.sim.fastpath` batch-advances
  iteration-inert groups, and these helpers provide the vectorized
  closed-form timelines (:func:`step_boundaries`,
  :func:`predict_iteration_seconds`) used for struct-of-arrays batch
  accounting and cross-engine comparison.

Everything here is pure: no simulator, no clock, no RNG.
"""

from __future__ import annotations

import numpy as np

from repro.config import ExecutionConfig, MemoryConfig, SimConfig
from repro.core.profiler import JobMetrics
from repro.workloads.costmodel import CostModel


def exact_metrics(cost_model: CostModel, spec, m: int) -> JobMetrics:
    """Profiled metrics as the profiler would converge to them."""
    profile = cost_model.profile(spec, m)
    return JobMetrics(job_id=spec.job_id,
                      cpu_work=profile.t_comp * m,
                      t_net=profile.t_pull + profile.t_push,
                      m_observed=m)


def deterministic_config(seed: int) -> SimConfig:
    """Jitter/barrier/spill off, so the engine is Eq. 1's world."""
    return SimConfig(
        seed=seed,
        execution=ExecutionConfig(duration_jitter_cv=0.0,
                                  barrier_overhead=0.0),
        memory=MemoryConfig(spill_enabled=False))


def step_boundaries(t0: float, n_steps: int, dt: float) -> np.ndarray:
    """The first ``n_steps`` step boundaries after ``t0``, closed form.

    Boundary ``k`` is computed as ``t0 + (k + 1) * dt`` — *not* by
    accumulating ``t += dt`` — so the k-th boundary is bitwise
    identical no matter how many boundaries were materialized before
    it.  Accumulation drifts: after 10^6 additions of ``dt = 0.1`` the
    running sum is off by ~1e-8 seconds, enough to reorder ties
    between the batched fast path and the per-event reference.
    """
    if n_steps < 0:
        raise ValueError(f"negative n_steps {n_steps}")
    ks = np.arange(1, n_steps + 1, dtype=np.float64)
    return t0 + ks * dt


def predict_iteration_seconds(metrics: JobMetrics, m: int) -> float:
    """Eq. 1 (§III-B): one job's solo training-iteration time on ``m``
    machines — CPU work perfectly parallelized plus the serialized
    parameter pull + push."""
    if m <= 0:
        raise ValueError(f"need at least one machine, got {m}")
    return metrics.cpu_work / m + metrics.t_net


def predict_job_span(metrics: JobMetrics, m: int,
                     iterations: int) -> float:
    """Closed-form solo makespan of ``iterations`` training iterations
    (the multi-step skip the fast path validates against)."""
    return iterations * predict_iteration_seconds(metrics, m)


# -- multi-job joint boundaries (Eq. 1 over a shared group) ------------

_EPSILON = 1e-9


def job_subtasks(load_seconds: float, t_pull: float, t_comp: float,
                 t_push: float, iterations: int) -> list:
    """One job's subtask tape, as the execution engine replays it.

    Mirrors ``GroupRuntime._job_process`` under
    :func:`deterministic_config` (no jitter, no barrier overhead, no
    spill): an initial disk-side input load, then per training
    iteration a PULL (net), a COMP (cpu), and a PUSH (net).  Zero-work
    entries (e.g. ``t_pull = 0`` under all-reduce) are kept — they
    complete instantly but still mark a boundary.
    """
    if iterations < 0:
        raise ValueError(f"negative iterations {iterations}")
    tape: list = []
    if load_seconds > 0:
        tape.append(("disk", load_seconds))
    for _ in range(iterations):
        tape.append(("net", t_pull))
        tape.append(("cpu", t_comp))
        tape.append(("net", t_push))
    return tape


class _OracleTask:
    __slots__ = ("job", "remaining")

    def __init__(self, job: int, work: float):
        self.job = job
        self.remaining = max(work, 0.0)


def predict_group_boundaries(jobs, policies) -> dict:
    """Joint Eq. 1 fixed point for a co-located multi-job group.

    ``jobs`` is an ordered list of ``(job_id, subtasks)`` pairs
    (:func:`job_subtasks`); order is submission order at t=0.
    ``policies`` maps each resource name appearing in the tapes to its
    :data:`~repro.sim.resources.RatePolicy` (the same factories the
    engine uses: ``serial()``, ``primary_secondary()``,
    ``processor_sharing()``).

    A pure mini-simulator: at every instant each resource's
    per-position rates follow its policy of the current queue length —
    the group's joint fixed point, constant between structural
    changes — and the next boundary is the smallest closed-form
    completion horizon ``remaining / rate`` across every queue.  All
    queues then advance by that span and completions cascade (FIFO per
    resource; resources in a fixed order for exact ties).

    Returns ``{job_id: np.ndarray}`` — each job's subtask completion
    times, in tape order.  Because the engine advances each resource
    on its own event clock while this replay advances all of them at
    every group boundary, float accumulation differs in the last bits:
    compare with a relative tolerance (~1e-9), not bitwise.
    """
    order = sorted(policies)
    queues: dict = {name: [] for name in policies}
    tapes = [list(tape) for _, tape in jobs]
    cursors = [0] * len(jobs)
    done: list[list[float]] = [[] for _ in jobs]

    def push_next(job_index: int) -> None:
        cursor = cursors[job_index]
        if cursor >= len(tapes[job_index]):
            return
        resource, work = tapes[job_index][cursor]
        queues[resource].append(_OracleTask(job_index, work))

    now = 0.0
    for job_index in range(len(jobs)):
        push_next(job_index)
    pending = sum(len(tape) for tape in tapes)
    while pending:
        # Cascade every completion at the current instant (zero-work
        # subtasks chain through several resources without advancing
        # the clock).  A spent task only completes from a position its
        # policy serves: a zero-work task queued behind a serial()
        # head still waits for its turn, exactly as in the engine.
        progressed = True
        while progressed:
            progressed = False
            for name in order:
                queue = queues[name]
                if not queue:
                    continue
                rates = list(policies[name](len(queue)))
                finished, waiting = [], []
                for index, task in enumerate(queue):
                    rate = (rates[index] if index < len(rates)
                            else 0.0)
                    if task.remaining <= _EPSILON and rate > _EPSILON:
                        finished.append(task)
                    else:
                        waiting.append(task)
                if not finished:
                    continue
                queues[name] = waiting
                for task in finished:
                    done[task.job].append(now)
                    cursors[task.job] += 1
                    pending -= 1
                    push_next(task.job)
                progressed = True
        if not pending:
            break
        # Joint horizon: the earliest closed-form completion across
        # every resource at the current fixed-point rates.
        horizon = None
        for name in order:
            queue = queues[name]
            if not queue:
                continue
            rates = list(policies[name](len(queue)))
            for index, task in enumerate(queue):
                rate = rates[index] if index < len(rates) else 0.0
                if rate <= _EPSILON:
                    continue
                eta = task.remaining / rate
                if horizon is None or eta < horizon:
                    horizon = eta
        if horizon is None:
            raise RuntimeError(
                "oracle deadlock: queued work but every task is "
                "starved by its policy")
        # Advance every active task by the span, exactly as
        # RateResource._advance does.
        for name in order:
            queue = queues[name]
            if not queue:
                continue
            rates = list(policies[name](len(queue)))
            for index, task in enumerate(queue):
                rate = rates[index] if index < len(rates) else 0.0
                if rate <= _EPSILON:
                    continue
                task.remaining -= min(task.remaining, rate * horizon)
        now += horizon
    return {job_id: np.asarray(done[index], dtype=np.float64)
            for index, (job_id, _) in enumerate(jobs)}


def predict_group_iteration_boundaries(jobs, policies) -> dict:
    """Per-iteration finish times of each job in a shared group.

    Convenience wrapper over :func:`predict_group_boundaries`: slices
    each job's completion tape down to its PUSH completions (every
    third entry after the optional initial load), which are exactly
    the engine's ``CycleRecord.finished_at`` instants.
    """
    completions = predict_group_boundaries(jobs, policies)
    result = {}
    for job_id, tape in jobs:
        times = completions[job_id]
        offset = 1 if tape and tape[0][0] == "disk" else 0
        result[job_id] = times[offset + 2::3]
    return result
