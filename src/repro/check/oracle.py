"""Closed-form oracles shared by the checker and the fast path.

Extracted from :mod:`repro.check.differential` so the same Eq. 1
arithmetic backs both roles:

* the *checker* role — :func:`exact_metrics` + ``PerfModel`` predict a
  group's iteration time from the cost model alone, and the differential
  suite compares the prediction against the simulated engine; and
* the *fast-path* role — :mod:`repro.sim.fastpath` batch-advances
  iteration-inert groups, and these helpers provide the vectorized
  closed-form timelines (:func:`step_boundaries`,
  :func:`predict_iteration_seconds`) used for struct-of-arrays batch
  accounting and cross-engine comparison.

Everything here is pure: no simulator, no clock, no RNG.
"""

from __future__ import annotations

import numpy as np

from repro.config import ExecutionConfig, MemoryConfig, SimConfig
from repro.core.profiler import JobMetrics
from repro.workloads.costmodel import CostModel


def exact_metrics(cost_model: CostModel, spec, m: int) -> JobMetrics:
    """Profiled metrics as the profiler would converge to them."""
    profile = cost_model.profile(spec, m)
    return JobMetrics(job_id=spec.job_id,
                      cpu_work=profile.t_comp * m,
                      t_net=profile.t_pull + profile.t_push,
                      m_observed=m)


def deterministic_config(seed: int) -> SimConfig:
    """Jitter/barrier/spill off, so the engine is Eq. 1's world."""
    return SimConfig(
        seed=seed,
        execution=ExecutionConfig(duration_jitter_cv=0.0,
                                  barrier_overhead=0.0),
        memory=MemoryConfig(spill_enabled=False))


def step_boundaries(t0: float, n_steps: int, dt: float) -> np.ndarray:
    """The first ``n_steps`` step boundaries after ``t0``, closed form.

    Boundary ``k`` is computed as ``t0 + (k + 1) * dt`` — *not* by
    accumulating ``t += dt`` — so the k-th boundary is bitwise
    identical no matter how many boundaries were materialized before
    it.  Accumulation drifts: after 10^6 additions of ``dt = 0.1`` the
    running sum is off by ~1e-8 seconds, enough to reorder ties
    between the batched fast path and the per-event reference.
    """
    if n_steps < 0:
        raise ValueError(f"negative n_steps {n_steps}")
    ks = np.arange(1, n_steps + 1, dtype=np.float64)
    return t0 + ks * dt


def predict_iteration_seconds(metrics: JobMetrics, m: int) -> float:
    """Eq. 1 (§III-B): one job's solo training-iteration time on ``m``
    machines — CPU work perfectly parallelized plus the serialized
    parameter pull + push."""
    if m <= 0:
        raise ValueError(f"need at least one machine, got {m}")
    return metrics.cpu_work / m + metrics.t_net


def predict_job_span(metrics: JobMetrics, m: int,
                     iterations: int) -> float:
    """Closed-form solo makespan of ``iterations`` training iterations
    (the multi-step skip the fast path validates against)."""
    return iterations * predict_iteration_seconds(metrics, m)
