"""Seeded scenario generation and checked execution.

A :class:`ScenarioGenerator` derives a full experiment — job mix,
arrival pattern, cluster size, scheduler knobs, alpha settings, and an
optional fault plan — from a single integer seed, through the same
named random streams the simulator uses.  The seed is therefore a
complete reproduction recipe: any failure found by the fuzzer (CI, the
hypothesis suite, or ``python -m repro check``) is replayed with one
line::

    PYTHONPATH=src python -m repro check --seed N
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.check.invariants import InvariantChecker, Violation
from repro.config import (
    ExecutionConfig,
    MemoryConfig,
    SchedulerConfig,
    SimConfig,
)
from repro.core.job import JobState
from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.sim.rand import RandomStreams
from repro.workloads.apps import JobSpec
from repro.workloads.generator import WorkloadGenerator

#: Simulated-time ceiling: a scenario still running after this long is
#: reported as stuck (the generator's job mixes finish in well under a
#: simulated week).
MAX_SCENARIO_SECONDS = 30.0 * 24 * 3600.0


@dataclass(frozen=True)
class Scenario:
    """One fully-determined checked run."""

    seed: int
    n_machines: int
    specs: tuple[JobSpec, ...]
    config: SimConfig
    fault_plan: FaultPlan | None

    def describe(self) -> str:
        fault = (f"{len(self.fault_plan)} fault(s)"
                 if self.fault_plan is not None else "no faults")
        scheduler = self.config.scheduler
        return (f"seed {self.seed}: {len(self.specs)} jobs on "
                f"{self.n_machines} machines, "
                f"order={scheduler.admission_order}, "
                f"alpha={self.config.memory.fixed_alpha}, "
                f"jitter={self.config.execution.duration_jitter_cv}, "
                f"{fault}")

    @property
    def replay_command(self) -> str:
        return f"PYTHONPATH=src python -m repro check --seed {self.seed}"


@dataclass
class CheckedRun:
    """Outcome of one scenario executed with the checker enabled."""

    scenario: Scenario
    violations: list[Violation]
    error: str | None = None
    finished_jobs: int = 0
    sim_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.violations and self.error is None

    def report(self) -> str:
        if self.ok:
            return (f"OK   {self.scenario.describe()} -> "
                    f"{self.finished_jobs} jobs finished in "
                    f"{self.sim_seconds / 3600:.1f} simulated hours")
        lines = [f"FAIL {self.scenario.describe()}"]
        if self.error is not None:
            lines.append(f"  error: {self.error}")
        lines.extend(f"  {violation}"
                     for violation in self.violations)
        lines.append(f"  replay: {self.scenario.replay_command}")
        return "\n".join(lines)


class ScenarioGenerator:
    """Derives a :class:`Scenario` deterministically from a seed."""

    def __init__(self, seed: int):
        self.seed = seed
        self._streams = RandomStreams(seed).spawn("check-scenario")

    def generate(self) -> Scenario:
        rng = self._streams.stream("shape")
        n_machines = int(rng.integers(20, 33))

        pool = WorkloadGenerator(self.seed).base_workload(
            hyper_params_per_pair=1)
        n_jobs = int(rng.integers(3, len(pool) + 1))
        chosen = [pool[i] for i in
                  sorted(rng.choice(len(pool), size=n_jobs,
                                    replace=False))]
        staggered = bool(rng.random() < 0.5)
        gap = float(rng.uniform(150.0, 600.0)) if staggered else 0.0
        specs = tuple(
            replace(spec,
                    iterations=int(rng.integers(3, 9)),
                    submit_time=index * gap)
            for index, spec in enumerate(chosen))

        orders = ("critical", "sjf", "ljf", "interleave")
        scheduler = SchedulerConfig(
            admission_order=orders[int(rng.integers(0, len(orders)))],
            reschedule_check_seconds=float(
                rng.choice([600.0, 1200.0])))
        execution = ExecutionConfig(
            duration_jitter_cv=float(rng.choice([0.0, 0.02, 0.05])),
            barrier_overhead=float(rng.choice([0.0, 0.01])))
        # alpha settings: mostly the §IV-C hill-climb, occasionally the
        # fixed-alpha baseline (spill stays on so every Table I job can
        # be placed on a small cluster).
        fixed_alpha = 0.5 if rng.random() < 0.25 else None
        memory = MemoryConfig(fixed_alpha=fixed_alpha)

        fault_plan = None
        if rng.random() < 0.5:
            fault_plan = FaultPlan.generate(
                seed=self.seed,
                n_machines=n_machines,
                horizon_seconds=float(rng.uniform(4000.0, 20000.0)),
                crash_rate_per_hour=float(rng.uniform(0.3, 1.5)),
                slowdown_rate_per_hour=float(rng.uniform(0.0, 1.0)),
                drop_rate_per_hour=float(rng.uniform(0.0, 2.0)),
                crash_downtime_seconds=float(rng.uniform(300.0, 900.0)))

        config = SimConfig(seed=self.seed, scheduler=scheduler,
                           execution=execution,
                           memory=memory).with_tracing()
        return Scenario(seed=self.seed, n_machines=n_machines,
                        specs=specs, config=config,
                        fault_plan=fault_plan)


def run_checked(scenario: Scenario,
                checker: InvariantChecker | None = None) -> CheckedRun:
    """Execute a scenario end to end with all invariants enforced."""
    from repro.core.runtime import HarmonyRuntime

    checker = checker if checker is not None else InvariantChecker()
    runtime = HarmonyRuntime(scenario.n_machines, scenario.specs,
                             config=scenario.config,
                             fault_plan=scenario.fault_plan)
    error: str | None = None
    try:
        runtime.run(max_sim_seconds=MAX_SCENARIO_SECONDS)
    except ReproError as exc:
        error = f"{type(exc).__name__}: {exc}"
    if error is None:
        stuck = [job.job_id for job in runtime.master.jobs.values()
                 if not job.is_done]
        if len(runtime.master.jobs) < len(scenario.specs):
            error = (f"only {len(runtime.master.jobs)} of "
                     f"{len(scenario.specs)} jobs were submitted")
        elif stuck:
            error = (f"stuck: {len(stuck)} job(s) unfinished after "
                     f"{MAX_SCENARIO_SECONDS:.0f} simulated seconds: "
                     f"{stuck[:5]}")
    violations = checker.check_runtime(runtime)
    finished = sum(1 for job in runtime.master.jobs.values()
                   if job.state is JobState.FINISHED)
    # sim.run(until=...) advances the clock to the bound even when the
    # queue drains early; report when work actually ended.
    last_finish = max(
        (job.finish_time for job in runtime.master.jobs.values()
         if job.finish_time is not None), default=runtime.sim.now)
    return CheckedRun(scenario=scenario, violations=violations,
                      error=error, finished_jobs=finished,
                      sim_seconds=last_finish)
