"""Run-level correctness harness (invariants + differential testing).

Three pieces:

* :class:`InvariantChecker` — asserts whole-run invariants (work
  conservation, COMP/COMM occupancy, barrier safety, monotone trace
  timestamps, no lost iterations, ledger consistency) over a finished
  :class:`~repro.core.runtime.HarmonyRuntime`.
* :mod:`repro.check.differential` — replays profiled jobs through the
  analytical Eqs. 1-4 model and the §V-F exhaustive oracle and bounds
  the simulator/scheduler against both.
* :class:`ScenarioGenerator` — derives complete experiments (job mix,
  arrivals, fault plan, alpha settings) from one seed, with one-line
  replay: ``python -m repro check --seed N``.
"""

from repro.check.differential import (
    DifferentialReport,
    OracleCase,
    PerfModelCase,
    exact_metrics,
    oracle_cases,
    perfmodel_cases,
    run_differential,
)
from repro.check.invariants import InvariantChecker, Violation
from repro.check.scenarios import (
    CheckedRun,
    Scenario,
    ScenarioGenerator,
    run_checked,
)

__all__ = [
    "CheckedRun",
    "DifferentialReport",
    "InvariantChecker",
    "OracleCase",
    "PerfModelCase",
    "Scenario",
    "ScenarioGenerator",
    "Violation",
    "exact_metrics",
    "oracle_cases",
    "perfmodel_cases",
    "run_checked",
    "run_differential",
]
