"""Run-level invariants of the simulated cluster.

The unit tests probe components locally; the hard bugs are
cross-component interleaving bugs (a crash racing a migration, a
regroup racing a reload) whose symptoms only show up in whole-run
accounting.  :class:`InvariantChecker` consumes a finished (or
truncated) :class:`~repro.core.runtime.HarmonyRuntime` — its master
state, the per-group resource audits, and the :mod:`repro.trace`
event stream — and asserts:

* **Work conservation** per resource: every second of submitted work
  is either served, explicitly discarded (cancel/purge), or still
  queued; a serial CPU's busy time equals its served work, and a
  primary+secondary NIC delivers at most ``1 + secondary_rate`` work
  seconds per busy second (Fig. 7).
* **COMP exclusivity**: at most one COMP subtask in service at any
  instant on a coordinated group's CPU (§IV-A).
* **COMM occupancy**: at most a primary plus one secondary network
  subtask concurrently in a coordinated group.
* **Barrier safety**: a job never starts iteration *k+1* before its
  iteration *k* closed — cycle intervals are disjoint and ordered per
  job, across regroup migrations and crash restarts.
* **Monotone trace timestamps**: spans lie inside ``[0, now]``,
  instants are recorded in time order, per-lane spans do not overlap,
  and no span is left open at the end of a run.
* **No lost iterations**: a finished job executed exactly
  ``spec.iterations`` cycles plus the iterations crash recovery rolled
  back (checkpoint restarts re-run work but never skip it).
* **Ledger consistency**: every live group owns exactly the machines
  the cluster says it owns, the free pool matches the owner map, and
  no job is a member of two groups.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.group_runtime import GroupAudit
from repro.core.job import JobState
from repro.errors import InvariantViolationError

#: Trace categories that occupy a resource lane exclusively per job.
_SERVICE_CATS = frozenset(
    {"comp", "comm", "load", "reload", "checkpoint", "stall", "wait"})


@dataclass(frozen=True)
class Violation:
    """One failed invariant, with enough context to debug it."""

    invariant: str
    where: str
    message: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.where}: {self.message}"


class InvariantChecker:
    """Asserts run-level invariants over a completed simulation.

    Safe on truncated runs (``max_sim_seconds`` / ``max_events``):
    safety invariants hold at every instant, and the completion-only
    checks (exact iteration counts) are restricted to jobs that
    actually finished.
    """

    def __init__(self, rel_tol: float = 1e-6, abs_tol: float = 1e-3,
                 time_tol: float = 1e-6):
        self.rel_tol = rel_tol
        self.abs_tol = abs_tol
        self.time_tol = time_tol

    # -- entry points --------------------------------------------------

    def check_runtime(self, runtime) -> list[Violation]:
        """All violations found in a :class:`HarmonyRuntime`'s state."""
        master = runtime.master
        now = runtime.sim.now
        out: list[Violation] = []
        audits = list(master.group_audits)
        audits.extend(group.audit() for group in master.groups.values())
        for audit in audits:
            self.check_audit(audit, out)
        self._check_cluster(runtime.cluster, master, out)
        self._check_cycles(master, now, out)
        tracer = runtime.sim.tracer
        if tracer.enabled:
            self.check_trace(tracer, now, out)
        return out

    def assert_clean(self, runtime) -> None:
        """Raise :class:`InvariantViolationError` on any violation."""
        violations = self.check_runtime(runtime)
        if violations:
            raise InvariantViolationError(
                f"{len(violations)} invariant violation(s):\n"
                + "\n".join(str(v) for v in violations),
                violations=tuple(violations))

    # -- work conservation ---------------------------------------------

    def _close(self, a: float, b: float) -> bool:
        return abs(a - b) <= self.abs_tol + self.rel_tol * max(
            abs(a), abs(b))

    def check_audit(self, audit: GroupAudit,
                    out: list[Violation]) -> None:
        """Work-conservation and capacity invariants of one group."""
        for res in (audit.cpu, audit.net, audit.disk):
            where = f"group {audit.group_id} ({res.name})"
            balance = (res.work_submitted - res.work_served
                       - res.work_discarded - res.queued_work)
            if not self._close(balance, 0.0):
                out.append(Violation(
                    "work-conservation", where,
                    f"submitted {res.work_submitted:.6f} != served "
                    f"{res.work_served:.6f} + discarded "
                    f"{res.work_discarded:.6f} + queued "
                    f"{res.queued_work:.6f} (off by {balance:+.6f}s)"))
            if res.work_served > res.work_submitted + self.abs_tol \
                    + self.rel_tol * res.work_submitted:
                out.append(Violation(
                    "work-conservation", where,
                    f"served {res.work_served:.6f}s exceeds submitted "
                    f"{res.work_submitted:.6f}s (phantom service)"))
            span = res.at - audit.started_at
            if res.busy_seconds > span + self.abs_tol \
                    + self.rel_tol * span:
                out.append(Violation(
                    "capacity", where,
                    f"busy {res.busy_seconds:.6f}s exceeds the group's "
                    f"lifetime {span:.6f}s"))
            if audit.stopped_at is not None and res.queue_length:
                out.append(Violation(
                    "teardown", where,
                    f"{res.queue_length} task(s) still queued after the "
                    f"group {'crashed' if audit.crashed else 'stopped'}"))

        # Busy time vs served work, per policy: the serial CPU and the
        # processor-sharing disk deliver exactly one work second per
        # busy second (total rate <= capacity); the coordinated NIC
        # over-delivers up to the secondary's share.
        for res, cap in ((audit.cpu, 1.0), (audit.disk, 1.0),
                         (audit.net, audit.net_rate_cap)):
            where = f"group {audit.group_id} ({res.name})"
            if cap <= 1.0 + 1e-9:
                if not self._close(res.busy_seconds, res.work_served):
                    out.append(Violation(
                        "busy-vs-served", where,
                        f"busy {res.busy_seconds:.6f}s != served "
                        f"{res.work_served:.6f}s at unit capacity"))
            else:
                if res.work_served < res.busy_seconds - self.abs_tol \
                        - self.rel_tol * res.busy_seconds:
                    out.append(Violation(
                        "busy-vs-served", where,
                        f"served {res.work_served:.6f}s below busy "
                        f"{res.busy_seconds:.6f}s"))
                limit = cap * res.busy_seconds
                if res.work_served > limit + self.abs_tol \
                        + self.rel_tol * limit:
                    out.append(Violation(
                        "busy-vs-served", where,
                        f"served {res.work_served:.6f}s exceeds "
                        f"{cap:.2f}x busy {res.busy_seconds:.6f}s "
                        f"(occupancy limit)"))

    # -- iteration accounting ------------------------------------------

    def _check_cycles(self, master, now: float,
                      out: list[Violation]) -> None:
        cycles_by_job: dict[str, list] = {}
        all_cycles = list(master.finished_cycles)
        for group in master.groups.values():
            all_cycles.extend(group.cycles)
        tol = self.time_tol
        for cycle in all_cycles:
            cycles_by_job.setdefault(cycle.job_id, []).append(cycle)
            if cycle.duration < -tol:
                out.append(Violation(
                    "span-bounds", f"job {cycle.job_id}",
                    f"cycle with negative duration {cycle.duration}"))
            if cycle.finished_at > now + tol or \
                    cycle.finished_at - cycle.duration < -tol:
                out.append(Violation(
                    "span-bounds", f"job {cycle.job_id}",
                    f"cycle [{cycle.finished_at - cycle.duration}, "
                    f"{cycle.finished_at}] outside the run [0, {now}]"))

        rolled_back = master.rolled_back_iterations
        for job_id, cycles in cycles_by_job.items():
            cycles.sort(key=lambda c: c.finished_at)
            for prev, cur in zip(cycles, cycles[1:], strict=False):
                if cur.finished_at - cur.duration < \
                        prev.finished_at - tol:
                    out.append(Violation(
                        "barrier-safety", f"job {job_id}",
                        f"iteration starting at "
                        f"{cur.finished_at - cur.duration:.6f} overlaps "
                        f"the previous one ending at "
                        f"{prev.finished_at:.6f}"))
            job = master.jobs.get(job_id)
            if job is None:
                continue
            budget = job.spec.iterations + rolled_back.get(job_id, 0)
            if len(cycles) > budget:
                out.append(Violation(
                    "no-lost-iterations", f"job {job_id}",
                    f"{len(cycles)} cycles recorded, but only {budget} "
                    f"iterations were ever scheduled"))
            if job.state is JobState.FINISHED and len(cycles) != budget:
                out.append(Violation(
                    "no-lost-iterations", f"job {job_id}",
                    f"finished with {len(cycles)} cycles; expected "
                    f"{job.spec.iterations} + "
                    f"{rolled_back.get(job_id, 0)} rolled back "
                    f"= {budget}"))

    # -- cluster / membership ledgers ----------------------------------

    def _check_cluster(self, cluster, master,
                       out: list[Violation]) -> None:
        free = sum(1 for m in cluster.machines
                   if cluster.owner_of(m.machine_id) is None
                   and not cluster.is_failed(m.machine_id))
        if cluster.n_free != free:
            out.append(Violation(
                "ledger", "cluster",
                f"free pool reports {cluster.n_free} machines but "
                f"{free} are unowned and healthy"))

        seen_jobs: dict[str, str] = {}
        for group_id, group in master.groups.items():
            owned = set(cluster.owned_by(group_id))
            if owned != set(group.machine_ids):
                out.append(Violation(
                    "ledger", f"group {group_id}",
                    f"group runs on machines "
                    f"{sorted(group.machine_ids)} but the cluster says "
                    f"it owns {sorted(owned)}"))
            for job in group.jobs():
                if job.group_id != group_id:
                    out.append(Violation(
                        "membership", f"job {job.job_id}",
                        f"member of group {group_id} but believes it is "
                        f"in {job.group_id!r}"))
                if job.job_id in seen_jobs:
                    out.append(Violation(
                        "membership", f"job {job.job_id}",
                        f"member of both {seen_jobs[job.job_id]} and "
                        f"{group_id}"))
                seen_jobs[job.job_id] = group_id

    # -- trace-stream invariants ---------------------------------------

    def check_trace(self, tracer, now: float,
                    out: list[Violation]) -> None:
        """Timestamp sanity + occupancy invariants of the event stream.

        Usable standalone (e.g. on a single-group run's tracer) —
        everything here is derived from the trace alone.
        """
        tol = self.time_tol
        if tracer.open_spans:
            out.append(Violation(
                "open-spans", "tracer",
                f"{tracer.open_spans} span(s) left open"))

        last_instant = float("-inf")
        for instant in tracer.instants:
            if instant.time < last_instant - tol:
                out.append(Violation(
                    "instant-order", f"instant {instant.name!r}",
                    f"recorded at {instant.time} after one at "
                    f"{last_instant}"))
            last_instant = max(last_instant, instant.time)
            if instant.time < -tol or instant.time > now + tol:
                out.append(Violation(
                    "span-bounds", f"instant {instant.name!r}",
                    f"time {instant.time} outside the run [0, {now}]"))

        by_track: dict[tuple[int, int], list] = {}
        for span in tracer.spans:
            if span.start < -tol or span.end > now + tol:
                out.append(Violation(
                    "span-bounds", f"span {span.name!r}",
                    f"[{span.start}, {span.end}] outside the run "
                    f"[0, {now}]"))
            if span.cat in _SERVICE_CATS:
                key = (span.track.pid, span.track.tid)
                by_track.setdefault(key, []).append(span)

        for (pid, tid), spans in by_track.items():
            spans.sort(key=lambda s: (s.start, s.end))
            for prev, cur in zip(spans, spans[1:], strict=False):
                if cur.start < prev.end - tol:
                    process = tracer.process_names.get(pid, str(pid))
                    thread = tracer.thread_names.get((pid, tid),
                                                     str(tid))
                    out.append(Violation(
                        "lane-overlap", f"{process} / {thread}",
                        f"{cur.name!r} [{cur.start:.6f}, {cur.end:.6f}] "
                        f"overlaps {prev.name!r} "
                        f"[{prev.start:.6f}, {prev.end:.6f}]"))
                    break  # one report per lane is enough

        self._check_occupancy(tracer, tol, out)

    def _group_modes(self, tracer) -> dict[int, str]:
        """pid -> execution mode, joined through group-start instants."""
        mode_of_group: dict[str, str] = {}
        for instant in tracer.instants:
            if instant.name == "group-start" and instant.args:
                mode_of_group[str(instant.args.get("group"))] = \
                    str(instant.args.get("mode"))
        modes: dict[int, str] = {}
        for pid, name in tracer.process_names.items():
            group_id = name.rsplit(" · ", 1)[-1]
            if group_id in mode_of_group:
                modes[pid] = mode_of_group[group_id]
        return modes

    def _check_occupancy(self, tracer, tol: float,
                         out: list[Violation]) -> None:
        """COMP exclusivity / COMM primary+secondary limits (§IV-A).

        Only coordinated groups make these promises: the naive baseline
        deliberately lets subtasks contend without limit.
        """
        modes = self._group_modes(tracer)
        comp: dict[int, list] = {}
        comm: dict[int, list] = {}
        for span in tracer.spans:
            if modes.get(span.track.pid) in (None, "naive"):
                continue
            if span.cat == "comp":
                comp.setdefault(span.track.pid, []).append(span)
            elif span.cat == "comm":
                comm.setdefault(span.track.pid, []).append(span)

        for invariant, per_pid, limit in (("comp-exclusive", comp, 1),
                                          ("comm-occupancy", comm, 2)):
            for pid, spans in per_pid.items():
                overlap = self._max_concurrency(spans, tol)
                if overlap > limit:
                    process = tracer.process_names.get(pid, str(pid))
                    out.append(Violation(
                        invariant, process,
                        f"{overlap} concurrent {spans[0].cat.upper()} "
                        f"subtasks in service (limit {limit})"))

    @staticmethod
    def _max_concurrency(spans, tol: float) -> int:
        """Peak overlap count of a span set (zero-length spans and
        back-to-back handoffs within ``tol`` do not count)."""
        events: list[tuple[float, int]] = []
        for span in spans:
            if span.end - span.start <= tol:
                continue
            events.append((span.start + tol, 1))
            events.append((span.end, -1))
        events.sort()
        active = peak = 0
        for _, delta in events:
            active += delta
            peak = max(peak, active)
        return peak
