"""The *isolated* baseline (§V-A).

"The isolated baseline allocates disjoint sets of resources for each
distinct job.  In the isolated approach, we try to maximize the CPU
utilization rates, as it determines the actual training progress of
each job, by reducing the network overheads that occur with lower DoP.
Existing works that take similar approaches for allocating resources to
each job include Optimus and SLAQ."

Each job runs alone on its dedicated machines (group size 1), with the
classic sequential PULL -> COMP -> PUSH iteration and no data spilling.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.baselines.base import BaselineRuntime
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.group_runtime import ExecutionMode
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel


class IsolatedRuntime(BaselineRuntime):
    """Dedicated per-job allocation (Optimus / SLAQ style)."""

    #: Dedicated allocations run below the CPU/network balance point —
    #: the paper's isolated policy trades a longer COMP for less idle
    #: network time ("maximize the CPU utilization rates ... by
    #: reducing the network overheads that occur with lower DoP").
    DOP_SCALE = 0.50

    def __init__(self, n_machines: int, workload: Sequence[JobSpec],
                 config: SimConfig = DEFAULT_SIM_CONFIG,
                 dop_scale: float = DOP_SCALE,
                 cost_model: CostModel | None = None):
        super().__init__(n_machines, workload,
                         mode=ExecutionMode.ISOLATED,
                         name="isolated",
                         config=config,
                         group_size=1,
                         dop_scale=dop_scale,
                         cost_model=cost_model)
