"""Exhaustive-search scheduling: the §V-F "Oracle".

"We evaluate Harmony's scheduling algorithm with an exhaustive search
that finds the ground truth that maximizes resource utilization by
measuring all possible search spaces."

The oracle enumerates every set partition of the candidate jobs into
groups (machine allocation per partition uses the same marginal-benefit
allocator, which is exact for the monotone Eq. 1/Eq. 3 objective) and
keeps the partition with the best predicted cluster utilization.  The
search space grows as the Bell numbers — the paper reports ~10 hours
for 4K jobs; here a guard refuses pools where enumeration would be
intractable, mirroring Fig. 14's scaled-down comparison.
"""

from __future__ import annotations

from collections.abc import Iterator, Sequence

from repro.config import SchedulerConfig
from repro.core.allocation import MemoryFloorFn, allocate_machines
from repro.core.perfmodel import PerfModel
from repro.core.profiler import JobMetrics
from repro.core.scheduler import HarmonyScheduler, SchedulePlan
from repro.errors import SchedulingError

#: Refuse exhaustive search beyond this pool size (Bell(11) > 600K).
MAX_ORACLE_JOBS = 10


def set_partitions(items: Sequence,
                   max_group_size: int | None = None) -> Iterator[list]:
    """All partitions of ``items`` into non-empty groups.

    Canonical recursive enumeration: each new item either joins an
    existing group or opens a new one, so every partition appears once.
    """
    items = list(items)
    if not items:
        yield []
        return

    def recurse(index: int, groups: list[list]):
        if index == len(items):
            yield [list(g) for g in groups]
            return
        item = items[index]
        for group in groups:
            if max_group_size is not None and \
                    len(group) >= max_group_size:
                continue
            group.append(item)
            yield from recurse(index + 1, groups)
            group.pop()
        groups.append([item])
        yield from recurse(index + 1, groups)
        groups.pop()

    yield from recurse(0, [])


class OracleScheduler:
    """Drop-in replacement for :class:`HarmonyScheduler` that searches
    the whole partition space."""

    def __init__(self, perf_model: PerfModel | None = None,
                 config: SchedulerConfig | None = None,
                 memory_floor: MemoryFloorFn | None = None,
                 max_jobs: int = MAX_ORACLE_JOBS):
        self.config = config if config is not None else SchedulerConfig()
        self.perf_model = perf_model if perf_model is not None \
            else PerfModel(cpu_weight=self.config.cpu_weight)
        self.memory_floor = memory_floor
        self.max_jobs = max_jobs
        #: Partitions evaluated by the last schedule() call.
        self.last_search_size = 0
        # Plan assembly/scoring is shared with the greedy scheduler.
        self._builder = HarmonyScheduler(perf_model=self.perf_model,
                                         config=self.config,
                                         memory_floor=memory_floor)

    def schedule(self, jobs: Sequence[JobMetrics],
                 total_machines: int) -> SchedulePlan | None:
        """Ground-truth schedule by exhaustive partition search.

        Like Algorithm 1, jobs may be left out: subsets are covered
        because the search also runs on every prefix of the (iteration
        -time-ordered) job list.
        """
        if len(jobs) > self.max_jobs:
            raise SchedulingError(
                f"exhaustive search over {len(jobs)} jobs is intractable "
                f"(limit {self.max_jobs}); the paper reports ~10 hours "
                f"at 4K jobs for the same reason")
        if total_machines < 1:
            raise SchedulingError("need at least one machine")
        if not jobs:
            return None
        self.last_search_size = 0
        best: SchedulePlan | None = None
        ordered = sorted(jobs, key=lambda j: j.t_iteration_at(16))
        for n_jobs in range(1, len(ordered) + 1):
            candidate = ordered[:n_jobs]
            for partition in set_partitions(
                    candidate,
                    max_group_size=self.config.max_jobs_per_group):
                if len(partition) > total_machines:
                    continue
                self.last_search_size += 1
                allocation = allocate_machines(partition, total_machines,
                                               self.memory_floor)
                if allocation is None:
                    continue
                plan = self._builder.build_plan(partition, allocation,
                                                total_machines)
                if best is None or plan.score > best.score:
                    best = plan
        return best
