"""Baseline schedulers the paper compares against (§V-A).

* :mod:`repro.baselines.isolated` — dedicated, disjoint allocations per
  job (Optimus / SLAQ style).
* :mod:`repro.baselines.naive` — uncoordinated co-location without a
  performance model (Gandiva style).
* :mod:`repro.baselines.oracle` — exhaustive-search scheduling used as
  the ground truth in §V-F (Fig. 14).
"""

from repro.baselines.base import BaselineRuntime
from repro.baselines.isolated import IsolatedRuntime
from repro.baselines.naive import NaiveRuntime
from repro.baselines.oracle import OracleScheduler

__all__ = [
    "BaselineRuntime",
    "IsolatedRuntime",
    "NaiveRuntime",
    "OracleScheduler",
]
