"""Shared queue-driven runtime for the pluggable scheduling policies.

:class:`BaselineMaster` owns the queue, the cluster ledger and the
demand/metrics oracles; *which* queued jobs start, grouped how, is
delegated to a :class:`~repro.policies.base.SchedulingPolicy`.  The
master observes (queue, free machines, running groups), the policy
decides (:class:`~repro.policies.base.PolicyDecision`), and the master
applies the starts and re-asks until a pass makes no progress.

The historical baselines are one policy family at fixed parameters:
FIFO + demand-skip backfill packing up to ``group_size`` jobs
(:func:`repro.policies.queueing.packed_fifo`) — the default policy
transcribes the pre-refactor admission scan exactly, and the
differential tests pin naive/isolated outcomes bitwise-equal to it.
What differs between registry entries beyond the policy is the
execution discipline
(:class:`~repro.core.group_runtime.ExecutionMode`).
"""

from __future__ import annotations

import itertools
import time as _time
from collections.abc import Sequence

from repro.check.oracle import exact_metrics
from repro.cluster.cluster import Cluster
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.group_runtime import ExecutionMode, GroupRuntime
from repro.core.job import Job, JobState
from repro.core.perfmodel import PerfModel
from repro.core.profiler import JobMetrics
from repro.core.runtime import JobOutcome, RunResult
from repro.errors import SchedulingError, SimulationError
from repro.metrics.utilization import ClusterUsageRecorder
from repro.policies.base import (
    PolicyDecision,
    PolicyObservation,
    RunningGroupView,
    SchedulingPolicy,
)
from repro.policies.queueing import packed_fifo
from repro.sim import RandomStreams, Simulator
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel

#: No job is given more machines than this, mirroring the largest DoP
#: the paper's evaluation exercises (Fig. 3 stops at 32).
MAX_DOP = 32


class BaselineMaster:
    """Queue-driven admission onto dedicated machine groups."""

    #: Queue policies neither profile nor pause: ``on_iteration`` is a
    #: no-op and groups are only ever created, never mutated while
    #: running — the contract that lets the fast path batch their
    #: groups (:mod:`repro.sim.fastpath`).
    iteration_hooks_inert = True

    def __init__(self, sim: Simulator, cluster: Cluster,
                 cost_model: CostModel, config: SimConfig,
                 streams: RandomStreams, recorder: ClusterUsageRecorder,
                 mode: ExecutionMode, group_size: int = 1,
                 shuffle_seed: int | None = None,
                 dop_scale: float = 1.0,
                 backfill: bool = True,
                 colocate_only_if_fits: bool = False,
                 policy: SchedulingPolicy | None = None):
        if group_size < 1:
            raise SchedulingError(f"group_size must be >= 1, "
                                  f"got {group_size}")
        self.sim = sim
        self.cluster = cluster
        self.cost_model = cost_model
        self.config = config
        self.streams = streams
        self.recorder = recorder
        self.mode = mode
        self.group_size = group_size
        self.dop_scale = dop_scale
        self.backfill = backfill
        #: When set, a batch is only co-located if its no-spill memory
        #: floor does not dominate its balanced allocation (used by the
        #: §V-C ablation's "subtasks only" stage, where co-location is
        #: available but data spilling is not).
        self.colocate_only_if_fits = colocate_only_if_fits
        #: The admission brain; the legacy constructor parameters are
        #: exactly the default policy's parameters.
        self.policy: SchedulingPolicy = policy if policy is not None \
            else packed_fifo(group_size=group_size, backfill=backfill,
                             colocate_only_if_fits=colocate_only_if_fits)
        self.jobs: dict[str, Job] = {}
        self.groups: dict[str, GroupRuntime] = {}
        self.finished_cycles: list = []
        #: Final conservation snapshots of torn-down groups, for
        #: :mod:`repro.check` (live groups are audited on demand).
        self.group_audits: list = []
        #: Queue masters never roll work back; the ledger exists so the
        #: invariant checker consumes every runtime uniformly.
        self.rolled_back_iterations: dict[str, int] = {}
        self._queue: list[str] = []
        self._group_ids = itertools.count()
        # machines_for/_memory_floor are pure in the batch's specs (the
        # cost model and config never change mid-run) but are re-asked
        # on every _pump pass — profiling showed the floor's linear
        # scan over resident_bytes dominating baseline wall time.
        self._machines_cache: dict[tuple[str, ...], int] = {}
        self._floor_cache: dict[tuple[str, ...], int] = {}
        self._metrics_cache: dict[tuple[str, int], JobMetrics] = {}
        #: Eq. 1 model for the running-group release predictions the
        #: reservation-backfill policies observe.
        self._perf_model = PerfModel(
            cpu_weight=config.scheduler.cpu_weight)
        #: group_id -> predicted machine-release time, frozen at start.
        self._release_predictions: dict[str, float] = {}
        self._shuffle_rng = None
        if shuffle_seed is not None:
            import numpy as np
            self._shuffle_rng = np.random.default_rng(shuffle_seed)

    # -- submission -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        if spec.job_id in self.jobs:
            raise SchedulingError(f"duplicate job id {spec.job_id}")
        job = Job(spec)
        self.jobs[spec.job_id] = job
        self._queue.append(spec.job_id)
        if self._shuffle_rng is not None:
            # The naive baseline's grouping is arbitrary; a shuffled
            # queue samples one of the "all possible cases" of §V-A.
            order = self._shuffle_rng.permutation(len(self._queue))
            self._queue = [self._queue[i] for i in order]
        self._pump()
        return job

    @property
    def all_done(self) -> bool:
        return all(job.is_done for job in self.jobs.values())

    # -- demand / metrics oracles -----------------------------------------------

    def machines_for(self, specs: Sequence[JobSpec]) -> int:
        """Dedicated machine count for a (possibly co-located) job set.

        Balances computation against communication per job — "we try to
        maximize the CPU utilization rates ... by reducing the network
        overheads that occur with lower DoP" (§V-A) — while honouring
        the no-spill memory floor.
        """
        key = tuple(spec.job_id for spec in specs)
        cached = self._machines_cache.get(key)
        if cached is not None:
            return cached
        floor = self._memory_floor(specs)
        total_work = sum(spec.cpu_work_machine_seconds for spec in specs)
        total_comm = sum(self.cost_model.profile(spec, 1).t_comm
                         for spec in specs)
        # Aggregate balance point: enough machines that the group's
        # total COMP matches its total COMM demand.
        balanced = total_work / max(total_comm, 1e-9)
        wanted = int(round(balanced * self.dop_scale))
        cap = min(MAX_DOP * len(specs), self.cluster.size)
        result = max(floor, min(cap, wanted), 1)
        self._machines_cache[key] = result
        return result

    def _memory_dominated(self, specs: Sequence[JobSpec],
                          wanted: int) -> bool:
        """Whether a batch's allocation is driven by its memory floor
        rather than by compute/communication balance."""
        total_work = sum(spec.cpu_work_machine_seconds for spec in specs)
        total_comm = sum(self.cost_model.profile(spec, 1).t_comm
                         for spec in specs)
        balanced = total_work / max(total_comm, 1e-9) * self.dop_scale
        return wanted > max(1.0, balanced) * 1.5

    def _memory_floor(self, specs: Sequence[JobSpec]) -> int:
        """Smallest DoP at which the jobs fit.

        Uncoordinated modes do not spill (alpha = 0); when a spill
        ratio is forced through the config (the ablation's static-spill
        stages), the floor honours it.
        """
        key = tuple(spec.job_id for spec in specs)
        cached = self._floor_cache.get(key)
        if cached is not None:
            return cached
        alpha = 0.0
        if self.mode.spill_enabled and self.config.memory.spill_enabled:
            fixed = self.config.memory.fixed_alpha
            alpha = 1.0 if fixed is None else fixed
        budget = (self.cost_model.spec.usable_memory_bytes
                  * self.config.memory.target_pressure)
        floor = self.cluster.size + 1  # cannot co-locate this batch
        for m in range(1, self.cluster.size + 1):
            need = sum(self.cost_model.resident_bytes(spec, m,
                                                      alpha=alpha)
                       for spec in specs)
            if need <= budget:
                floor = m
                break
        self._floor_cache[key] = floor
        return floor

    def _specs_of(self, job_ids: tuple[str, ...]) -> list[JobSpec]:
        return [self.jobs[job_id].spec for job_id in job_ids]

    def _demand_for_ids(self, job_ids: tuple[str, ...]) -> int:
        return self.machines_for(self._specs_of(job_ids))

    def _floor_for_ids(self, job_ids: tuple[str, ...]) -> int:
        return self._memory_floor(self._specs_of(job_ids))

    def _dominated_for_ids(self, job_ids: tuple[str, ...],
                           wanted: int) -> bool:
        return self._memory_dominated(self._specs_of(job_ids), wanted)

    def _metrics_at(self, job_id: str, m: int) -> JobMetrics:
        """Exact (cost-model) metrics, as the profiler would converge."""
        key = (job_id, m)
        cached = self._metrics_cache.get(key)
        if cached is None:
            cached = exact_metrics(self.cost_model,
                                   self.jobs[job_id].spec, m)
            self._metrics_cache[key] = cached
        return cached

    def _remaining_iterations(self, job_id: str) -> int:
        return self.jobs[job_id].remaining_iterations

    def _solo_seconds(self, job_id: str, m: int) -> float:
        """Closed-form solo runtime of the remaining iterations (Eq. 1)."""
        metrics = self._metrics_at(job_id, m)
        return self.jobs[job_id].remaining_iterations \
            * metrics.t_iteration_at(m)

    def _running_views(self) -> tuple[RunningGroupView, ...]:
        """Live groups with Eq. 1 release predictions, sorted by id.

        The release prediction is frozen at group start (see
        ``_start``), *not* recomputed from live iteration counters: the
        batched fast path advances ``remaining_iterations`` in bulk, so
        observing it mid-run would make policy decisions depend on the
        simulation engine.
        """
        views = []
        for group_id in sorted(self.groups):
            group = self.groups[group_id]
            jobs = group.jobs()
            if not jobs:
                continue
            views.append(RunningGroupView(
                group_id=group_id,
                job_ids=tuple(job.job_id for job in jobs),
                n_machines=group.n_machines,
                predicted_release=self._release_predictions.get(
                    group_id, self.sim.now)))
        return tuple(views)

    # -- admission --------------------------------------------------------------

    def _observe(self) -> PolicyObservation:
        return PolicyObservation(
            now=self.sim.now,
            cluster_size=self.cluster.size,
            n_free=self.cluster.n_free,
            queue=tuple(self._queue),
            batch_demand=self._demand_for_ids,
            memory_floor=self._floor_for_ids,
            memory_dominated=self._dominated_for_ids,
            metrics_at=self._metrics_at,
            remaining_iterations=self._remaining_iterations,
            solo_seconds=self._solo_seconds,
            running=self._running_views)

    def _pump(self) -> None:
        """Ask the policy for admission passes until one makes no
        progress (the policy sees the post-start cluster each time)."""
        while True:
            decision = self.policy.decide(self._observe())
            if not decision.starts or not self._apply(decision):
                return

    def _apply(self, decision: PolicyDecision) -> bool:
        """Start every applicable group of a decision, in order.

        A start referencing jobs no longer queued, or machines no
        longer free, is skipped (policies reason about a snapshot; the
        master owns the ledger) — skipping everything ends the pump.
        """
        applied = False
        queued = set(self._queue)
        for start in decision.starts:
            ids = start.job_ids
            if len(set(ids)) != len(ids) \
                    or any(job_id not in queued for job_id in ids):
                continue
            if start.n_machines > self.cluster.n_free:
                continue
            for job_id in ids:
                self._queue.remove(job_id)
                queued.discard(job_id)
            batch = [self.jobs[job_id] for job_id in ids]
            self._start(batch, start.n_machines, start.start_offsets)
            applied = True
        return applied

    def _start(self, batch: Sequence[Job], n_machines: int,
               start_offsets: Sequence[float] | None = None) -> None:
        group_id = f"b{next(self._group_ids)}"
        machine_ids = self.cluster.allocate(n_machines, group_id)
        group = GroupRuntime(self.sim, group_id, machine_ids, self.mode,
                             self.cost_model, self.config, self.streams,
                             hooks=self)
        self.groups[group_id] = group
        # Freeze the Eq. 1 release prediction now, from decision-time
        # state only, so later observations are engine-independent.
        estimate = self._perf_model.estimate_group(
            [self._metrics_at(job.job_id, n_machines) for job in batch],
            n_machines)
        remaining = max(job.remaining_iterations for job in batch)
        self._release_predictions[group_id] = \
            self.sim.now + remaining * estimate.t_group_iteration
        self.recorder.group_started(group_id, n_machines, self.sim.now,
                                    group.cpu, group.net)
        for index, job in enumerate(batch):
            job.state = JobState.RUNNING  # queue policies do not profile
            delay = (start_offsets[index] if start_offsets is not None
                     else 0.0)
            if not group.add_job(job, start_delay=delay):
                # No spill support: the job physically does not fit.
                job.state = JobState.FAILED
                job.finish_time = self.sim.now

    # -- GroupHooks ----------------------------------------------------------------

    def on_iteration(self, job: Job, group: GroupRuntime) -> None:
        pass  # queue policies do not profile

    def on_job_finished(self, job: Job, group: GroupRuntime) -> None:
        job.transition(JobState.FINISHED)
        job.finish_time = self.sim.now
        self._teardown_if_idle(group)
        self._pump()

    def on_job_paused(self, job: Job, group: GroupRuntime) -> None:
        raise SimulationError(
            "baseline runtimes never pause jobs")  # pragma: no cover

    def on_job_failed(self, job: Job, group: GroupRuntime,
                      error: Exception) -> None:
        job.transition(JobState.FAILED)
        job.finish_time = self.sim.now
        self._teardown_if_idle(group)
        self._pump()

    def _teardown_if_idle(self, group: GroupRuntime) -> None:
        if group.is_idle and group.group_id in self.groups:
            del self.groups[group.group_id]
            self._release_predictions.pop(group.group_id, None)
            group.stop()
            self.group_audits.append(group.audit())
            self.finished_cycles.extend(group.cycles)
            self.recorder.group_stopped(group.group_id, self.sim.now)
            self.cluster.release_all(group.group_id)


class BaselineRuntime:
    """Drives one queue policy end-to-end; mirrors
    :class:`~repro.core.runtime.HarmonyRuntime`."""

    def __init__(self, n_machines: int, workload: Sequence[JobSpec],
                 mode: ExecutionMode, name: str,
                 config: SimConfig = DEFAULT_SIM_CONFIG,
                 group_size: int = 1,
                 shuffle_seed: int | None = None,
                 dop_scale: float = 1.0,
                 backfill: bool = True,
                 colocate_only_if_fits: bool = False,
                 cost_model: CostModel | None = None,
                 policy: SchedulingPolicy | None = None):
        self.config = config
        self.sim = Simulator()
        self.cluster = Cluster(n_machines, config.machine)
        self.cost_model = cost_model if cost_model is not None \
            else CostModel(config.machine)
        self.streams = RandomStreams(config.seed)
        self.recorder = ClusterUsageRecorder(
            n_machines, bin_seconds=config.utilization_bin_seconds)
        self.master = BaselineMaster(self.sim, self.cluster,
                                     self.cost_model, config, self.streams,
                                     self.recorder, mode=mode,
                                     group_size=group_size,
                                     shuffle_seed=shuffle_seed,
                                     dop_scale=dop_scale,
                                     backfill=backfill,
                                     colocate_only_if_fits=(
                                         colocate_only_if_fits),
                                     policy=policy)
        self.workload = list(workload)
        self.name = name

    def run(self, max_sim_seconds: float | None = None) -> RunResult:
        # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
        wall_start = _time.perf_counter()
        if max_sim_seconds is not None:
            # A truncated run must stop mid-job; batching a whole job
            # past the horizon would diverge from the reference engine.
            self.sim.fastpath_enabled = False
        for spec in self.workload:
            self.sim.call_at(spec.submit_time,
                             lambda s=spec: self.master.submit(s))
        self.sim.run(until=max_sim_seconds)
        stuck = [job for job in self.master.jobs.values()
                 if not job.is_done]
        if stuck and max_sim_seconds is None:
            raise SimulationError(
                f"{self.name}: {len(stuck)} jobs never finished "
                f"(first: {stuck[0].job_id} {stuck[0].state.value})")
        all_cycles = list(self.master.finished_cycles)
        for group in self.master.groups.values():
            all_cycles.extend(group.cycles)
        self.recorder.finish(self.sim.now)
        outcomes = {
            job.job_id: JobOutcome(job_id=job.job_id, state=job.state,
                                   submit_time=job.submit_time,
                                   finish_time=job.finish_time,
                                   migrations=job.migrations)
            for job in self.master.jobs.values()}
        return RunResult(
            scheduler_name=self.name,
            total_machines=self.cluster.size,
            outcomes=outcomes,
            recorder=self.recorder,
            _all_cycles=all_cycles,
            alpha_samples=[],
            # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
            wall_seconds=_time.perf_counter() - wall_start)
