"""Shared queue-driven runtime for the baseline schedulers.

Both baselines admit jobs from a FIFO queue (with backfill — a job
whose machine demand does not fit is skipped in favour of later jobs
that do, standard in cluster managers) and run them on dedicated
machine sets until completion.  What differs is the co-location degree
and the execution discipline (:class:`~repro.core.group_runtime.ExecutionMode`).
"""

from __future__ import annotations

import itertools
import time as _time
from collections.abc import Sequence

from repro.cluster.cluster import Cluster
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.group_runtime import ExecutionMode, GroupRuntime
from repro.core.job import Job, JobState
from repro.core.runtime import JobOutcome, RunResult
from repro.errors import SchedulingError, SimulationError
from repro.metrics.utilization import ClusterUsageRecorder
from repro.sim import RandomStreams, Simulator
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel

#: No job is given more machines than this, mirroring the largest DoP
#: the paper's evaluation exercises (Fig. 3 stops at 32).
MAX_DOP = 32


class BaselineMaster:
    """FIFO + backfill admission onto dedicated machine groups."""

    #: Baselines neither profile nor pause: ``on_iteration`` is a no-op
    #: and groups are only ever created, never mutated while running —
    #: the contract that lets the fast path batch their groups
    #: (:mod:`repro.sim.fastpath`).
    iteration_hooks_inert = True

    def __init__(self, sim: Simulator, cluster: Cluster,
                 cost_model: CostModel, config: SimConfig,
                 streams: RandomStreams, recorder: ClusterUsageRecorder,
                 mode: ExecutionMode, group_size: int = 1,
                 shuffle_seed: int | None = None,
                 dop_scale: float = 1.0,
                 backfill: bool = True,
                 colocate_only_if_fits: bool = False):
        if group_size < 1:
            raise SchedulingError(f"group_size must be >= 1, "
                                  f"got {group_size}")
        self.sim = sim
        self.cluster = cluster
        self.cost_model = cost_model
        self.config = config
        self.streams = streams
        self.recorder = recorder
        self.mode = mode
        self.group_size = group_size
        self.dop_scale = dop_scale
        self.backfill = backfill
        #: When set, a batch is only co-located if its no-spill memory
        #: floor does not dominate its balanced allocation (used by the
        #: §V-C ablation's "subtasks only" stage, where co-location is
        #: available but data spilling is not).
        self.colocate_only_if_fits = colocate_only_if_fits
        self.jobs: dict[str, Job] = {}
        self.groups: dict[str, GroupRuntime] = {}
        self.finished_cycles: list = []
        self._queue: list[str] = []
        self._group_ids = itertools.count()
        # machines_for/_memory_floor are pure in the batch's specs (the
        # cost model and config never change mid-run) but are re-asked
        # on every _pump pass — profiling showed the floor's linear
        # scan over resident_bytes dominating baseline wall time.
        self._machines_cache: dict[tuple[str, ...], int] = {}
        self._floor_cache: dict[tuple[str, ...], int] = {}
        self._shuffle_rng = None
        if shuffle_seed is not None:
            import numpy as np
            self._shuffle_rng = np.random.default_rng(shuffle_seed)

    # -- submission -----------------------------------------------------------

    def submit(self, spec: JobSpec) -> Job:
        if spec.job_id in self.jobs:
            raise SchedulingError(f"duplicate job id {spec.job_id}")
        job = Job(spec)
        self.jobs[spec.job_id] = job
        self._queue.append(spec.job_id)
        if self._shuffle_rng is not None:
            # The naive baseline's grouping is arbitrary; a shuffled
            # queue samples one of the "all possible cases" of §V-A.
            order = self._shuffle_rng.permutation(len(self._queue))
            self._queue = [self._queue[i] for i in order]
        self._pump()
        return job

    @property
    def all_done(self) -> bool:
        return all(job.is_done for job in self.jobs.values())

    # -- policies ---------------------------------------------------------------

    def machines_for(self, specs: Sequence[JobSpec]) -> int:
        """Dedicated machine count for a (possibly co-located) job set.

        Balances computation against communication per job — "we try to
        maximize the CPU utilization rates ... by reducing the network
        overheads that occur with lower DoP" (§V-A) — while honouring
        the no-spill memory floor.
        """
        key = tuple(spec.job_id for spec in specs)
        cached = self._machines_cache.get(key)
        if cached is not None:
            return cached
        floor = self._memory_floor(specs)
        total_work = sum(spec.cpu_work_machine_seconds for spec in specs)
        total_comm = sum(self.cost_model.profile(spec, 1).t_comm
                         for spec in specs)
        # Aggregate balance point: enough machines that the group's
        # total COMP matches its total COMM demand.
        balanced = total_work / max(total_comm, 1e-9)
        wanted = int(round(balanced * self.dop_scale))
        cap = min(MAX_DOP * len(specs), self.cluster.size)
        result = max(floor, min(cap, wanted), 1)
        self._machines_cache[key] = result
        return result

    def _memory_dominated(self, specs: Sequence[JobSpec],
                          wanted: int) -> bool:
        """Whether a batch's allocation is driven by its memory floor
        rather than by compute/communication balance."""
        total_work = sum(spec.cpu_work_machine_seconds for spec in specs)
        total_comm = sum(self.cost_model.profile(spec, 1).t_comm
                         for spec in specs)
        balanced = total_work / max(total_comm, 1e-9) * self.dop_scale
        return wanted > max(1.0, balanced) * 1.5

    def _memory_floor(self, specs: Sequence[JobSpec]) -> int:
        """Smallest DoP at which the jobs fit.

        Baseline modes do not spill (alpha = 0); when a spill ratio is
        forced through the config (the ablation's static-spill stages),
        the floor honours it.
        """
        key = tuple(spec.job_id for spec in specs)
        cached = self._floor_cache.get(key)
        if cached is not None:
            return cached
        alpha = 0.0
        if self.mode.spill_enabled and self.config.memory.spill_enabled:
            fixed = self.config.memory.fixed_alpha
            alpha = 1.0 if fixed is None else fixed
        budget = (self.cost_model.spec.usable_memory_bytes
                  * self.config.memory.target_pressure)
        floor = self.cluster.size + 1  # cannot co-locate this batch
        for m in range(1, self.cluster.size + 1):
            need = sum(self.cost_model.resident_bytes(spec, m,
                                                      alpha=alpha)
                       for spec in specs)
            if need <= budget:
                floor = m
                break
        self._floor_cache[key] = floor
        return floor

    # -- admission --------------------------------------------------------------

    def _pump(self) -> None:
        """Admit queued jobs while machines allow (FIFO + backfill)."""
        progress = True
        while progress:
            progress = False
            index = 0
            while index < len(self._queue):
                started = False
                # A batch whose memory floor exceeds the cluster (model
                # caches stack per machine) shrinks until it fits.
                for size in range(self.group_size, 0, -1):
                    batch_ids = self._queue[index:index + size]
                    batch = [self.jobs[jid] for jid in batch_ids]
                    specs = [j.spec for j in batch]
                    wanted = self.machines_for(specs)
                    if wanted > self.cluster.size:
                        continue
                    if (self.colocate_only_if_fits and size > 1
                            and self._memory_dominated(specs, wanted)):
                        continue  # co-location would be memory-driven
                    if wanted <= self.cluster.n_free:
                        del self._queue[index:index + size]
                        self._start(batch, wanted)
                        progress = True
                        started = True
                    break
                if not started:
                    if not self.backfill:
                        return  # strict FIFO: head-of-line blocks
                    # Backfill: try a later batch.
                    index += self.group_size

    def _start(self, batch: Sequence[Job], n_machines: int) -> None:
        group_id = f"b{next(self._group_ids)}"
        machine_ids = self.cluster.allocate(n_machines, group_id)
        group = GroupRuntime(self.sim, group_id, machine_ids, self.mode,
                             self.cost_model, self.config, self.streams,
                             hooks=self)
        self.groups[group_id] = group
        self.recorder.group_started(group_id, n_machines, self.sim.now,
                                    group.cpu, group.net)
        for job in batch:
            job.state = JobState.RUNNING  # baselines have no profiling
            if not group.add_job(job):
                # No spill support: the job physically does not fit.
                job.state = JobState.FAILED
                job.finish_time = self.sim.now

    # -- GroupHooks ----------------------------------------------------------------

    def on_iteration(self, job: Job, group: GroupRuntime) -> None:
        pass  # baselines do not profile

    def on_job_finished(self, job: Job, group: GroupRuntime) -> None:
        job.transition(JobState.FINISHED)
        job.finish_time = self.sim.now
        self._teardown_if_idle(group)
        self._pump()

    def on_job_paused(self, job: Job, group: GroupRuntime) -> None:
        raise SimulationError(
            "baseline runtimes never pause jobs")  # pragma: no cover

    def on_job_failed(self, job: Job, group: GroupRuntime,
                      error: Exception) -> None:
        job.transition(JobState.FAILED)
        job.finish_time = self.sim.now
        self._teardown_if_idle(group)
        self._pump()

    def _teardown_if_idle(self, group: GroupRuntime) -> None:
        if group.is_idle and group.group_id in self.groups:
            del self.groups[group.group_id]
            group.stop()
            self.finished_cycles.extend(group.cycles)
            self.recorder.group_stopped(group.group_id, self.sim.now)
            self.cluster.release_all(group.group_id)


class BaselineRuntime:
    """Drives one baseline end-to-end; mirrors
    :class:`~repro.core.runtime.HarmonyRuntime`."""

    def __init__(self, n_machines: int, workload: Sequence[JobSpec],
                 mode: ExecutionMode, name: str,
                 config: SimConfig = DEFAULT_SIM_CONFIG,
                 group_size: int = 1,
                 shuffle_seed: int | None = None,
                 dop_scale: float = 1.0,
                 backfill: bool = True,
                 colocate_only_if_fits: bool = False,
                 cost_model: CostModel | None = None):
        self.config = config
        self.sim = Simulator()
        self.cluster = Cluster(n_machines, config.machine)
        self.cost_model = cost_model if cost_model is not None \
            else CostModel(config.machine)
        self.streams = RandomStreams(config.seed)
        self.recorder = ClusterUsageRecorder(
            n_machines, bin_seconds=config.utilization_bin_seconds)
        self.master = BaselineMaster(self.sim, self.cluster,
                                     self.cost_model, config, self.streams,
                                     self.recorder, mode=mode,
                                     group_size=group_size,
                                     shuffle_seed=shuffle_seed,
                                     dop_scale=dop_scale,
                                     backfill=backfill,
                                     colocate_only_if_fits=(
                                         colocate_only_if_fits))
        self.workload = list(workload)
        self.name = name

    def run(self, max_sim_seconds: float | None = None) -> RunResult:
        # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
        wall_start = _time.perf_counter()
        if max_sim_seconds is not None:
            # A truncated run must stop mid-job; batching a whole job
            # past the horizon would diverge from the reference engine.
            self.sim.fastpath_enabled = False
        for spec in self.workload:
            self.sim.call_at(spec.submit_time,
                             lambda s=spec: self.master.submit(s))
        self.sim.run(until=max_sim_seconds)
        stuck = [job for job in self.master.jobs.values()
                 if not job.is_done]
        if stuck and max_sim_seconds is None:
            raise SimulationError(
                f"{self.name}: {len(stuck)} jobs never finished "
                f"(first: {stuck[0].job_id} {stuck[0].state.value})")
        all_cycles = list(self.master.finished_cycles)
        for group in self.master.groups.values():
            all_cycles.extend(group.cycles)
        self.recorder.finish(self.sim.now)
        outcomes = {
            job.job_id: JobOutcome(job_id=job.job_id, state=job.state,
                                   submit_time=job.submit_time,
                                   finish_time=job.finish_time,
                                   migrations=job.migrations)
            for job in self.master.jobs.values()}
        return RunResult(
            scheduler_name=self.name,
            total_machines=self.cluster.size,
            outcomes=outcomes,
            recorder=self.recorder,
            _all_cycles=all_cycles,
            alpha_samples=[],
            # harmony: allow[DET001] wall_seconds measures real runtime, never simulation state
            wall_seconds=_time.perf_counter() - wall_start)
