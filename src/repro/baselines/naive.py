"""The *naively co-located* baseline (§V-A).

"The naively co-located baseline naively shares resources between the
co-located jobs ... the different combinations of jobs and the
different allocations of resources cause greater variance in the
performance ... This baseline represents the approach introduced in
Gandiva, which has no fine coordination between co-located jobs and an
analytical basis for job grouping."

Jobs are packed ``group_size`` at a time in queue order (shuffled per
seed to sample the "all possible cases" the paper sweeps); inside a
group their subtasks contend via processor sharing with an interference
penalty, and there is no data spilling — exceeding memory is an OOM
failure, exactly the Fig. 4 behaviour.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.baselines.base import BaselineRuntime
from repro.config import DEFAULT_SIM_CONFIG, SimConfig
from repro.core.group_runtime import ExecutionMode
from repro.core.runtime import RunResult
from repro.workloads.apps import JobSpec
from repro.workloads.costmodel import CostModel


class NaiveRuntime(BaselineRuntime):
    """Uncoordinated co-location (Gandiva style)."""

    def __init__(self, n_machines: int, workload: Sequence[JobSpec],
                 config: SimConfig = DEFAULT_SIM_CONFIG,
                 group_size: int = 2,
                 shuffle_seed: int | None = 0,
                 dop_scale: float = 0.4,
                 cost_model: CostModel | None = None):
        super().__init__(n_machines, workload,
                         mode=ExecutionMode.NAIVE,
                         name="naive",
                         config=config,
                         group_size=group_size,
                         shuffle_seed=shuffle_seed,
                         dop_scale=dop_scale,
                         cost_model=cost_model)


def run_naive_cases(n_machines: int, workload: Sequence[JobSpec],
                    config: SimConfig = DEFAULT_SIM_CONFIG,
                    n_cases: int = 5,
                    group_sizes: Sequence[int] = (2, 2, 3)) -> \
        list[RunResult]:
    """Sample several naive groupings, as §V-A "run[s] all possible
    cases, and report[s] the best and the worst case".

    Exhaustively enumerating every grouping of 80 jobs is intractable;
    sampled shuffles across several co-location degrees reproduce the
    best/avg/worst spread of Fig. 10.
    """
    results = []
    rng = np.random.default_rng(config.seed)
    for case in range(n_cases):
        group_size = int(group_sizes[case % len(group_sizes)])
        seed = int(rng.integers(0, 2**31 - 1))
        runtime = NaiveRuntime(n_machines, workload, config=config,
                               group_size=group_size, shuffle_seed=seed)
        results.append(runtime.run())
    return results


def best_and_worst(results: Sequence[RunResult],
                   baseline_jct: float) -> tuple[RunResult, RunResult]:
    """The best/worst cases by JCT speedup (the Fig. 10 error bar)."""
    if not results:
        raise ValueError("no naive cases to compare")
    ordered = sorted(results, key=lambda r: baseline_jct / r.mean_jct)
    return ordered[-1], ordered[0]
