"""Cross-cell rebalancer: drain hot cells into cold ones.

Sticky routing (:mod:`repro.shard.placer`) keeps arrivals cheap but
lets cells drift apart as jobs depart unevenly.  Every
``ShardConfig.rebalance_every`` schedule calls the sharded scheduler
asks :func:`plan_moves` for a bounded set of job migrations from cells
whose normalized load exceeds the mean by
``ShardConfig.rebalance_threshold``, then applies them through the
existing §IV-B4 migration path: the donor's memoized plan is *spliced*
(:func:`repro.core.regroup.splice_plan` drops the job from its group
and re-scores) so the donor never re-runs Algorithm 1, while the
receiving cell re-plans on the next schedule call because its job
tuple changed.

Everything here is pure planning over ``(load, cell_index)`` scalars —
O(#cells log #cells + moves), never O(#machines).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.profiler import JobMetrics
from repro.shard.placer import job_weight


@dataclass(frozen=True)
class ShardMove:
    """One planned migration: ``job`` leaves ``source`` for ``target``."""

    job: JobMetrics
    source: int
    target: int


def plan_moves(cell_jobs: Sequence[Sequence[JobMetrics]],
               cell_machines: Sequence[int],
               cpu_weight: float,
               threshold: float,
               max_moves: int) -> list[ShardMove]:
    """Plan migrations until no cell is hot (or the move budget is spent).

    A cell is *hot* when its normalized load exceeds
    ``(1 + threshold) * mean``.  Each step moves the hottest cell's
    most recent job (last in pool order — the cheapest to uproot, as
    the stickiest jobs keep their warm groups) to the coldest cell.
    Loads are updated incrementally, so the loop is deterministic in
    cell order and job order alone.
    """
    n_cells = len(cell_machines)
    if n_cells < 2 or max_moves <= 0:
        return []
    pending = [list(members) for members in cell_jobs]
    weights = [[job_weight(job, cpu_weight) for job in members]
               for members in pending]
    loads = [sum(cell_weights) / machines
             for cell_weights, machines
             in zip(weights, cell_machines, strict=True)]
    total = sum(load * machines for load, machines
                in zip(loads, cell_machines, strict=True))
    mean = total / sum(cell_machines)
    if mean <= 0.0:
        return []
    hot_bar = (1.0 + threshold) * mean
    moves: list[ShardMove] = []
    while len(moves) < max_moves:
        source = max(range(n_cells), key=lambda c: (loads[c], -c))
        if loads[source] <= hot_bar or len(pending[source]) <= 1:
            break
        target = min(range(n_cells), key=lambda c: (loads[c], c))
        if target == source:
            break
        job = pending[source].pop()
        weight = weights[source].pop()
        shed = weight / cell_machines[source]
        gained = weight / cell_machines[target]
        # Refuse moves that would just swap which cell is hot.
        if loads[target] + gained > loads[source] - shed:
            pending[source].append(job)
            weights[source].append(weight)
            break
        loads[source] -= shed
        loads[target] += gained
        pending[target].append(job)
        weights[target].append(weight)
        moves.append(ShardMove(job=job, source=source, target=target))
    return moves
