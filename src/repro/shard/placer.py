"""Global placer: O(#cells) job routing for the sharded scheduler.

The placer is the only component that sees every job, and it never
scans machines: it keeps one scalar load per cell (a weighted-work
proxy normalized by the cell's machine count) and routes each *new*
job to the least-loaded cell with a heap keyed on
``(load, cell_index)``.  Routing is sticky — a job stays in its cell
across calls until it departs or the rebalancer moves it — so a
single arrival perturbs exactly one cell and every other cell's
memoized plan survives (:mod:`repro.shard.cells`).

Everything is deterministic: jobs are considered in pool order, heap
ties break on the cell index, and no container is iterated in hash
order (the routing digest is pinned under varying ``PYTHONHASHSEED``
by ``tests/test_shard.py``).
"""

from __future__ import annotations

import heapq
from collections.abc import Sequence

from repro.core.profiler import JobMetrics
from repro.core.scheduler import ORDERING_DOP
from repro.trace.tracer import NULL_TRACER, NullTracer, Tracer


def job_weight(job: JobMetrics, cpu_weight: float) -> float:
    """Scalar load proxy of one job.

    Mirrors the scheduler's scoring split: CPU work dominates with the
    configured ``cpu_weight``, and the network term is scaled by the
    ordering DoP so both sides are in comparable per-machine seconds.
    """
    return cpu_weight * job.cpu_work \
        + (1.0 - cpu_weight) * job.t_net * ORDERING_DOP


class GlobalPlacer:
    """Sticky job→cell router with O(#cells) state.

    ``route()`` takes the current job pool and returns the per-cell job
    tuples (pool order preserved inside each cell).  The sticky
    assignment map is pruned once it outgrows the live pool, so memory
    stays proportional to the pool even under heavy churn.
    """

    def __init__(self, cell_machines: Sequence[int],
                 cpu_weight: float = 0.75,
                 tracer: "Tracer | NullTracer | None" = None):
        self.cell_machines = tuple(cell_machines)
        if not self.cell_machines or min(self.cell_machines) < 1:
            raise ValueError(
                f"every cell needs >= 1 machine, got {cell_machines}")
        self.cpu_weight = cpu_weight
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: job_id -> cell index; insertion-ordered, never hash-iterated.
        self._assignment: dict[str, int] = {}

    @property
    def n_cells(self) -> int:
        return len(self.cell_machines)

    def cell_of(self, job_id: str) -> int | None:
        """Cell the job is currently routed to, or None if unknown."""
        return self._assignment.get(job_id)

    def reassign(self, job_id: str, cell_index: int) -> None:
        """Pin a job to a cell (the rebalancer's migration hook)."""
        if not 0 <= cell_index < self.n_cells:
            raise ValueError(
                f"cell {cell_index} out of range 0..{self.n_cells - 1}")
        self._assignment[job_id] = cell_index

    def loads(self, jobs: Sequence[JobMetrics]) -> list[float]:
        """Per-cell normalized load of the already-routed jobs."""
        loads = [0.0] * self.n_cells
        for job in jobs:
            cell = self._assignment.get(job.job_id)
            if cell is not None:
                loads[cell] += job_weight(job, self.cpu_weight)
        return [load / machines for load, machines
                in zip(loads, self.cell_machines, strict=True)]

    def route(self, jobs: Sequence[JobMetrics]) -> \
            list[tuple[JobMetrics, ...]]:
        """Split the pool into per-cell job tuples, routing new jobs.

        Known jobs keep their cell; new jobs go to the least-loaded
        cell at the moment they are considered (pool order), via a
        heap of ``(load, cell_index)`` entries — ties break on the
        cell index, never on object identity or hash order.
        """
        by_cell: list[list[JobMetrics]] = \
            [[] for _ in range(self.n_cells)]
        new_jobs: list[JobMetrics] = []
        for job in jobs:
            cell = self._assignment.get(job.job_id)
            if cell is None:
                new_jobs.append(job)
            else:
                by_cell[cell].append(job)
        if new_jobs:
            loads = [0.0] * self.n_cells
            for cell, members in enumerate(by_cell):
                for job in members:
                    loads[cell] += job_weight(job, self.cpu_weight)
            heap = [(load / machines, cell)
                    for cell, (load, machines)
                    in enumerate(zip(loads, self.cell_machines,
                                     strict=True))]
            heapq.heapify(heap)
            for job in new_jobs:
                load, cell = heapq.heappop(heap)
                self._assignment[job.job_id] = cell
                by_cell[cell].append(job)
                load += job_weight(job, self.cpu_weight) \
                    / self.cell_machines[cell]
                heapq.heappush(heap, (load, cell))
            self.tracer.instant(
                "placer.route", cat="shard",
                args={"new_jobs": len(new_jobs),
                      "pool": len(jobs)})
        if len(self._assignment) > 2 * len(jobs) + 64:
            live = {job.job_id for job in jobs}
            self._assignment = {
                job_id: cell
                for job_id, cell in self._assignment.items()
                if job_id in live}
        # New jobs landed after the stickies inside each cell; restore
        # pool order so per-cell admission matches an unsharded pool.
        if new_jobs:
            order = {job.job_id: index
                     for index, job in enumerate(jobs)}
            for members in by_cell:
                members.sort(key=lambda job: order[job.job_id])
        return [tuple(members) for members in by_cell]
