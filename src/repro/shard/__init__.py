"""Cluster-of-cells sharding: per-cell Harmony behind a global placer.

The ROADMAP's scale jump past the paper's 1,000-machine §V-F sweep:
partition the machine pool into cells, run one independent Algorithm 1
per cell, route jobs with O(#cells) load vectors, and rebalance hot
cells through the §IV-B4 migration path.  ``SimConfig.with_sharding``
turns it on; ``python -m repro scale`` runs the cells × cluster-size
sweep.
"""

from repro.shard.cells import Cell, partition_machines
from repro.shard.placer import GlobalPlacer, job_weight
from repro.shard.rebalance import ShardMove, plan_moves
from repro.shard.scheduler import ShardedScheduler

__all__ = [
    "Cell",
    "GlobalPlacer",
    "ShardMove",
    "ShardedScheduler",
    "job_weight",
    "partition_machines",
    "plan_moves",
]
