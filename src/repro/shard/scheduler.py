"""Sharded scheduling: cells behind a global placer.

:class:`ShardedScheduler` is a drop-in for
:class:`~repro.core.scheduler.HarmonyScheduler` — same constructor
seam (``perf_model=``/``config=``/``memory_floor=``), same
``schedule(jobs, total_machines)`` contract, same ``last_stats`` /
``plan_cache`` attributes the master introspects — that partitions the
machine pool into :class:`~repro.shard.cells.Cell` shards and runs one
independent Algorithm 1 per cell:

* The :class:`~repro.shard.placer.GlobalPlacer` sticks each job to a
  cell with O(#cells) load vectors, so one arrival dirties exactly one
  cell; every clean cell answers from its memoized plan without
  touching Algorithm 1 at all.  That is where the speedup lives: an
  unsharded scheduler re-plans the *whole* pool per arrival, a sharded
  one re-plans ``1/n_cells`` of it (see
  ``benchmarks/bench_scalability.py``).
* Cold calls (every cell dirty) fan out over a
  ``concurrent.futures.ThreadPoolExecutor`` when
  ``ShardConfig.max_workers > 1``.  Cells share nothing mutable, and
  results are merged in cell order, so serial and parallel modes are
  pinned plan-equal by ``tests/test_shard.py``.
* Every ``ShardConfig.rebalance_every`` calls the
  :mod:`~repro.shard.rebalance` pass drains hot cells; donors keep
  their plans through the §IV-B4 splice
  (:func:`repro.core.regroup.splice_plan`) instead of re-planning.

With ``n_cells = 1`` (or a machine pool smaller than the cell count)
every call delegates to a single plain ``HarmonyScheduler``, which the
differential suite pins bitwise-equal to the unsharded scheduler.
"""

from __future__ import annotations

from collections.abc import Sequence
from concurrent.futures import ThreadPoolExecutor
from functools import partial

from repro.config import ShardConfig
from repro.core.allocation import MemoryFloorFn
from repro.core.perfmodel import PerfModel
from repro.core.profiler import JobMetrics
from repro.core.regroup import splice_plan
from repro.core.scheduler import (
    HarmonyScheduler,
    SchedulePlan,
    SchedulerConfig,
    ScheduleStats,
)
from repro.errors import SchedulingError
from repro.shard.cells import Cell, partition_machines
from repro.shard.placer import GlobalPlacer
from repro.shard.rebalance import ShardMove, plan_moves
from repro.trace.tracer import NULL_TRACER


class _ShardPlanCache:
    """``invalidate_job`` facade over every cell's private plan cache.

    The master wires ``profiler.add_listener(plan_cache.invalidate_job)``
    against whatever ``scheduler.plan_cache`` exposes; this forwards
    each publish to the solo delegate and all cells, and drops the
    affected cell's memoized last plan (its job tuple is about to stop
    matching anyway, but the underlying prefix caches key on
    fingerprints and must be told explicitly).
    """

    def __init__(self, owner: "ShardedScheduler"):
        self._owner = owner

    def invalidate_job(self, job_id: str) -> None:
        solo_cache = self._owner._solo.plan_cache
        if solo_cache is not None:
            solo_cache.invalidate_job(job_id)
        for cell in self._owner._cells:
            cache = cell.scheduler.plan_cache
            if cache is not None:
                cache.invalidate_job(job_id)
            if cell.last_key is not None and any(
                    job.job_id == job_id for job in cell.last_key[0]):
                cell.forget()


class ShardedScheduler:
    """Cluster-of-cells front end over per-cell Harmony schedulers."""

    def __init__(self, perf_model: PerfModel | None = None,
                 config: SchedulerConfig | None = None,
                 memory_floor: MemoryFloorFn | None = None,
                 shard: ShardConfig | None = None,
                 tracer=None):
        self.config = config if config is not None else SchedulerConfig()
        self.perf_model = perf_model if perf_model is not None \
            else PerfModel(cpu_weight=self.config.cpu_weight)
        self.memory_floor = memory_floor
        self.shard = shard if shard is not None else ShardConfig()
        if self.shard.n_cells < 1:
            raise SchedulingError(
                f"n_cells must be >= 1, got {self.shard.n_cells}")
        if self.shard.max_workers < 1:
            raise SchedulingError(
                f"max_workers must be >= 1, got {self.shard.max_workers}")
        tracer = tracer if tracer is not None else NULL_TRACER
        self._trace = tracer if tracer.enabled else None
        self._trace_track = (
            tracer.track("shard", "cells", process_sort=1)
            if self._trace is not None else None)
        #: Delegate for the inert configurations (``n_cells == 1`` or a
        #: pool too small to split) — pinned bitwise-equal to an
        #: unsharded ``HarmonyScheduler`` because it *is* one.
        self._solo = HarmonyScheduler(perf_model=self.perf_model,
                                      config=self.config,
                                      memory_floor=memory_floor)
        self._cells: list[Cell] = []
        self._placer: GlobalPlacer | None = None
        self._total_machines: int | None = None
        self._calls = 0
        #: Shape of the most recent call, mirroring the unsharded
        #: scheduler's attribute (aggregated across cells).
        self.last_stats: ScheduleStats | None = None
        self.plan_cache = _ShardPlanCache(self)
        #: Rebalance accounting, for experiments and tests.
        self.jobs_rebalanced = 0

    # -- cell pool ---------------------------------------------------------

    def _rebuild_cells(self, total_machines: int) -> None:
        machines = partition_machines(total_machines, self.shard.n_cells)
        self._cells = [
            Cell(index, n_machines, perf_model=self.perf_model,
                 config=self.config, memory_floor=self.memory_floor)
            for index, n_machines in enumerate(machines)]
        self._placer = GlobalPlacer(
            machines, cpu_weight=self.config.cpu_weight,
            tracer=self._trace if self._trace is not None
            else NULL_TRACER)
        self._total_machines = total_machines

    # -- the schedule contract --------------------------------------------

    def schedule(self, jobs: Sequence[JobMetrics],
                 total_machines: int) -> SchedulePlan | None:
        """Route, (re)plan dirty cells, merge in cell order."""
        if total_machines < 1:
            raise SchedulingError(
                f"total_machines must be >= 1, got {total_machines}")
        if not jobs:
            return None
        if self.shard.n_cells == 1 or total_machines < self.shard.n_cells:
            plan = self._solo.schedule(jobs, total_machines)
            self.last_stats = self._solo.last_stats
            return plan
        if self._total_machines != total_machines:
            self._rebuild_cells(total_machines)
        self._calls += 1
        routed = self._placer.route(jobs)
        if (self.shard.rebalance_every > 0
                and self._calls % self.shard.rebalance_every == 0):
            routed = self._rebalance(routed, jobs)
        plans, stats, n_skipped = self._schedule_cells(routed)
        merged = self._merge(plans, total_machines)
        self.last_stats = ScheduleStats(
            n_jobs_offered=len(jobs),
            n_prefixes_evaluated=sum(
                s.n_prefixes_evaluated for s in stats),
            best_n_groups=len(merged.groups) if merged is not None else 0,
            best_n_jobs=(len(merged.scheduled_job_ids)
                         if merged is not None else 0),
            best_score=merged.score if merged is not None else 0.0,
            cache_hits=sum(s.cache_hits for s in stats),
            cache_misses=sum(s.cache_misses for s in stats),
            warm_start_reuses=sum(s.warm_start_reuses for s in stats),
            fast_path=(n_skipped > 0
                       or any(s.fast_path for s in stats)))
        return merged

    def _schedule_cells(self, routed: Sequence[tuple[JobMetrics, ...]]) \
            -> tuple[list[SchedulePlan | None], list[ScheduleStats], int]:
        """Run Algorithm 1 in every dirty cell; skip clean ones.

        Dirty cells fan out over a thread pool when configured; each
        cell's scheduler instance sees the same call sequence either
        way, so serial and parallel modes produce equal plans.
        """
        occupied = sum(1 for members in routed if members)
        dirty = [cell for cell, members
                 in zip(self._cells, routed, strict=True)
                 if members and not cell.unchanged(members)]
        if self._trace is not None:
            self._trace.counter("shard.cells_rescheduled").add(len(dirty))
        if len(dirty) > 1 and self.shard.max_workers > 1:
            with ThreadPoolExecutor(
                    max_workers=self.shard.max_workers) as pool:
                futures = [
                    # One submit per cell: each mutates only its own
                    # scheduler; the shared perf_model/config stay
                    # read-only during schedule.
                    # harmony: allow[CONC002] cells share nothing mutable
                    pool.submit(cell.scheduler.schedule,
                                routed[cell.index], cell.n_machines)
                    for cell in dirty]
                for cell, future in zip(dirty, futures, strict=True):
                    self._finish_cell(cell, routed[cell.index],
                                      future.result)
        else:
            for cell in dirty:
                self._finish_cell(cell, routed[cell.index],
                                  partial(cell.scheduler.schedule,
                                          routed[cell.index],
                                          cell.n_machines))
        plans = [cell.last_plan if members else None
                 for cell, members
                 in zip(self._cells, routed, strict=True)]
        stats = [cell.scheduler.last_stats for cell in dirty
                 if cell.scheduler.last_stats is not None]
        return plans, stats, occupied - len(dirty)

    def _finish_cell(self, cell: Cell, members: tuple[JobMetrics, ...],
                     result) -> None:
        """Resolve one dirty cell's plan under a per-cell trace span.

        ``result`` is a no-arg callable (a bound ``schedule`` in serial
        mode, a future's ``.result`` in parallel mode) so the span —
        emitted from the coordinator thread only — covers the compute
        or the wait, whichever this mode pays.
        """
        if self._trace is None:
            cell.remember(members, result())
            return
        span = self._trace.begin(self._trace_track,
                                 f"cell·{cell.index}", cat="shard")
        plan = result()
        self._trace.end(span, args={
            "jobs": len(members),
            "placed": (len(plan.scheduled_job_ids)
                       if plan is not None else 0)})
        cell.remember(members, plan)

    def _merge(self, plans: Sequence[SchedulePlan | None],
               total_machines: int) -> SchedulePlan | None:
        """Concatenate per-cell groups and re-score at pool scope.

        Pure arithmetic over the cells' group estimates, in fixed cell
        order — the merge itself can never perturb a plan, so equal
        per-cell plans imply an equal merged plan.
        """
        groups = tuple(group for plan in plans if plan is not None
                       for group in plan.groups)
        if not groups:
            return None
        utilization = self.perf_model.cluster_utilization(
            [group.estimate for group in groups],
            total_machines=total_machines)
        return SchedulePlan(groups=groups, utilization=utilization,
                            score=self.perf_model.score(utilization),
                            total_machines=total_machines)

    # -- rebalancing -------------------------------------------------------

    def _rebalance(self, routed: list[tuple[JobMetrics, ...]],
                   jobs: Sequence[JobMetrics]) \
            -> list[tuple[JobMetrics, ...]]:
        """Apply the cross-cell drain pass to this call's routing."""
        moves = plan_moves(
            routed, [cell.n_machines for cell in self._cells],
            cpu_weight=self.config.cpu_weight,
            threshold=self.shard.rebalance_threshold,
            max_moves=self.shard.max_rebalance_moves)
        if not moves:
            return routed
        members = [list(cell_members) for cell_members in routed]
        for move in moves:
            self._placer.reassign(move.job.job_id, move.target)
            members[move.source].remove(move.job)
            members[move.target].append(move.job)
        # Receivers take migrants at the pool-order position an
        # unsharded admission would see them in.
        order = {job.job_id: index for index, job in enumerate(jobs)}
        for target in sorted({move.target for move in moves}):
            members[target].sort(key=lambda job: order[job.job_id])
        rerouted = [tuple(cell_members) for cell_members in members]
        for source in sorted({move.source for move in moves}):
            self._patch_donor(
                self._cells[source], routed[source], rerouted[source],
                [move for move in moves if move.source == source])
        self.jobs_rebalanced += len(moves)
        if self._trace is not None:
            self._trace.instant(
                "shard.rebalance", cat="shard", track=self._trace_track,
                args={"moves": len(moves)})
            self._trace.counter("shard.jobs_moved").add(len(moves))
        return rerouted

    def _patch_donor(self, cell: Cell,
                     before: tuple[JobMetrics, ...],
                     after: tuple[JobMetrics, ...],
                     moves: Sequence[ShardMove]) -> None:
        """Keep the donor's memoized plan alive through the §IV-B4 splice.

        Each departing job is dropped from its group and the plan
        re-scored (:func:`splice_plan`); the patch is accepted only
        while the score stays within the regroup-benefit threshold of
        the original, mirroring the master's patch-vs-escalate rule.
        On any mismatch the memo is simply forgotten and the donor
        re-plans on this call — correct, just slower.
        """
        plan = cell.last_plan
        if plan is None or cell.last_key is None \
                or cell.last_key[0] != before:
            cell.forget()
            return
        metrics_by_id = {job.job_id: job for job in before}
        for move in moves:
            group_index = next(
                (index for index, group in enumerate(plan.groups)
                 if move.job.job_id in group.job_ids), None)
            if group_index is None:
                continue  # never placed; dropping it changes nothing
            plan = splice_plan(plan, self.perf_model, group_index,
                               move.job.job_id, (),
                               metrics_for=metrics_by_id.__getitem__)
        threshold = self.config.regroup_benefit_threshold
        if plan.score < cell.last_plan.score * (1.0 - threshold):
            cell.forget()
            return
        cell.remember(after, plan)
