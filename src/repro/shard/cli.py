"""``python -m repro scale`` — the sharded scalability sweep.

Runs :func:`repro.experiments.scalability.run_sharded` over a grid of
cell counts and cluster sizes, prints the table, and (optionally)
checks a speedup floor so the sweep can double as a smoke gate::

    python -m repro scale --cells 1,8,32 --sizes 8000x10000,32000x40000
    python -m repro scale --workers 4 --churn 32
    python -m repro scale --min-speedup 3.0   # exit 1 below the floor
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments import scalability


def _parse_sizes(text: str) -> tuple[tuple[int, int], ...]:
    """``"8000x10000,32000x40000"`` -> ((8000, 10000), ...)."""
    sizes = []
    for part in text.split(","):
        jobs, sep, machines = part.strip().partition("x")
        if not sep:
            raise argparse.ArgumentTypeError(
                f"size {part!r} is not of the form <jobs>x<machines>")
        sizes.append((int(jobs), int(machines)))
    return tuple(sizes)


def _parse_cells(text: str) -> tuple[int, ...]:
    return tuple(int(part) for part in text.split(","))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scale",
        description="Cells x cluster-size sweep of the sharded "
                    "scheduler (repro.shard) in the online-churn "
                    "setting (one job arrival + one profile republish "
                    "per step).")
    parser.add_argument("--cells", type=_parse_cells, default=(1, 8),
                        help="comma-separated cell counts "
                             "(include 1 for the unsharded baseline; "
                             "default 1,8)")
    parser.add_argument("--sizes", type=_parse_sizes,
                        default=((1000, 2000), (8000, 10_000)),
                        help="comma-separated <jobs>x<machines> pairs "
                             "(default 1000x2000,8000x10000)")
    parser.add_argument("--churn", type=int, default=16,
                        help="online churn steps after the cold call, "
                             "each one arrival + one profile republish "
                             "(default 16)")
    parser.add_argument("--workers", type=int, default=1,
                        help="thread-pool width for cold per-cell "
                             "fan-out (1 = serial; plan-equal either "
                             "way)")
    parser.add_argument("--seed", type=int, default=2021,
                        help="workload seed")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit 1 unless the largest size's "
                             "unsharded/sharded total-seconds ratio "
                             "reaches this floor")
    args = parser.parse_args(argv)

    result = scalability.run_sharded(
        sizes=args.sizes, cells=args.cells, churn_steps=args.churn,
        max_workers=args.workers, seed=args.seed)
    print(scalability.report_sharded(result))
    speedup = result.speedup_at_largest
    if speedup > 0.0:
        print(f"[speedup at largest size: {speedup:.1f}x "
              "(unsharded total / best sharded total)]")
    if args.min_speedup is not None and speedup < args.min_speedup:
        print(f"FAIL: speedup {speedup:.2f}x below the "
              f"--min-speedup {args.min_speedup:.2f}x floor",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - manual driver
    raise SystemExit(main())
