"""Cells: the machine pool partitioned into independent shards.

A *cell* is a fixed-size slice of the machine pool owned by one
independent :class:`~repro.core.scheduler.HarmonyScheduler` instance —
its own Algorithm 1, its own :class:`~repro.core.scheduler.PlanCache`,
its own warm-start state.  Cells never see each other's jobs or
machines, which is exactly what makes cold full-schedule calls across
cells embarrassingly parallel and per-arrival re-planning local to one
cell (:mod:`repro.shard.scheduler`).
"""

from __future__ import annotations

from repro.cluster.cluster import split_machine_counts
from repro.core.allocation import MemoryFloorFn
from repro.core.perfmodel import PerfModel
from repro.core.profiler import JobMetrics
from repro.core.scheduler import HarmonyScheduler, SchedulePlan
from repro.errors import ClusterError, SchedulingError


def partition_machines(total_machines: int,
                       n_cells: int) -> tuple[int, ...]:
    """Near-equal machine counts per cell, deterministically.

    Delegates to the cluster layer's canonical split
    (:func:`repro.cluster.cluster.split_machine_counts`), translated to
    the scheduler layer's error type.  Requires ``total_machines >=
    n_cells`` (every cell needs at least one machine; the sharded
    scheduler falls back to its solo path for smaller budgets).
    """
    try:
        return split_machine_counts(total_machines, n_cells)
    except ClusterError as error:
        raise SchedulingError(str(error)) from error


class Cell:
    """One shard: an index, a machine count, and a private scheduler.

    ``last_key``/``last_plan`` memoize the most recent ``schedule()``
    outcome so an unchanged cell (same job tuple, same machine count)
    is skipped entirely on the next sharded call — the device that
    makes one arrival cost one cell re-plan instead of #cells.  The
    tuple comparison uses element identity fast paths (the master and
    the sweep reuse :class:`JobMetrics` objects until the profiler
    republishes them), and a republished job is a *new* object with new
    values, so a stale hit is impossible.
    """

    __slots__ = ("index", "n_machines", "scheduler", "last_key",
                 "last_plan")

    def __init__(self, index: int, n_machines: int,
                 perf_model: PerfModel,
                 config, memory_floor: MemoryFloorFn | None = None):
        self.index = index
        self.n_machines = n_machines
        self.scheduler = HarmonyScheduler(perf_model=perf_model,
                                          config=config,
                                          memory_floor=memory_floor)
        #: ``(jobs tuple, n_machines)`` of the last schedule, or None.
        self.last_key: tuple | None = None
        self.last_plan: SchedulePlan | None = None

    def unchanged(self, jobs: tuple[JobMetrics, ...]) -> bool:
        """Whether the memoized plan still answers for ``jobs``."""
        return self.last_key is not None \
            and self.last_key[1] == self.n_machines \
            and self.last_key[0] == jobs

    def remember(self, jobs: tuple[JobMetrics, ...],
                 plan: SchedulePlan | None) -> None:
        self.last_key = (jobs, self.n_machines)
        self.last_plan = plan

    def forget(self) -> None:
        self.last_key = None
        self.last_plan = None
