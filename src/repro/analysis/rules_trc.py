"""TRC — trace-hygiene rules.

TRC001 keeps span begin/end balanced on every control path (an
unbalanced span corrupts the Perfetto nesting for its whole track and
trips the ``open_spans == 0`` run invariant).  TRC002/TRC003 pin every
metric and span name emitted anywhere in the tree to the declared
registry in :mod:`repro.trace.names`, so a typo creates a lint error
instead of a silent new lane.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.findings import Finding, Rule
from repro.analysis.visitors import (
    BaseRule,
    FileContext,
    functions_of,
    register,
)
from repro.trace import names as declared

#: Methods whose first literal argument is a metric name.
_METRIC_METHODS = {"counter": declared.COUNTER_NAMES,
                   "gauge": declared.GAUGE_NAMES,
                   "instant": declared.INSTANT_NAMES,
                   "_instant": declared.INSTANT_NAMES}

#: Keyword arguments that carry a gauge name to a resource.
_GAUGE_KEYWORDS = {"trace_gauge"}


def _literal_or_pattern(node: ast.expr) -> str | None:
    """A string literal verbatim, or an f-string reduced to a
    ``*``-pattern (one ``*`` per interpolated field); None when the
    name is fully dynamic (a variable)."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    if isinstance(node, ast.JoinedStr):
        parts: list[str] = []
        for value in node.values:
            if isinstance(value, ast.Constant):
                parts.append(str(value.value))
            else:
                parts.append("*")
        return "".join(parts)
    return None


@register
class SpanBalanceRule(BaseRule):
    rule = Rule("TRC001",
                "span begin without a guaranteed matching end "
                "(unbalanced on some control path)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        for function in functions_of(ctx.tree):
            yield from self._check_function(ctx, function)

    def _check_function(self, ctx: FileContext,
                        function: ast.AST) -> Iterable[Finding]:
        begins: list[tuple[str, ast.Call]] = []
        ended: dict[str, int] = {}
        finally_ranges: list[tuple[int, int]] = []
        for node in ast.walk(function):
            if isinstance(node, ast.Try) and node.finalbody:
                first = node.finalbody[0]
                last = node.finalbody[-1]
                finally_ranges.append(
                    (first.lineno,
                     getattr(last, "end_lineno", last.lineno)))
            if isinstance(node, ast.Assign) and \
                    isinstance(node.value, ast.Call) and \
                    self._is_tracer_method(node.value, "begin"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        begins.append((target.id, node.value))
            elif isinstance(node, ast.Call) and \
                    self._is_tracer_method(node, "end"):
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        ended.setdefault(arg.id, node.lineno)

        for handle, begin_call in begins:
            end_line = ended.get(handle)
            if end_line is None:
                yield ctx.finding(
                    self.rule, begin_call,
                    f"span handle {handle!r} is begun but never "
                    f"passed to end()")
                continue
            in_finally = any(low <= end_line <= high
                             for low, high in finally_ranges)
            if in_finally:
                continue
            for node in ast.walk(function):
                if isinstance(node, (ast.Return, ast.Raise)) and \
                        begin_call.lineno < node.lineno < end_line:
                    yield ctx.finding(
                        self.rule, node,
                        f"early exit between begin and end of span "
                        f"handle {handle!r}; close it in a finally "
                        f"block")
                    break

    @staticmethod
    def _is_tracer_method(call: ast.Call, method: str) -> bool:
        return isinstance(call.func, ast.Attribute) and \
            call.func.attr == method


@register
class MetricNameRule(BaseRule):
    rule = Rule("TRC002",
                "instant/counter/gauge name not declared in "
                "repro.trace.names")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.replace("\\", "/").endswith("trace/names.py"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and \
                    node.func.attr in _METRIC_METHODS and node.args:
                universe = _METRIC_METHODS[node.func.attr]
                name = _literal_or_pattern(node.args[0])
                if name is not None and \
                        not declared.is_declared(name, universe):
                    yield ctx.finding(
                        self.rule, node,
                        f"{node.func.attr} name {name!r} is not "
                        f"declared in repro.trace.names")
            for keyword in node.keywords:
                if keyword.arg in _GAUGE_KEYWORDS:
                    name = _literal_or_pattern(keyword.value)
                    if name is not None and not declared.is_declared(
                            name, declared.GAUGE_NAMES):
                        yield ctx.finding(
                            self.rule, node,
                            f"trace_gauge name {name!r} is not "
                            f"declared in repro.trace.names")


@register
class SpanNameRule(BaseRule):
    rule = Rule("TRC003",
                "span name not declared in repro.trace.names")

    #: ``_trace_service(resource, job_id, name, record, cat)`` is the
    #: package's span-emitting helper; its third argument is a span
    #: name even though the call is not literally ``.complete()``.
    _HELPER_ARG_INDEX = {"_trace_service": 2}

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if ctx.path.replace("\\", "/").endswith("trace/names.py"):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or \
                    not isinstance(node.func, ast.Attribute):
                continue
            method = node.func.attr
            name_node: ast.expr | None = None
            if method in {"begin", "complete"} and len(node.args) >= 2:
                name_node = node.args[1]
            elif method in self._HELPER_ARG_INDEX:
                index = self._HELPER_ARG_INDEX[method]
                if len(node.args) > index:
                    name_node = node.args[index]
            if name_node is None:
                continue
            name = _literal_or_pattern(name_node)
            if name is not None and not declared.is_declared(
                    name, declared.SPAN_NAMES):
                yield ctx.finding(
                    self.rule, node,
                    f"span name {name!r} is not declared in "
                    f"repro.trace.names")
