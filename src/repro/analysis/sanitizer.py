"""Dynamic race sanitizer: the CONC family's runtime counterpart.

The static CONC rules see what the AST shows them; this module watches
what the threads actually do.  :func:`install` monkeypatches
``threading.Lock`` / ``threading.RLock`` with instrumented wrappers
(``threading.Condition``, ``Semaphore``, ``Event`` etc. resolve those
factories at call time, so they are covered automatically), giving
every existing shard/PS/local-runtime test a second life as a race
detector under ``pytest --sanitize``:

- **Ownership tracking** — releasing a lock a thread does not hold is
  reported instead of silently corrupting the mutex.
- **Held-lock sets + runtime lock-order graph** — locks are classed by
  creation site (lockdep style); acquiring class B while holding class
  A adds the edge A→B, and any cycle in the graph is a potential
  deadlock even if this run didn't interleave into it.
- **Unsynchronized-mutation detection** — objects registered with
  :meth:`Sanitizer.watch` run an Eraser-style lockset algorithm on
  attribute writes: once two threads have written a field, the
  intersection of lock sets held across all its writes must stay
  non-empty.

The sanitizer's own bookkeeping uses raw ``_thread.allocate_lock()``
so instrumenting ``threading`` cannot recurse into itself.
"""

from __future__ import annotations

import _thread
import sys
import threading

#: Original factories, captured at import so install/uninstall and the
#: wrappers themselves survive repeated patching.
_REAL_LOCK = threading.Lock
_REAL_RLOCK = threading.RLock


class SanitizerError(Exception):
    """Raised by :meth:`Sanitizer.check` when violations were seen."""


def _call_site() -> str:
    """``file:line`` of the nearest caller outside this module and
    :mod:`threading` (so a lock built inside ``Condition.__init__`` is
    classed by the user's ``Condition()`` call site)."""
    internal = (__file__, threading.__file__)
    frame = sys._getframe(1)
    while frame is not None and frame.f_code.co_filename in internal:
        frame = frame.f_back
    if frame is None:
        return "<unknown>"
    return f"{frame.f_code.co_filename}:{frame.f_lineno}"


class Sanitizer:
    """Collects lock/race evidence for one instrumented run."""

    def __init__(self, name: str = "sanitizer"):
        self.name = name
        self.violations: list[str] = []
        self._state = _thread.allocate_lock()
        #: thread id -> stack of currently held wrapper locks.
        self._held: dict[int, list] = {}
        #: lock-class site -> {successor site: witness description}.
        self._order: dict[str, dict[str, str]] = {}
        #: (id(obj), attr) -> [owner_thread, shared, candidate_locksets]
        self._cells: dict[tuple, list] = {}
        #: original class -> instrumented subclass (memo for watch()).
        self._watched_classes: dict[type, type] = {}

    # -- factories ---------------------------------------------------------

    def lock(self, site: str | None = None) -> "SanitizedLock":
        return SanitizedLock(self, site or _call_site())

    def rlock(self, site: str | None = None) -> "SanitizedRLock":
        return SanitizedRLock(self, site or _call_site())

    # -- verdicts ----------------------------------------------------------

    def check(self) -> None:
        """Raise :class:`SanitizerError` if any violation was recorded."""
        with self._state:
            violations = list(self.violations)
        if violations:
            summary = "\n".join(f"- {v}" for v in violations)
            raise SanitizerError(
                f"{self.name}: {len(violations)} concurrency "
                f"violation(s):\n{summary}")

    def _violate(self, message: str) -> None:
        with self._state:
            if message not in self.violations:
                self.violations.append(message)

    # -- held sets & lock order -------------------------------------------

    def held_by(self, thread_id: int | None = None) -> list:
        ident = thread_id if thread_id is not None \
            else threading.get_ident()
        with self._state:
            return list(self._held.get(ident, ()))

    def _before_acquire(self, lock) -> None:
        """Record order edges *before* blocking: if this acquisition
        would deadlock, the evidence must already be on file."""
        ident = threading.get_ident()
        with self._state:
            held = list(self._held.get(ident, ()))
        for holder in held:
            if holder._site != lock._site:
                self._add_edge(holder._site, lock._site)

    def _after_acquire(self, lock) -> None:
        ident = threading.get_ident()
        with self._state:
            self._held.setdefault(ident, []).append(lock)

    def _on_release(self, lock) -> None:
        ident = threading.get_ident()
        with self._state:
            stack = self._held.get(ident, [])
            if lock in stack:
                stack.remove(lock)
                return
        owner = getattr(lock, "_owner", None)
        self._violate(
            f"lock {lock._site} released by thread {ident} which does "
            f"not hold it (owner: {owner})")

    def _add_edge(self, source: str, target: str) -> None:
        with self._state:
            successors = self._order.setdefault(source, {})
            if target in successors:
                return
            successors[target] = f"{source} -> {target}"
            cycle = self._find_cycle(target, source)
        if cycle is not None:
            path = " -> ".join(cycle + [cycle[0]])
            self._violate(
                f"lock-order inversion: acquiring {target} while "
                f"holding {source} closes the cycle {path}")

    def _find_cycle(self, start: str, goal: str) -> list | None:
        """Path ``start -> ... -> goal`` in the order graph, if any.

        Called with ``_state`` held; the graph is small (one node per
        lock creation site)."""
        stack = [(start, [start])]
        seen = set()
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            if node in seen:
                continue
            seen.add(node)
            for successor in self._order.get(node, ()):
                stack.append((successor, path + [successor]))
        return None

    # -- Eraser-style mutation watching -----------------------------------

    def watch(self, obj):
        """Instrument ``obj`` so attribute writes run the lockset
        algorithm.  Returns ``obj`` (its class is swapped for an
        instrumented subclass; dict/list *content* mutations are not
        seen — watch the owning attribute rebinding or lock reporting).
        """
        cls = type(obj)
        if getattr(cls, "_sanitizer_watched_", False):
            return obj
        subclass = self._watched_classes.get(cls)
        if subclass is None:
            sanitizer = self

            def __setattr__(instance, name, value,
                            _base=cls) -> None:
                sanitizer._on_write(instance, name)
                _base.__setattr__(instance, name, value)

            subclass = type(f"_Watched_{cls.__name__}", (cls,), {
                "__setattr__": __setattr__,
                "_sanitizer_watched_": True,
            })
            self._watched_classes[cls] = subclass
        obj.__class__ = subclass
        return obj

    def _on_write(self, obj, attr: str) -> None:
        ident = threading.get_ident()
        key = (id(obj), attr)
        with self._state:
            held = frozenset(id(lock) for lock in
                             self._held.get(ident, ()))
            cell = self._cells.get(key)
            if cell is None:
                # virgin -> exclusive(first thread); the construction
                # write establishes the candidate lockset.
                self._cells[key] = [ident, False, held]
                return
            owner, shared, lockset = cell
            if ident != owner:
                shared = True
            lockset = lockset & held
            self._cells[key] = [owner, shared, lockset]
            racy = shared and not lockset
            label = f"{type(obj).__name__}.{attr}"
        if racy:
            self._violate(
                f"unsynchronized concurrent mutation of {label}: "
                f"written by multiple threads with no common lock held")


class SanitizedLock:
    """Drop-in ``threading.Lock`` with ownership + order tracking."""

    def __init__(self, sanitizer: Sanitizer, site: str):
        self._inner = _REAL_LOCK()
        self._sanitizer = sanitizer
        self._site = site
        self._owner: int | None = None

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        self._sanitizer._before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = threading.get_ident()
            self._sanitizer._after_acquire(self)
        return acquired

    def release(self) -> None:
        self._sanitizer._on_release(self)
        self._owner = None
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    def __repr__(self) -> str:
        state = "locked" if self._inner.locked() else "unlocked"
        return f"<SanitizedLock {state} site={self._site}>"


class SanitizedRLock:
    """Drop-in ``threading.RLock``, including the private protocol
    (``_is_owned``/``_release_save``/``_acquire_restore``) that
    ``threading.Condition`` relies on."""

    def __init__(self, sanitizer: Sanitizer, site: str):
        self._inner = _REAL_LOCK()
        self._sanitizer = sanitizer
        self._site = site
        self._owner: int | None = None
        self._count = 0

    def acquire(self, blocking: bool = True,
                timeout: float = -1) -> bool:
        ident = threading.get_ident()
        if self._owner == ident:
            self._count += 1
            return True
        self._sanitizer._before_acquire(self)
        acquired = self._inner.acquire(blocking, timeout)
        if acquired:
            self._owner = ident
            self._count = 1
            self._sanitizer._after_acquire(self)
        return acquired

    def release(self) -> None:
        if self._owner != threading.get_ident():
            self._sanitizer._violate(
                f"rlock {self._site} released by thread "
                f"{threading.get_ident()} which does not own it "
                f"(owner: {self._owner})")
            return
        self._count -= 1
        if self._count == 0:
            self._sanitizer._on_release(self)
            self._owner = None
            self._inner.release()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc_info) -> None:
        self.release()

    # -- the Condition protocol -------------------------------------------

    def _is_owned(self) -> bool:
        return self._owner == threading.get_ident()

    def _release_save(self):
        if self._owner != threading.get_ident():
            raise RuntimeError("cannot release un-acquired lock")
        count, self._count = self._count, 0
        self._sanitizer._on_release(self)
        self._owner = None
        self._inner.release()
        return count

    def _acquire_restore(self, saved_count: int) -> None:
        self.acquire()
        self._count = saved_count

    def __repr__(self) -> str:
        return (f"<SanitizedRLock owner={self._owner} "
                f"count={self._count} site={self._site}>")


#: The installed sanitizer, if any (one at a time).
_INSTALLED: Sanitizer | None = None


def current() -> Sanitizer | None:
    """The sanitizer currently patched into :mod:`threading`."""
    return _INSTALLED


def install(sanitizer: Sanitizer) -> Sanitizer:
    """Patch ``threading.Lock``/``RLock`` to hand out instrumented
    wrappers.  ``Condition``, ``Semaphore``, ``Event`` and ``Barrier``
    resolve those module globals per call, so new instances of all of
    them are covered; primitives created *before* install stay raw.
    """
    global _INSTALLED
    if _INSTALLED is not None:
        raise SanitizerError("a sanitizer is already installed")

    def _lock_factory() -> SanitizedLock:
        return sanitizer.lock(_call_site())

    def _rlock_factory() -> SanitizedRLock:
        return sanitizer.rlock(_call_site())

    threading.Lock = _lock_factory
    threading.RLock = _rlock_factory
    _INSTALLED = sanitizer
    return sanitizer


def uninstall() -> None:
    """Restore the real ``threading`` factories.  Wrappers already
    handed out keep working: they own their real locks outright."""
    global _INSTALLED
    threading.Lock = _REAL_LOCK
    threading.RLock = _REAL_RLOCK
    _INSTALLED = None
