"""Visitor framework for harmonylint rules.

Rules are small classes registered with :func:`register`; the engine
instantiates each once per run and hands it :class:`FileContext`
objects (per-file rules) or the whole list at once (project rules, for
cross-file properties like fingerprint coverage).

The framework's main service is *qualified-name resolution*: rules ask
"is this call ``time.perf_counter``?" and get the right answer whether
the module wrote ``import time``, ``import time as _time``, or
``from time import perf_counter as pc``.
"""

from __future__ import annotations

import ast
import builtins
import re
from collections.abc import Iterable
from dataclasses import dataclass, field

from repro.analysis.findings import Finding, Rule

#: ``# harmony: allow[DET001]`` or ``allow[DET001,SIM002] free-text why``.
_ALLOW_RE = re.compile(
    r"#\s*harmony:\s*allow\[([A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)\]")


def parse_suppressions(source_lines: list[str]) -> dict[int, set[str]]:
    """Map of 1-based line number -> rule ids allowed on that line."""
    allowed: dict[int, set[str]] = {}
    for number, line in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(line)
        if match:
            ids = {part.strip() for part in match.group(1).split(",")}
            allowed.setdefault(number, set()).update(ids)
    return allowed


@dataclass
class FileContext:
    """One parsed source file plus everything rules need around it."""

    path: str            # as reported in findings (repo-relative)
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)
    suppressions: dict[int, set[str]] = field(default_factory=dict)
    imports: "ImportMap | None" = None

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        lines = source.splitlines()
        return cls(path=path, source=source, tree=tree, lines=lines,
                   suppressions=parse_suppressions(lines),
                   imports=ImportMap.of(
                       tree, module=module_name(path),
                       is_package=path.endswith("__init__.py")))

    @property
    def module(self) -> str:
        """Dotted module name this file defines (see :func:`module_name`)."""
        return self.imports.module or module_name(self.path)

    def snippet(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, rule: Rule, node: ast.AST,
                message: str) -> Finding:
        line = getattr(node, "lineno", 0)
        return Finding(rule_id=rule.rule_id, path=self.path, line=line,
                       message=message, snippet=self.snippet(line))

    def in_dir(self, *parts: str) -> bool:
        """True when any path component equals one of ``parts``."""
        components = re.split(r"[\\/]", self.path)
        return any(part in components for part in parts)


def module_name(path: str) -> str:
    """Dotted module name for a repo-relative source path.

    ``src/repro/shard/scheduler.py`` -> ``repro.shard.scheduler``;
    a package ``__init__.py`` names the package itself.
    """
    parts = [part for part in re.split(r"[\\/]", path) if part]
    if parts and parts[0] in {"src", "lib"}:
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


class ImportMap:
    """Alias -> dotted-module resolution for one module."""

    def __init__(self, module: str | None = None,
                 is_package: bool = False) -> None:
        #: local name -> fully qualified dotted name it stands for.
        self.aliases: dict[str, str] = {}
        #: Dotted name of the module the map was built for (enables
        #: relative-import resolution); None when unknown.
        self.module = module
        self.is_package = is_package
        #: Modules star-imported (``from x import *``): a fallback
        #: namespace for otherwise-unresolvable bare names.
        self.star_modules: list[str] = []

    @classmethod
    def of(cls, tree: ast.Module, module: str | None = None,
           is_package: bool = False) -> "ImportMap":
        imports = cls(module, is_package)
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else \
                        alias.name.split(".")[0]
                    imports.aliases[local] = target
            elif isinstance(node, ast.ImportFrom):
                base = imports._from_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        imports.star_modules.append(base)
                        continue
                    local = alias.asname or alias.name
                    imports.aliases[local] = f"{base}.{alias.name}"
        return imports

    def _from_base(self, node: ast.ImportFrom) -> str | None:
        """The absolute module a ``from ... import`` pulls names from.

        Relative imports resolve against :attr:`module` (``from .cells
        import Cell`` inside ``repro.shard.scheduler`` resolves to
        ``repro.shard.cells``); with no module known they stay
        unresolvable and the names are simply not mapped.
        """
        if not node.level:
            return node.module
        if self.module is None:
            return None
        # Level 1 is the containing package: the module itself for an
        # __init__.py, its parent otherwise; each further level climbs.
        package = self.module.split(".")
        drop = node.level - 1 if self.is_package else node.level
        if drop > len(package):
            return None
        if drop:
            package = package[:-drop]
        if node.module:
            package = package + node.module.split(".")
        return ".".join(package) or None

    def qualify(self, node: ast.expr) -> str | None:
        """Dotted name of ``node`` with import aliases resolved.

        ``pc()`` where ``from time import perf_counter as pc`` resolves
        to ``time.perf_counter``; ``np.random.rand`` resolves to
        ``numpy.random.rand``.  A bare name that matches no alias and
        no builtin falls back to the single star-imported module when
        there is exactly one.  Returns None for non-name expressions.
        """
        parts: list[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        root = current.id
        if root in self.aliases:
            resolved = self.aliases[root]
        elif len(self.star_modules) == 1 and \
                not hasattr(builtins, root):
            resolved = f"{self.star_modules[0]}.{root}"
        else:
            resolved = root
        parts.append(resolved)
        return ".".join(reversed(parts))


class BaseRule:
    """A harmonylint rule: subclass, set :attr:`rule`, implement
    :meth:`check` (per-file) or :meth:`check_project` (cross-file)."""

    rule: Rule
    #: Project rules see every file at once (cross-file properties).
    project_level = False

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        return ()


#: rule_id -> rule class; populated by :func:`register` at import time.
REGISTRY: dict[str, type[BaseRule]] = {}


def register(rule_class: type[BaseRule]) -> type[BaseRule]:
    rule_id = rule_class.rule.rule_id
    if rule_id in REGISTRY:
        raise ValueError(f"duplicate rule id {rule_id}")
    REGISTRY[rule_id] = rule_class
    return rule_class


def functions_of(tree: ast.Module) -> list[ast.AST]:
    """Every function/method definition in the module, outermost first."""
    return [node for node in ast.walk(tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))]


def is_generator(function: ast.AST) -> bool:
    """True when ``function`` contains a yield of its own (i.e. it is a
    simulated process / coroutine, not a plain function)."""
    for node in ast.walk(function):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            owner = _enclosing_function(node, function)
            if owner is function:
                return True
    return False


def _enclosing_function(target: ast.AST, root: ast.AST) -> ast.AST | None:
    """The innermost function of ``root`` containing ``target``."""
    owner = None
    stack = [(root, root)]
    while stack:
        node, current = stack.pop()
        if node is target:
            return current
        for child in ast.iter_child_nodes(node):
            next_fn = child if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef,
                        ast.Lambda)) else current
            stack.append((child, next_fn))
    return owner
