"""CONC rules: concurrency discipline for the threaded runtime.

The shard fan-out (:mod:`repro.shard`), the PS stack (:mod:`repro.ps`)
and the local runtime (:mod:`repro.core.local_runtime`) all run real
threads under a repo whose guarantees are bitwise; a forgotten lock is
a nondeterminism bug, not a style issue.  These rules query the
interprocedural :mod:`repro.analysis.callgraph` model:

- CONC001 — a field mutated under ``with self._lock:`` in one method
  and touched outside it in another has no consistent discipline.
- CONC002 — state reachable from a ``ThreadPoolExecutor.submit``/
  ``map`` or ``threading.Thread`` callable is mutated without
  synchronization.
- CONC003 — the global lock-acquisition graph has a cycle (two call
  paths acquire the same locks in opposite orders: potential deadlock).
- CONC004 — a ``threading`` primitive is constructed in sim-clock code,
  where blocking on it would stall the warped clock (the dynamic
  counterpart of the SIM family's wall-clock rules).
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.callgraph import (
    THREADING_FACTORIES,
    THREADSAFE_CLASSES,
    ClassModel,
    FunctionModel,
    LockToken,
    ProjectModel,
    project_model,
)
from repro.analysis.findings import Finding, Rule
from repro.analysis.visitors import BaseRule, FileContext, register

#: Receivers of ``.submit``/``.map`` treated as thread-pool fan-outs.
_EXECUTOR_CLASSES = {
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
    "concurrent.futures.ProcessPoolExecutor",
}

#: Constructors whose first argument / ``target=`` runs on a new thread.
_THREAD_ENTRIES = {"threading.Thread", "threading.Timer"}


def token_label(token: LockToken) -> str:
    """Human name for a lock token (``PSServer._condition`` style)."""
    kind, scope, name = token
    if kind == "C":
        return f"{scope.rsplit('.', 1)[-1]}.{name}"
    if kind == "M":
        return f"{scope}.{name}" if scope else name
    return f"{scope}:{name}"


@register
class MixedLockDiscipline(BaseRule):
    """CONC001: field accessed both under and outside its class lock."""

    rule = Rule("CONC001",
                "field accessed with inconsistent lock discipline "
                "(mutated under the class lock in one method, touched "
                "without it in another)")
    project_level = True

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        project = project_model(contexts)
        for class_model in project.classes.values():
            yield from self._check_class(class_model)

    def _check_class(self,
                     class_model: ClassModel) -> Iterable[Finding]:
        tokens = class_model.class_lock_tokens()
        if not tokens:
            return
        guarded_fields: set[str] = set()
        unguarded = []
        for model, access, held in class_model.effective_accesses():
            if access.in_init or access.in_nested:
                continue
            if access.target[0] != "self":
                continue
            field_name = access.target[1]
            if field_name in class_model.lock_fields:
                continue
            if held & tokens:
                if access.write:
                    guarded_fields.add(field_name)
            else:
                unguarded.append((field_name, access, model))
        for field_name, access, model in unguarded:
            if field_name not in guarded_fields:
                continue
            verb = "mutated" if access.write else "read"
            lock = token_label(sorted(tokens)[0])
            yield class_model.ctx.finding(
                self.rule, access.node,
                f"{class_model.name}.{field_name} is {verb} in "
                f"{model.name}() without {lock}, but mutated under it "
                f"elsewhere")


@register
class UnsynchronizedThreadShared(BaseRule):
    """CONC002: thread-entry callable mutates unsynchronized state."""

    rule = Rule("CONC002",
                "callable handed to a thread pool / Thread mutates "
                "shared state without synchronization (data race)")
    project_level = True

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        project = project_model(contexts)
        for class_model in project.classes.values():
            for model in class_model.methods.values():
                yield from self._check_entries(project, class_model,
                                               model)

    def _check_entries(self, project: ProjectModel,
                       class_model: ClassModel,
                       model: FunctionModel) -> Iterable[Finding]:
        for call in model.calls:
            callable_expr = self._entry_callable(model, call)
            if callable_expr is None:
                continue
            issues = self._callable_issues(project, class_model, model,
                                           callable_expr)
            if issues:
                described = "; ".join(sorted(set(issues))[:3])
                yield class_model.ctx.finding(
                    self.rule, call.node,
                    f"thread callable in {class_model.name}."
                    f"{model.name}() touches unsynchronized shared "
                    f"state: {described}")

    def _entry_callable(self, model: FunctionModel,
                        call) -> ast.expr | None:
        """The expression that will run on another thread, if any."""
        node = call.node
        if call.kind == "var" and call.target[-1] in {"submit", "map"}:
            if not self._is_executor(model, call.target[:-1]):
                return None
            return node.args[0] if node.args else None
        if call.kind == "name" and call.target[0] in _THREAD_ENTRIES:
            for keyword in node.keywords:
                if keyword.arg in {"target", "function"}:
                    return keyword.value
            if call.target[0] == "threading.Timer" and \
                    len(node.args) >= 2:
                return node.args[1]
        return None

    def _is_executor(self, model: FunctionModel,
                     receiver: tuple) -> bool:
        if len(receiver) != 1:
            return False
        name = receiver[0]
        inferred = model.local_types.get(name)
        if inferred in _EXECUTOR_CLASSES:
            return True
        lowered = name.lower()
        return inferred is None and \
            ("pool" in lowered or "executor" in lowered)

    # -- what does the callable touch? ------------------------------------

    def _callable_issues(self, project: ProjectModel,
                         class_model: ClassModel, model: FunctionModel,
                         expr: ast.expr) -> list[str]:
        if isinstance(expr, ast.Name):
            nested = model.nested_models.get(expr.id)
            if nested is not None:
                return self._entry_issues(project, class_model, nested)
            return []
        if isinstance(expr, ast.Lambda):
            issues: list[str] = []
            for child in ast.walk(expr):
                if isinstance(child, ast.Name) and \
                        child.id in model.nested_models:
                    issues.extend(self._entry_issues(
                        project, class_model,
                        model.nested_models[child.id]))
            return issues
        if isinstance(expr, ast.Attribute):
            return self._method_ref_issues(project, class_model, model,
                                           expr)
        return []

    def _method_ref_issues(self, project: ProjectModel,
                           class_model: ClassModel,
                           model: FunctionModel,
                           expr: ast.Attribute) -> list[str]:
        """``self.m`` / ``obj.field.m`` handed over as the callable."""
        parts: list[str] = []
        current: ast.expr = expr
        while isinstance(current, ast.Attribute):
            parts.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return []
        parts.append(current.id)
        chain = list(reversed(parts))
        method = chain[-1]
        if chain[0] == "self":
            target = class_model
            walk = chain[1:-1]
        else:
            target = project.resolve_class(
                model.local_types.get(chain[0]),
                class_model.ctx.module)
            walk = chain[1:-1]
        for field_name in walk:
            if target is None:
                return []
            target = project.resolve_class(
                target.field_types.get(field_name),
                target.ctx.module)
        if target is None or method not in target.methods:
            return []
        if not target.all_writes_guarded(method, project):
            return [f"{target.name}.{method}() mutates unguarded state"]
        return []

    def _entry_issues(self, project: ProjectModel,
                      class_model: ClassModel,
                      nested: FunctionModel) -> list[str]:
        """Unsynchronized mutations reachable from a thread body."""
        issues: list[str] = []
        for access in nested.accesses:
            if not access.write or access.held:
                continue
            kind, name = access.target
            if kind == "self":
                issues.append(f"mutates self.{name}")
            else:
                inferred = nested.local_types.get(name)
                if inferred in THREADSAFE_CLASSES:
                    continue
                issues.append(f"mutates captured '{name}'")
        for call in nested.calls:
            if call.held:
                continue
            issue = self._call_issue(project, class_model, nested, call)
            if issue is not None:
                issues.append(issue)
        return issues

    def _call_issue(self, project: ProjectModel,
                    class_model: ClassModel, nested: FunctionModel,
                    call) -> str | None:
        if call.kind == "self":
            method = call.target[0]
            if method in class_model.methods and \
                    not class_model.all_writes_guarded(method, project):
                return f"calls self.{method}() which mutates " \
                       f"unguarded state"
            return None
        if call.kind == "field":
            field_name, method = call.target
            target = project.resolve_class(
                class_model.field_types.get(field_name),
                class_model.ctx.module)
            if target is not None and method in target.methods and \
                    not target.all_writes_guarded(method, project):
                return f"calls self.{field_name}.{method}() on " \
                       f"{target.name}, which mutates unguarded state"
            return None
        if call.kind == "var" and len(call.target) == 2:
            receiver, method = call.target
            if receiver in nested.local_names:
                return None  # constructed in the thread: thread-local
            inferred = nested.local_types.get(receiver)
            if inferred in THREADSAFE_CLASSES:
                return None
            target = project.resolve_class(inferred,
                                           class_model.ctx.module)
            if target is not None and method in target.methods and \
                    not target.all_writes_guarded(method, project):
                return f"calls {receiver}.{method}() on " \
                       f"{target.name}, which mutates unguarded state"
        return None


@register
class LockOrderCycle(BaseRule):
    """CONC003: cyclic lock-acquisition order across the project."""

    rule = Rule("CONC003",
                "lock acquisition order forms a cycle in the global "
                "acquisition graph (potential deadlock)")
    project_level = True

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        project = project_model(contexts)
        for witness in project.lock_order_cycles():
            order = " -> ".join(
                token_label(edge[0]) for edge in witness)
            closing = token_label(witness[0][0])
            _source, _target, ctx, node = witness[0]
            yield ctx.finding(
                self.rule, node,
                f"lock-order cycle: {order} -> {closing} "
                f"(opposite acquisition orders can deadlock)")


@register
class ThreadingInSimClock(BaseRule):
    """CONC004: threading primitive constructed in sim-clock code."""

    rule = Rule("CONC004",
                "threading primitive constructed in sim-clock code "
                "(blocks the warped clock instead of skipping)")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        if not self._drives_sim_clock(ctx):
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            qualified = ctx.imports.qualify(node.func)
            if qualified in THREADING_FACTORIES:
                name = qualified.rsplit(".", 1)[-1]
                yield ctx.finding(
                    self.rule, node,
                    f"{name} constructed in sim-clock code would "
                    f"block the warped clock; coordinate through "
                    f"simulation events instead")

    @staticmethod
    def _drives_sim_clock(ctx: FileContext) -> bool:
        if ctx.module.startswith("repro.sim"):
            return True
        return any(target == "repro.sim" or
                   target.startswith("repro.sim.")
                   for target in ctx.imports.aliases.values())
