"""The harmonylint engine: collect files, run rules, filter findings.

Order of filters per finding:

1. inline ``# harmony: allow[RULE-ID]`` on the finding's line (or the
   line above it) → counted as *suppressed*;
2. a live baseline entry → counted as *baselined*;
3. an expired baseline entry → reported, marked ``baseline_expired``;
4. otherwise → reported.

Findings are ordered (path, line, rule id) so output is stable across
runs and machines regardless of rule registration order.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analysis import (  # noqa: F401  (rule registration side effect)
    rules_cache,
    rules_conc,
    rules_det,
    rules_sim,
    rules_trc,
)
from repro.analysis.baseline import Baseline
from repro.analysis.findings import AnalysisReport, Finding
from repro.analysis.visitors import BaseRule, FileContext, REGISTRY

_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules",
              ".pytest_cache", ".hypothesis"}


@dataclass
class AnalysisConfig:
    """What to analyze and how."""

    paths: list[str] = field(default_factory=lambda: ["src"])
    #: Rule ids to run; empty means every registered rule.
    select: set[str] = field(default_factory=set)
    baseline_path: str | None = "lint-baseline.json"
    #: Root that finding paths are reported relative to.
    root: str = "."
    #: When set (``--changed-only``), every file is still *parsed* —
    #: project rules need the whole tree to build their cross-file
    #: models — but per-file rules only run on these paths and
    #: project-rule findings outside them are dropped.
    report_paths: set[str] | None = None


def collect_sources(paths: list[str], root: str = ".") -> list[str]:
    """Python files under ``paths``, reported relative to ``root``."""
    sources: list[str] = []
    for path in paths:
        absolute = os.path.join(root, path) if not os.path.isabs(path) \
            else path
        if os.path.isfile(absolute):
            sources.append(os.path.relpath(absolute, root))
            continue
        for directory, subdirs, files in os.walk(absolute):
            subdirs[:] = sorted(d for d in subdirs
                                if d not in _SKIP_DIRS)
            for name in sorted(files):
                if name.endswith(".py"):
                    sources.append(os.path.relpath(
                        os.path.join(directory, name), root))
    return sorted(set(sources))


def _suppressed(ctx: FileContext, finding: Finding) -> bool:
    for line in (finding.line, finding.line - 1):
        if finding.rule_id in ctx.suppressions.get(line, set()):
            return True
    return False


class Analyzer:
    """One lint run over a set of files."""

    def __init__(self, config: AnalysisConfig | None = None):
        self.config = config or AnalysisConfig()
        self.rules: list[BaseRule] = [
            rule_class() for rule_id, rule_class in sorted(
                REGISTRY.items())
            if not self.config.select
            or rule_id in self.config.select]

    def run(self) -> AnalysisReport:
        root = self.config.root
        contexts: list[FileContext] = []
        report = AnalysisReport()
        for relpath in collect_sources(self.config.paths, root):
            with open(os.path.join(root, relpath),
                      encoding="utf-8") as handle:
                source = handle.read()
            try:
                contexts.append(FileContext.parse(
                    relpath.replace(os.sep, "/"), source))
            except SyntaxError as error:
                report.findings.append(Finding(
                    rule_id="DET001", path=relpath, line=error.lineno or 0,
                    message=f"file does not parse: {error.msg}"))
        report.n_files = len(contexts)

        scoped = self.config.report_paths
        raw: list[tuple[FileContext | None, Finding]] = []
        for ctx in contexts:
            if scoped is not None and ctx.path not in scoped:
                continue
            for rule in self.rules:
                if rule.project_level:
                    continue
                for finding in rule.check(ctx):
                    raw.append((ctx, finding))
        for rule in self.rules:
            if rule.project_level:
                by_path = {ctx.path: ctx for ctx in contexts}
                for finding in rule.check_project(contexts):
                    if scoped is not None and \
                            finding.path not in scoped:
                        continue
                    raw.append((by_path.get(finding.path), finding))

        baseline = Baseline.load(self._baseline_file()) \
            if self.config.baseline_path else Baseline()
        for ctx, finding in raw:
            if ctx is not None and _suppressed(ctx, finding):
                report.suppressed.append(finding)
                continue
            entry = baseline.match(finding)
            if entry is not None and not entry.expired():
                report.baselined.append(finding)
                continue
            if entry is not None:
                finding = Finding(
                    rule_id=finding.rule_id, path=finding.path,
                    line=finding.line, message=finding.message,
                    snippet=finding.snippet, baseline_expired=True)
            report.findings.append(finding)
        report.findings.sort(
            key=lambda f: (f.path, f.line, f.rule_id))
        report.stale_baseline_entries = [
            f"{entry.path} {entry.rule} ({entry.reason})"
            for entry in baseline.stale_entries()]
        return report

    def _baseline_file(self) -> str:
        path = self.config.baseline_path or "lint-baseline.json"
        if os.path.isabs(path):
            return path
        return os.path.join(self.config.root, path)
