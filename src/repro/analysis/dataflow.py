"""Dataflow-lite taint tracking for the DET ordering rules.

Python ``set``/``frozenset`` iteration order depends on the process
hash seed, so any set whose *iteration order escapes* into scheduler
state (a list, a dict's insertion order, the order callbacks fire) is
a cross-run determinism bug — the exact class ``repro.check`` can only
catch when a scenario happens to tickle it.

The tracker is deliberately "lite": per-function, flow-insensitive
name taint.  A name becomes *unordered* when bound to a set-typed
expression (literal, constructor, comprehension, set algebra, or a
parameter annotated as a set); an *escape* is any construct that
consumes the iteration order (a ``for`` loop, a list/dict
comprehension, ``list()``/``tuple()``/``enumerate()``/``iter()``,
``.pop()``).  Order-insensitive consumers (``sorted``, ``len``,
``min``/``max``, membership tests, set algebra, building another set)
are sanitizers, not escapes.
"""

from __future__ import annotations

import ast

#: Calls that consume iteration order (escape it into sequence state).
ORDER_ESCAPING_CALLS = {"list", "tuple", "enumerate", "iter", "next",
                        "reversed"}

#: Calls that consume a set without depending on iteration order.
#: ``sum`` is included: summing ints/bools over a set is common and
#: exact; float accumulation over an unordered set is rare enough to
#: leave to review (flagging every ``sum`` drowns the signal).
ORDER_SAFE_CALLS = {"sorted", "len", "min", "max", "any", "all", "sum",
                    "set", "frozenset", "bool", "isinstance"}

#: Set-producing constructor / method names.
_SET_CONSTRUCTORS = {"set", "frozenset"}
_SET_METHODS = {"union", "intersection", "difference",
                "symmetric_difference", "copy"}


def _annotation_is_set(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr in {"Set", "FrozenSet", "AbstractSet"}
    if isinstance(node, ast.Name):
        return node.id in {"set", "frozenset", "Set", "FrozenSet",
                           "AbstractSet"}
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value
        return text.startswith(("set[", "frozenset[", "Set[",
                                "FrozenSet[")) or text in {
            "set", "frozenset"}
    return False


class UnorderedTaint:
    """Which names in one function hold unordered collections."""

    def __init__(self, function: ast.AST):
        self.function = function
        self.tainted: set[str] = set()
        self._collect()

    # -- taint sources ---------------------------------------------------

    def _collect(self) -> None:
        args = getattr(self.function, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                if _annotation_is_set(arg.annotation):
                    self.tainted.add(arg.arg)
        # Two passes so ``b = a`` taints ``b`` even when ``a``'s own
        # tainting assignment appears later in the source.
        for _ in range(2):
            for node in ast.walk(self.function):
                if isinstance(node, ast.Assign):
                    if self.is_set_expr(node.value):
                        for target in node.targets:
                            if isinstance(target, ast.Name):
                                self.tainted.add(target.id)
                elif isinstance(node, ast.AnnAssign) and \
                        isinstance(node.target, ast.Name):
                    if _annotation_is_set(node.annotation) or (
                            node.value is not None
                            and self.is_set_expr(node.value)):
                        self.tainted.add(node.target.id)

    def is_set_expr(self, node: ast.expr) -> bool:
        """True when ``node`` evaluates to a set/frozenset."""
        if isinstance(node, ast.Set) or isinstance(node, ast.SetComp):
            return True
        if isinstance(node, ast.Name):
            return node.id in self.tainted
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and \
                    func.id in _SET_CONSTRUCTORS:
                return True
            if isinstance(func, ast.Attribute) and \
                    func.attr in _SET_METHODS and \
                    self.is_set_expr(func.value):
                return True
            return False
        if isinstance(node, ast.BinOp) and isinstance(
                node.op, (ast.BitAnd, ast.BitOr, ast.BitXor, ast.Sub)):
            return self.is_set_expr(node.left) or \
                self.is_set_expr(node.right)
        if isinstance(node, ast.IfExp):
            return self.is_set_expr(node.body) or \
                self.is_set_expr(node.orelse)
        return False

    # -- escapes ---------------------------------------------------------

    def order_escapes(self) -> list[tuple[ast.AST, str]]:
        """(node, description) for each place iteration order escapes."""
        escapes: list[tuple[ast.AST, str]] = []
        safe_iters = self._order_safe_iterables()
        for node in ast.walk(self.function):
            if isinstance(node, ast.For) and \
                    self.is_set_expr(node.iter) and \
                    id(node.iter) not in safe_iters:
                escapes.append((node, "for-loop over a set"))
            elif isinstance(node, ast.comprehension) and \
                    self.is_set_expr(node.iter) and \
                    id(node.iter) not in safe_iters:
                escapes.append((node.iter,
                                "comprehension over a set"))
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) and \
                        func.id in ORDER_ESCAPING_CALLS and node.args \
                        and self.is_set_expr(node.args[0]):
                    escapes.append(
                        (node, f"{func.id}() over a set"))
                elif isinstance(func, ast.Attribute) and \
                        func.attr == "pop" and not node.args and \
                        self.is_set_expr(func.value):
                    escapes.append(
                        (node, "set.pop() takes an arbitrary element"))
                elif isinstance(func, ast.Attribute) and \
                        func.attr == "join" and node.args and \
                        self.is_set_expr(node.args[0]):
                    escapes.append((node, "str.join over a set"))
        return escapes

    def _order_safe_iterables(self) -> set[int]:
        """ids of iterable expressions consumed order-insensitively.

        A set-comprehension over a set is order-safe (the result is a
        set again); likewise a comprehension whose result feeds only a
        sanitizer call would be, but tracking consumers is beyond the
        lite analysis — set comprehensions cover the common idiom.
        """
        safe: set[int] = set()
        for node in ast.walk(self.function):
            if isinstance(node, ast.SetComp):
                for generator in node.generators:
                    safe.add(id(generator.iter))
            elif isinstance(node, ast.Call) and \
                    isinstance(node.func, ast.Name) and \
                    node.func.id in ORDER_SAFE_CALLS:
                for arg in node.args:
                    safe.add(id(arg))
                    if isinstance(arg, ast.GeneratorExp):
                        for generator in arg.generators:
                            safe.add(id(generator.iter))
        return safe
