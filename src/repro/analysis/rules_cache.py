"""CACHE — PlanCache fingerprint-coverage rules.

The scheduling fast path memoizes whole prefix plans keyed by a chain
hash over per-job metrics (``_prefix_fingerprints``) and guards hits
with an equality check on the stored metrics tuple.  The bug class
this enables: someone adds a new :class:`JobMetrics` field (or starts
reading an existing one) in scoring code without adding it to the
fingerprint — cached plans then survive changes of an input that
should invalidate them.

CACHE001 closes the loop statically, across files:

1. parse the ``JobMetrics`` dataclass (``core/profiler.py``) for its
   fields, and resolve each derived method (``t_cpu_at``, ...) to the
   transitive set of fields it reads;
2. parse ``_prefix_fingerprints`` (``core/scheduler.py``) for the
   ``job.<field>`` attributes that feed the chain hash;
3. scan the scoring modules (scheduler/grouping/perfmodel/allocation)
   for reads of any JobMetrics field or derived method, and flag reads
   whose underlying fields are absent from the fingerprint.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable

from repro.analysis.findings import Finding, Rule
from repro.analysis.visitors import BaseRule, FileContext, register

#: Files whose attribute reads count as "scoring" (relpath suffixes).
SCORING_SUFFIXES = ("core/scheduler.py", "core/grouping.py",
                    "core/perfmodel.py", "core/allocation.py")

METRICS_CLASS = "JobMetrics"
FINGERPRINT_FUNCTION = "_prefix_fingerprints"

#: JobMetrics attributes that identify rather than measure; reading
#: them in scoring never stales a cached plan beyond the id itself.
_IDENTITY_FIELDS = {"job_id"}


def _normalized(path: str) -> str:
    return path.replace("\\", "/")


class _MetricsModel:
    """Fields and derived-method field-closures of JobMetrics."""

    def __init__(self, class_node: ast.ClassDef):
        self.fields: set[str] = set()
        direct: dict[str, set[str]] = {}
        calls: dict[str, set[str]] = {}
        for node in class_node.body:
            if isinstance(node, ast.AnnAssign) and \
                    isinstance(node.target, ast.Name):
                self.fields.add(node.target.id)
            elif isinstance(node, ast.FunctionDef):
                reads: set[str] = set()
                called: set[str] = set()
                for child in ast.walk(node):
                    if isinstance(child, ast.Attribute) and \
                            isinstance(child.value, ast.Name) and \
                            child.value.id == "self":
                        if isinstance(child.ctx, ast.Load):
                            reads.add(child.attr)
                    if isinstance(child, ast.Call) and \
                            isinstance(child.func, ast.Attribute) and \
                            isinstance(child.func.value, ast.Name) and \
                            child.func.value.id == "self":
                        called.add(child.func.attr)
                direct[node.name] = reads
                calls[node.name] = called
        #: method -> transitive set of *fields* it depends on.
        self.derived: dict[str, set[str]] = {}
        for method in direct:
            seen: set[str] = set()
            stack = [method]
            fields: set[str] = set()
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                fields |= direct.get(current, set()) & self.fields
                stack.extend(calls.get(current, set()))
            self.derived[method] = fields

    def reads_of(self, attribute: str) -> set[str] | None:
        """Fields behind reading ``attribute``; None if not a metric."""
        if attribute in self.fields:
            return {attribute}
        if attribute in self.derived:
            return self.derived[attribute]
        return None


def _fingerprint_fields(function: ast.AST,
                        model: _MetricsModel) -> set[str]:
    """JobMetrics fields fed into the chain hash."""
    fields: set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Attribute):
            behind = model.reads_of(node.attr)
            if behind is not None:
                fields |= behind
            fields |= {node.attr} & _IDENTITY_FIELDS
    return fields


@register
class FingerprintCoverageRule(BaseRule):
    rule = Rule("CACHE001",
                "scoring code reads a JobMetrics field absent from "
                "the PlanCache fingerprint computation")
    project_level = True

    def check_project(self,
                      contexts: list[FileContext]) -> Iterable[Finding]:
        model = self._metrics_model(contexts)
        if model is None:
            return
        fingerprint_ctx, fingerprint_fn = \
            self._fingerprint_function(contexts)
        if fingerprint_fn is None:
            return
        covered = _fingerprint_fields(fingerprint_fn, model) \
            | _IDENTITY_FIELDS
        for ctx in contexts:
            if not _normalized(ctx.path).endswith(SCORING_SUFFIXES):
                continue
            for node in ast.walk(ctx.tree):
                if not isinstance(node, ast.Attribute) or \
                        not isinstance(node.ctx, ast.Load):
                    continue
                behind = model.reads_of(node.attr)
                if behind is None:
                    continue
                missing = behind - covered
                if missing:
                    yield ctx.finding(
                        self.rule, node,
                        f"read of JobMetrics.{node.attr} depends on "
                        f"{sorted(missing)} which "
                        f"{FINGERPRINT_FUNCTION} does not hash — "
                        f"cached plans would survive changes to it")

    @staticmethod
    def _metrics_model(
            contexts: list[FileContext]) -> "_MetricsModel | None":
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.ClassDef) and \
                        node.name == METRICS_CLASS:
                    return _MetricsModel(node)
        return None

    @staticmethod
    def _fingerprint_function(contexts: list[FileContext]):
        for ctx in contexts:
            for node in ast.walk(ctx.tree):
                if isinstance(node, ast.FunctionDef) and \
                        node.name == FINGERPRINT_FUNCTION:
                    return ctx, node
        return None, None
