"""Interprocedural layer for the CONC rules: call graph + class models.

The per-file rules in harmonylint answer "what does this line do?";
the concurrency family needs "who else can touch this state, and what
locks are they holding when they do?".  This module builds that view
once per lint run:

- :class:`FunctionModel` — one function/method scanned with a
  *held-lock tracker*: every ``self.<field>`` access, every mutation of
  a captured (closure) name, every lock acquisition, and every call is
  recorded together with the set of locks statically held at that
  point.  ``with self._lock:`` blocks, nested ``with``, and the manual
  ``acquire()`` / ``try/finally: release()`` idiom all feed the tracker.
- :class:`ClassModel` — a class's lock fields (attributes assigned a
  ``threading`` primitive), field types (attributes assigned a
  resolvable constructor call, plus ``list[T]`` element types from
  annotations and comprehensions), and per-method models.  Private
  methods called only while a lock is held inherit that lock as
  *context* (so a ``_publish`` helper invoked under ``self._lock``
  counts as guarded).
- :class:`ProjectModel` — the cross-file index: qualified class names,
  module-level functions and locks, local-variable type inference
  (constructor assignments, ``for``/comprehension targets over typed
  fields, ``zip`` position mapping), and transitive lock-acquisition
  sets for the lock-order graph (CONC003).

Lock identity is a token tuple: ``("C", class_qualname, attr)`` for
``self.<attr>`` locks, ``("M", module, name)`` for module-level locks,
and ``("F", scope, name)`` for function-local / parameter locks.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.visitors import FileContext, ImportMap

#: Qualified constructors whose result is a mutual-exclusion primitive
#: (things one can hold; Condition wraps a lock and is held the same
#: way).
LOCK_FACTORIES = {
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
}

#: Qualified constructors for sim-hostile threading machinery beyond
#: the lock factories (CONC004 flags both sets in sim-driven code).
THREADING_FACTORIES = LOCK_FACTORIES | {
    "threading.Event", "threading.Barrier", "threading.Thread",
    "threading.Timer",
    "concurrent.futures.ThreadPoolExecutor",
    "concurrent.futures.thread.ThreadPoolExecutor",
}

#: Classes that are thread-safe by contract: mutating through them
#: never needs an extra caller-side lock.
THREADSAFE_CLASSES = {
    "threading.Event", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Barrier",
    "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
    "queue.SimpleQueue",
}

#: Method names that mutate their receiver in place.
MUTATOR_METHODS = {
    "append", "extend", "insert", "add", "discard", "remove", "pop",
    "popitem", "clear", "update", "setdefault", "sort", "reverse",
    "put", "push",
}

#: A lock identity: ("C"|"M"|"F", scope, name).
LockToken = tuple


@dataclass(frozen=True)
class Access:
    """One touch of shared state inside a function."""

    #: ``("self", field)`` or ``("name", captured_name)``.
    target: tuple
    node: ast.AST
    write: bool
    #: Lock tokens statically held at the access site.
    held: frozenset
    #: Access happens in ``__init__``/``__post_init__`` (construction).
    in_init: bool = False
    #: Access sits inside a nested ``def`` whose execution context is
    #: unknown to the enclosing method's lock tracker.
    in_nested: bool = False


@dataclass(frozen=True)
class Acquire:
    """One lock acquisition site."""

    token: LockToken
    node: ast.AST
    #: Tokens held *before* this acquisition.
    held: frozenset
    in_nested: bool = False


@dataclass(frozen=True)
class CallSite:
    """One call, classified by how far it can be resolved.

    ``kind`` is ``"self"`` (``self.m()``, target ``(m,)``), ``"field"``
    (``self.f.m()``, target ``(f, m)``), ``"var"`` (``v.m()`` or
    ``v.a.m()``, target ``(v, a..., m)``), or ``"name"`` (a bare or
    imported callable, target ``(qualified,)``).
    """

    kind: str
    target: tuple
    node: ast.Call
    held: frozenset
    in_nested: bool = False


class FunctionModel:
    """Accesses/acquisitions/calls of one function, with held locks."""

    def __init__(self, name: str, node: ast.AST):
        self.name = name
        self.node = node
        self.accesses: list[Access] = []
        self.acquires: list[Acquire] = []
        self.calls: list[CallSite] = []
        #: Names bound inside the function (params + assignments):
        #: anything else mutated here is captured from an outer scope.
        self.local_names: set[str] = set()
        #: Local name -> qualified class of its constructor assignment.
        self.local_types: dict[str, str] = {}
        #: Local name -> qualified element class for typed iterables.
        self.local_elt_types: dict[str, str] = {}
        #: Local/param names known to be locks (for nested scans).
        self.lock_locals: set[str] = set()
        #: Nested function definitions, by name.
        self.nested: dict[str, ast.AST] = {}
        #: Scanned models of the nested defs (thread entry points).
        self.nested_models: dict[str, "FunctionModel"] = {}


def _receiver_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ["a", "b", "c"]; None for non-name chains."""
    parts: list[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    return list(reversed(parts))


def _annotation_chain(node: ast.expr | None) -> ast.expr | None:
    """Unwrap ``T | None`` / ``Optional[T]`` / string annotations."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            if not (isinstance(side, ast.Constant)
                    and side.value is None):
                return _annotation_chain(side)
    if isinstance(node, ast.Subscript):
        base = node.value
        if isinstance(base, ast.Name) and base.id == "Optional":
            return _annotation_chain(node.slice)
        return node
    return node


class _FunctionScanner:
    """One pass over a function body tracking statically held locks."""

    def __init__(self, model: FunctionModel, imports: ImportMap,
                 class_name: str | None, lock_fields: set[str],
                 module_locks: set[str], outer_locks: set[str],
                 scope: str, in_nested: bool = False):
        self.model = model
        self.imports = imports
        self.class_name = class_name
        self.lock_fields = lock_fields
        self.module_locks = module_locks
        #: Names of enclosing-scope locals/params known to be locks.
        self.outer_locks = set(outer_locks)
        self.scope = scope
        self.in_nested = in_nested
        #: Function-local names known to be locks.
        self.local_locks: set[str] = set()
        self.in_init = class_name is not None and \
            model.name in {"__init__", "__post_init__"}

    # -- driving ---------------------------------------------------------

    def scan(self) -> None:
        node = self.model.node
        args = getattr(node, "args", None)
        if args is not None:
            for arg in (args.posonlyargs + args.args + args.kwonlyargs):
                self.model.local_names.add(arg.arg)
                self._note_param(arg)
            for extra in (args.vararg, args.kwarg):
                if extra is not None:
                    self.model.local_names.add(extra.arg)
        self._block(list(node.body), frozenset())
        self.model.lock_locals = set(self.local_locks)

    def _note_param(self, arg: ast.arg) -> None:
        annotation = _annotation_chain(arg.annotation)
        if annotation is None:
            return
        qualified = self.imports.qualify(
            annotation.value if isinstance(annotation, ast.Subscript)
            else annotation)
        if qualified in LOCK_FACTORIES:
            self.local_locks.add(arg.arg)
        elif qualified is not None and \
                not isinstance(annotation, ast.Subscript):
            self.model.local_types[arg.arg] = qualified

    def _block(self, body: list[ast.stmt], held: frozenset) -> None:
        """Scan a statement sequence; ``acquire()``/``release()``
        statements flow the held set forward to their successors."""
        flowing = set(held)
        for stmt in body:
            self._stmt(stmt, flowing)

    def _stmt(self, stmt: ast.stmt, held: set) -> None:
        if isinstance(stmt, ast.With):
            inner = set(held)
            for item in stmt.items:
                self._expr(item.context_expr, frozenset(inner))
                token = self._lock_token(item.context_expr)
                if token is not None:
                    self._record_acquire(token, item.context_expr,
                                         frozenset(inner))
                    inner.add(token)
                if item.optional_vars is not None:
                    self._bind_target(item.optional_vars,
                                      item.context_expr)
            self._block(stmt.body, frozenset(inner))
        elif isinstance(stmt, ast.Try):
            # The manual idiom ``lock.acquire(); try: ... finally:
            # lock.release()`` is handled by the flowing set: the
            # acquire above this Try already added the token.
            self._block(stmt.body, frozenset(held))
            for handler in stmt.handlers:
                self._block(handler.body, frozenset(held))
            self._block(stmt.orelse, frozenset(held))
            self._block(stmt.finalbody, frozenset(held))
            # A finally that releases drops the token for successors.
            for inner in ast.walk(ast.Module(body=stmt.finalbody,
                                             type_ignores=[])):
                token = self._release_token(inner)
                if token is not None:
                    held.discard(token)
        elif isinstance(stmt, (ast.If, ast.For, ast.While)):
            test = getattr(stmt, "test", None) or getattr(stmt, "iter")
            self._expr(test, frozenset(held))
            if isinstance(stmt, ast.For):
                self._bind_loop_target(stmt.target, stmt.iter)
            self._block(stmt.body, frozenset(held))
            self._block(stmt.orelse, frozenset(held))
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.model.local_names.add(stmt.name)
            self.model.nested[stmt.name] = stmt
        elif isinstance(stmt, ast.ClassDef):
            self.model.local_names.add(stmt.name)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self._expr(stmt.value, frozenset(held))
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._assignment(stmt, held)
        elif isinstance(stmt, ast.Expr):
            call = stmt.value
            token = self._acquire_token(call)
            if token is not None:
                self._record_acquire(token, call, frozenset(held))
                held.add(token)
                return
            token = self._release_token(call)
            if token is not None:
                held.discard(token)
                return
            self._expr(stmt.value, frozenset(held))
        else:
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._expr(child, frozenset(held))
                elif isinstance(child, ast.stmt):
                    self._stmt(child, set(held))

    # -- assignments & binding -------------------------------------------

    def _assignment(self, stmt: ast.stmt, held: set) -> None:
        frozen = frozenset(held)
        value = stmt.value
        targets = stmt.targets if isinstance(stmt, ast.Assign) \
            else [stmt.target]
        if value is not None:
            self._expr(value, frozen)
        for target in targets:
            self._store(target, frozen)
            if value is not None:
                self._bind_target(target, value)
        if isinstance(stmt, ast.AnnAssign) and \
                isinstance(stmt.target, ast.Name):
            self._bind_annotation(stmt.target.id, stmt.annotation)
        elif isinstance(stmt, ast.AnnAssign) and \
                self._is_self_attr(stmt.target):
            pass  # class-model handles self-field annotations

    def _store(self, target: ast.expr, held: frozenset) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, held)
            return
        if isinstance(target, ast.Starred):
            self._store(target.value, held)
            return
        if isinstance(target, ast.Name):
            self.model.local_names.add(target.id)
            return
        if isinstance(target, ast.Subscript):
            self._mutation_target(target.value, target, held)
            self._expr(target.slice, held)
            return
        if isinstance(target, ast.Attribute):
            chain = _receiver_chain(target)
            if chain and chain[0] == "self" and len(chain) == 2:
                self._record_access(("self", chain[1]), target,
                                    write=True, held=held)
            elif chain and chain[0] != "self" and len(chain) >= 2 and \
                    not self._is_local(chain[0]):
                self._record_access(("name", chain[0]), target,
                                    write=True, held=held)

    def _mutation_target(self, receiver: ast.expr, node: ast.AST,
                         held: frozenset) -> None:
        """Record ``receiver[...] = x`` / ``receiver.mutator(...)``."""
        chain = _receiver_chain(receiver)
        if not chain:
            return
        if chain[0] == "self" and len(chain) >= 2:
            self._record_access(("self", chain[1]), node, write=True,
                                held=held)
        elif chain[0] != "self" and not self._is_local(chain[0]):
            self._record_access(("name", chain[0]), node, write=True,
                                held=held)

    def _bind_target(self, target: ast.expr, value: ast.expr) -> None:
        """Track constructor types for local names."""
        if not isinstance(target, ast.Name):
            return
        constructed = self._constructed_class(value)
        if constructed is not None:
            self.model.local_types[target.id] = constructed
            if constructed in LOCK_FACTORIES:
                self.local_locks.add(target.id)
            return
        elt = self._elt_class(value)
        if elt is not None:
            self.model.local_elt_types[target.id] = elt

    def _bind_annotation(self, name: str,
                         annotation: ast.expr | None) -> None:
        chain = _annotation_chain(annotation)
        if chain is None:
            return
        if isinstance(chain, ast.Subscript):
            elt = self._class_of_expr(chain.slice)
            if elt is not None:
                self.model.local_elt_types[name] = elt
            return
        qualified = self.imports.qualify(chain)
        if qualified is not None:
            self.model.local_types[name] = qualified

    def _bind_loop_target(self, target: ast.expr,
                          iterable: ast.expr) -> None:
        """``for x in <typed iterable>`` binds x's element type."""
        for name, elt in self._iter_bindings(target, iterable):
            self.model.local_types[name] = elt
        if isinstance(target, ast.Name):
            self.model.local_names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.model.local_names.add(element.id)

    def _iter_bindings(self, target: ast.expr, iterable: ast.expr) \
            -> list[tuple[str, str]]:
        bindings: list[tuple[str, str]] = []
        if isinstance(iterable, ast.Call) and \
                isinstance(iterable.func, ast.Name) and \
                iterable.func.id == "zip" and \
                isinstance(target, (ast.Tuple, ast.List)):
            for element, arg in zip(target.elts, iterable.args):
                if isinstance(element, ast.Name):
                    elt = self._elt_of(arg)
                    if elt is not None:
                        bindings.append((element.id, elt))
            return bindings
        if isinstance(target, ast.Name):
            elt = self._elt_of(iterable)
            if elt is not None:
                bindings.append((target.id, elt))
        return bindings

    def _elt_of(self, iterable: ast.expr) -> str | None:
        """Element class of an iterable expression, if inferable."""
        if isinstance(iterable, ast.Name):
            return self.model.local_elt_types.get(iterable.id)
        chain = _receiver_chain(iterable)
        if chain and chain[0] == "self" and len(chain) == 2 and \
                self._self_elt_types is not None:
            return self._self_elt_types.get(chain[1])
        return self._elt_class(iterable)

    #: Injected by ClassModel: field -> element class for list fields.
    _self_elt_types: dict[str, str] | None = None

    def _constructed_class(self, value: ast.expr) -> str | None:
        """Qualified class when ``value`` is (or may be) ``C(...)``."""
        if isinstance(value, ast.IfExp):
            return self._constructed_class(value.body) or \
                self._constructed_class(value.orelse)
        if isinstance(value, ast.BoolOp):
            for operand in value.values:
                constructed = self._constructed_class(operand)
                if constructed is not None:
                    return constructed
            return None
        if isinstance(value, ast.Call):
            return self._class_of_expr(value.func)
        return None

    def _class_of_expr(self, node: ast.expr) -> str | None:
        qualified = self.imports.qualify(node)
        if qualified is None:
            return None
        head = qualified.split(".")[0]
        if head in self.model.local_names:
            return None
        return qualified

    def _elt_class(self, value: ast.expr) -> str | None:
        """Element class of a list literal / comprehension of calls."""
        if isinstance(value, ast.ListComp):
            for generator in value.generators:
                for name, elt in self._iter_bindings(
                        generator.target, generator.iter):
                    self.model.local_types[name] = elt
            constructed = self._constructed_class(value.elt)
            if constructed is not None:
                return constructed
            if isinstance(value.elt, ast.Name):
                return self.model.local_types.get(value.elt.id)
            return None
        if isinstance(value, ast.List) and value.elts:
            return self._constructed_class(value.elts[0])
        return None

    # -- expressions ------------------------------------------------------

    def _expr(self, node: ast.expr | None, held: frozenset) -> None:
        if node is None:
            return
        # Note: ast.walk descends into lambdas, so a ``wait_for``
        # predicate is scanned inline with the current held set.
        for child in ast.walk(node):
            if isinstance(child, ast.Call):
                self._call(child, held)
            elif isinstance(child, ast.Attribute) and \
                    isinstance(child.ctx, ast.Load):
                chain = _receiver_chain(child)
                if chain and chain[0] == "self" and len(chain) == 2:
                    self._record_access(("self", chain[1]), child,
                                        write=False, held=held)

    def _call(self, node: ast.Call, held: frozenset) -> None:
        chain = _receiver_chain(node.func)
        if chain is None:
            return
        if chain[0] == "self" and len(chain) == 2:
            self.model.calls.append(CallSite(
                "self", (chain[1],), node, held, self.in_nested))
        elif chain[0] == "self" and len(chain) == 3:
            self.model.calls.append(CallSite(
                "field", (chain[1], chain[2]), node, held,
                self.in_nested))
            if chain[2] in MUTATOR_METHODS:
                self._record_access(("self", chain[1]), node,
                                    write=True, held=held)
        elif len(chain) >= 2 and self._is_local(chain[0]):
            self.model.calls.append(CallSite(
                "var", tuple(chain), node, held, self.in_nested))
        elif len(chain) >= 2 and chain[0] in self.imports.aliases:
            # ``threading.Thread(...)`` / ``np.mean(...)``: the root is
            # an imported module or object, not a captured variable.
            qualified = self.imports.qualify(node.func)
            if qualified is not None:
                self.model.calls.append(CallSite(
                    "name", (qualified,), node, held, self.in_nested))
        elif len(chain) >= 2 and not self._is_local(chain[0]):
            # A mutator call on a captured/global name is a write to it.
            if chain[-1] in MUTATOR_METHODS and len(chain) == 2:
                self._record_access(("name", chain[0]), node,
                                    write=True, held=held)
            self.model.calls.append(CallSite(
                "var", tuple(chain), node, held, self.in_nested))
        else:
            qualified = self.imports.qualify(node.func)
            if qualified is not None:
                self.model.calls.append(CallSite(
                    "name", (qualified,), node, held, self.in_nested))

    def _is_local(self, name: str) -> bool:
        return name in self.model.local_names or name == "self"

    # -- locks ------------------------------------------------------------

    def _lock_token(self, node: ast.expr) -> LockToken | None:
        chain = _receiver_chain(node)
        if chain is None:
            return None
        if chain[0] == "self" and len(chain) == 2 and \
                chain[1] in self.lock_fields:
            return ("C", self.class_name, chain[1])
        if len(chain) == 1:
            name = chain[0]
            if name in self.local_locks or name in self.outer_locks:
                return ("F", self.scope, name)
            if name in self.module_locks:
                return ("M", self.imports.module or "", name)
            # ``from repro.core.a import first`` + ``with first:`` —
            # token it under the *defining* module so acquisition
            # edges line up with the module that owns the lock.
            imported = self.imports.aliases.get(name)
            if imported is not None and "." in imported:
                module, lock_name = imported.rsplit(".", 1)
                return ("M", module, lock_name)
        return None

    def _acquire_token(self, node: ast.expr) -> LockToken | None:
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "acquire":
            return self._lock_token(node.func.value)
        return None

    def _release_token(self, node: ast.AST) -> LockToken | None:
        if isinstance(node, ast.Expr):
            node = node.value
        if isinstance(node, ast.Call) and \
                isinstance(node.func, ast.Attribute) and \
                node.func.attr == "release":
            return self._lock_token(node.func.value)
        return None

    def _record_acquire(self, token: LockToken, node: ast.AST,
                        held: frozenset) -> None:
        if token in held:
            return  # re-entrant acquisition, no new edge
        self.model.acquires.append(Acquire(token, node, held,
                                           self.in_nested))

    def _record_access(self, target: tuple, node: ast.AST, write: bool,
                       held: frozenset) -> None:
        if target[0] == "name" and target[1] in self.model.local_names:
            return
        self.model.accesses.append(Access(
            target, node, write, held, in_init=self.in_init,
            in_nested=self.in_nested))

    @staticmethod
    def _is_self_attr(node: ast.expr) -> bool:
        return isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self"


def scan_function(node: ast.AST, imports: ImportMap,
                  class_name: str | None = None,
                  lock_fields: set[str] | None = None,
                  module_locks: set[str] | None = None,
                  outer_locks: set[str] | None = None,
                  scope: str = "", in_nested: bool = False,
                  self_elt_types: dict[str, str] | None = None,
                  outer_types: dict[str, str] | None = None) \
        -> FunctionModel:
    """Build the :class:`FunctionModel` for one function node."""
    model = FunctionModel(getattr(node, "name", "<lambda>"), node)
    if outer_types:
        model.local_types.update(outer_types)
    scanner = _FunctionScanner(
        model, imports, class_name, lock_fields or set(),
        module_locks or set(), outer_locks or set(),
        scope or getattr(node, "name", ""), in_nested)
    scanner._self_elt_types = self_elt_types
    scanner.scan()
    return model


class ClassModel:
    """Concurrency-relevant facts about one class."""

    def __init__(self, ctx: FileContext, node: ast.ClassDef):
        self.ctx = ctx
        self.node = node
        self.name = node.name
        self.qualname = f"{ctx.module}.{node.name}"
        self.lock_fields: set[str] = set()
        self.field_types: dict[str, str] = {}
        self.field_elt_types: dict[str, str] = {}
        self.methods: dict[str, FunctionModel] = {}
        self._module_locks = _module_locks(ctx)
        self._collect_fields()
        self._scan_methods()
        self.context_held = self._propagate_context()

    # -- field discovery ---------------------------------------------------

    def _collect_fields(self) -> None:
        imports = self.ctx.imports
        for method in self.node.body:
            if not isinstance(method, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                continue
            for stmt in ast.walk(method):
                if isinstance(stmt, ast.AnnAssign) and \
                        self._is_self_field(stmt.target):
                    self._note_annotation(stmt.target.attr,
                                          stmt.annotation)
                if not isinstance(stmt, ast.Assign):
                    continue
                for target in stmt.targets:
                    if not self._is_self_field(target):
                        continue
                    field_name = target.attr
                    qualified = self._value_class(stmt.value, imports,
                                                 method)
                    if qualified in LOCK_FACTORIES:
                        self.lock_fields.add(field_name)
                    elif qualified is not None:
                        self.field_types.setdefault(field_name,
                                                    qualified)
                    elt = self._value_elt(stmt.value, imports)
                    if elt is not None:
                        self.field_elt_types.setdefault(field_name, elt)

    def _note_annotation(self, field_name: str,
                         annotation: ast.expr) -> None:
        chain = _annotation_chain(annotation)
        if chain is None:
            return
        imports = self.ctx.imports
        if isinstance(chain, ast.Subscript):
            elt = _annotation_chain(chain.slice)
            if elt is not None and not isinstance(elt, ast.Subscript):
                qualified = imports.qualify(elt)
                if qualified is not None:
                    self.field_elt_types.setdefault(field_name,
                                                    qualified)
            return
        qualified = imports.qualify(chain)
        if qualified in LOCK_FACTORIES:
            self.lock_fields.add(field_name)
        elif qualified is not None:
            self.field_types.setdefault(field_name, qualified)

    def _value_class(self, value: ast.expr, imports: ImportMap,
                     method: ast.AST) -> str | None:
        if isinstance(value, ast.IfExp):
            return self._value_class(value.body, imports, method) or \
                self._value_class(value.orelse, imports, method)
        if isinstance(value, ast.Call):
            return imports.qualify(value.func)
        return None

    def _value_elt(self, value: ast.expr,
                   imports: ImportMap) -> str | None:
        if isinstance(value, ast.ListComp) and \
                isinstance(value.elt, ast.Call):
            return imports.qualify(value.elt.func)
        if isinstance(value, ast.List) and value.elts and \
                isinstance(value.elts[0], ast.Call):
            return imports.qualify(value.elts[0].func)
        return None

    @staticmethod
    def _is_self_field(target: ast.expr) -> bool:
        return isinstance(target, ast.Attribute) and \
            isinstance(target.value, ast.Name) and \
            target.value.id == "self"

    # -- method scanning ---------------------------------------------------

    def _scan_methods(self) -> None:
        for method in self.node.body:
            if isinstance(method, (ast.FunctionDef,
                                   ast.AsyncFunctionDef)):
                self.methods[method.name] = scan_function(
                    method, self.ctx.imports, class_name=self.qualname,
                    lock_fields=self.lock_fields,
                    module_locks=self._module_locks,
                    scope=f"{self.qualname}.{method.name}",
                    self_elt_types=self.field_elt_types)
                self._scan_nested(self.methods[method.name])

    def _scan_nested(self, model: FunctionModel) -> None:
        """Fold nested defs' facts in, marked execution-context-unknown."""
        for nested_node in model.nested.values():
            nested = scan_function(
                nested_node, self.ctx.imports, class_name=self.qualname,
                lock_fields=self.lock_fields,
                module_locks=self._module_locks,
                outer_locks=_lock_locals(model),
                scope=f"{self.qualname}.{model.name}",
                in_nested=True,
                self_elt_types=self.field_elt_types,
                outer_types=model.local_types)
            model.nested_models[nested.name] = nested
            model.accesses.extend(nested.accesses)
            model.acquires.extend(nested.acquires)
            model.calls.extend(nested.calls)

    # -- lock-context propagation ------------------------------------------

    def _propagate_context(self) -> dict[str, frozenset]:
        """Locks a private method inherits from every call site.

        A helper like ``_publish`` that is *only* called while
        ``self._lock`` is held is effectively guarded by it.  Public
        methods (no leading underscore) are callable from anywhere and
        inherit nothing.
        """
        sites: dict[str, list[frozenset]] = {}
        for caller in self.methods.values():
            for call in caller.calls:
                if call.kind != "self":
                    continue
                callee = call.target[0]
                sites.setdefault(callee, []).append(
                    (call.held, caller.name))
        context: dict[str, frozenset] = {
            name: frozenset() for name in self.methods}
        for _ in range(len(self.methods)):
            changed = False
            for name in self.methods:
                if not name.startswith("_") or name.startswith("__"):
                    continue
                callers = sites.get(name)
                if not callers:
                    continue
                inherited = None
                for held, caller_name in callers:
                    effective = held | context.get(caller_name,
                                                   frozenset())
                    inherited = effective if inherited is None \
                        else inherited & effective
                inherited = inherited or frozenset()
                if inherited != context[name]:
                    context[name] = inherited
                    changed = True
            if not changed:
                break
        return context

    # -- queries -----------------------------------------------------------

    def class_lock_tokens(self) -> set[LockToken]:
        return {("C", self.qualname, attr) for attr in self.lock_fields}

    def effective_accesses(self):
        """(method, access, effective_held) with context folded in."""
        for name, model in self.methods.items():
            context = self.context_held.get(name, frozenset())
            for access in model.accesses:
                yield model, access, access.held | context

    def guarded_writes(self, field_name: str) -> bool:
        """Is ``self.<field>`` ever mutated under a class lock?"""
        tokens = self.class_lock_tokens()
        for _model, access, held in self.effective_accesses():
            if access.write and not access.in_init and \
                    not access.in_nested and \
                    access.target == ("self", field_name) and \
                    held & tokens:
                return True
        return False

    def all_writes_guarded(self, method_name: str,
                           project: "ProjectModel | None" = None,
                           _depth: int = 3) -> bool:
        """Every mutation reachable from ``method_name`` holds a lock.

        Used to decide whether calling into this class from another
        thread is safe without caller-side synchronization.  Follows
        ``self.m()`` calls and, when a project model is supplied,
        one level of typed field calls.
        """
        model = self.methods.get(method_name)
        if model is None:
            return False
        context = self.context_held.get(method_name, frozenset())
        for access in model.accesses:
            if access.write and not access.in_init and \
                    not (access.held | context):
                return False
        if _depth <= 0:
            return True
        for call in model.calls:
            if call.kind == "self":
                callee = call.target[0]
                if callee in self.methods and callee != method_name:
                    if not (call.held | context) and \
                            not self.all_writes_guarded(
                                callee, project, _depth - 1):
                        return False
            elif call.kind == "field" and project is not None:
                field_name, method = call.target
                target_class = project.resolve_class(
                    self.field_types.get(field_name), self.ctx.module)
                if target_class is not None and \
                        method in target_class.methods and \
                        not (call.held | context) and \
                        not target_class.all_writes_guarded(
                            method, project, _depth - 1):
                    return False
        return True


def _module_locks(ctx: FileContext) -> set[str]:
    """Module-level names assigned a lock factory."""
    locks: set[str] = set()
    for stmt in ctx.tree.body:
        if isinstance(stmt, ast.Assign) and \
                isinstance(stmt.value, ast.Call):
            qualified = ctx.imports.qualify(stmt.value.func)
            if qualified in LOCK_FACTORIES:
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        locks.add(target.id)
    return locks


def _lock_locals(model: FunctionModel) -> set[str]:
    """Names in ``model`` known (or annotated) to be locks, for
    propagation into nested function scans."""
    locks: set[str] = set(model.lock_locals)
    for name, qualified in model.local_types.items():
        if qualified in LOCK_FACTORIES:
            locks.add(name)
    return locks


class ProjectModel:
    """The cross-file index the CONC rules query."""

    def __init__(self, contexts: list[FileContext]):
        self.contexts = contexts
        self.classes: dict[str, ClassModel] = {}
        self.module_functions: dict[
            str, tuple[FileContext, FunctionModel]] = {}
        for ctx in contexts:
            module_locks = _module_locks(ctx)
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef):
                    model = ClassModel(ctx, node)
                    self.classes[model.qualname] = model
                elif isinstance(node, (ast.FunctionDef,
                                       ast.AsyncFunctionDef)):
                    self.module_functions[
                        f"{ctx.module}.{node.name}"] = (
                            ctx, scan_function(
                                node, ctx.imports,
                                module_locks=module_locks,
                                scope=f"{ctx.module}.{node.name}"))

    def resolve_class(self, qualified: str | None,
                      module: str | None = None) -> ClassModel | None:
        """Look up a class by qualified name; a bare name (same-module
        reference, which :meth:`ImportMap.qualify` leaves unqualified)
        also resolves against ``module``."""
        if qualified is None:
            return None
        found = self.classes.get(qualified)
        if found is None and module and "." not in qualified:
            found = self.classes.get(f"{module}.{qualified}")
        return found

    # -- lock-order graph (CONC003) ----------------------------------------

    def may_acquire(self, class_model: ClassModel, method: str,
                    _seen: set | None = None) -> set[LockToken]:
        """Lock tokens ``method`` may transitively acquire."""
        seen = _seen if _seen is not None else set()
        key = (class_model.qualname, method)
        if key in seen:
            return set()
        seen.add(key)
        model = class_model.methods.get(method)
        if model is None:
            return set()
        acquired = {acq.token for acq in model.acquires}
        for call in model.calls:
            if call.kind == "self":
                acquired |= self.may_acquire(class_model,
                                             call.target[0], seen)
            elif call.kind == "field":
                field_name, callee = call.target
                target = self.resolve_class(
                    class_model.field_types.get(field_name),
                    class_model.ctx.module)
                if target is not None:
                    acquired |= self.may_acquire(target, callee, seen)
        return acquired

    def lock_order_edges(self):
        """Directed edges (held -> acquired, witness ctx, node).

        An edge exists when a lock is acquired while another is held —
        directly (nested ``with``) or through a resolvable call whose
        callee may acquire.
        """
        edges: list[tuple[LockToken, LockToken, FileContext,
                          ast.AST]] = []
        for class_model in self.classes.values():
            for model in class_model.methods.values():
                context = class_model.context_held.get(
                    model.name, frozenset())
                for acq in model.acquires:
                    for held in sorted(acq.held | context, key=str):
                        if held != acq.token:
                            edges.append((held, acq.token,
                                          class_model.ctx, acq.node))
                for call in model.calls:
                    held_here = call.held | context
                    if not held_here:
                        continue
                    targets: set[LockToken] = set()
                    if call.kind == "self":
                        targets = self.may_acquire(class_model,
                                                   call.target[0])
                    elif call.kind == "field":
                        field_name, callee = call.target
                        target = self.resolve_class(
                            class_model.field_types.get(field_name),
                            class_model.ctx.module)
                        if target is not None:
                            targets = self.may_acquire(target, callee)
                    for acquired in sorted(targets, key=str):
                        for held in sorted(held_here, key=str):
                            if held != acquired:
                                edges.append((held, acquired,
                                              class_model.ctx,
                                              call.node))
        # Module-level functions participate in the global graph too
        # (cross-file cycles through module locks).
        for ctx, model in self.module_functions.values():
            for acq in model.acquires:
                for held in sorted(acq.held, key=str):
                    if held != acq.token:
                        edges.append((held, acq.token, ctx, acq.node))
        return edges

    def lock_order_cycles(self):
        """Cycles in the acquisition graph, as witness edge lists."""
        graph: dict[LockToken, dict[LockToken, tuple]] = {}
        for source, target, ctx, node in self.lock_order_edges():
            graph.setdefault(source, {}).setdefault(
                target, (ctx, node))
        cycles = []
        reported: set[frozenset] = set()
        for start in sorted(graph, key=str):
            stack = [(start, [start])]
            while stack:
                current, path = stack.pop()
                for neighbor in sorted(graph.get(current, {}),
                                       key=str):
                    if neighbor == start and len(path) > 1:
                        key = frozenset(path)
                        if key not in reported:
                            reported.add(key)
                            witness = [
                                (a, b) + graph[a][b]
                                for a, b in zip(path,
                                                path[1:] + [start])]
                            cycles.append(witness)
                    elif neighbor not in path:
                        stack.append((neighbor, path + [neighbor]))
        return cycles


#: Single-slot memo: project rules in one Analyzer run share one model.
_LAST_MODEL: tuple[list, ProjectModel] | None = None


def project_model(contexts: list[FileContext]) -> ProjectModel:
    """The (memoized) :class:`ProjectModel` for this context list."""
    global _LAST_MODEL
    if _LAST_MODEL is not None and _LAST_MODEL[0] is contexts:
        return _LAST_MODEL[1]
    model = ProjectModel(contexts)
    _LAST_MODEL = (contexts, model)
    return model
